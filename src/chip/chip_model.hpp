// Chip-level Vmin model and run-outcome evaluation.
//
// Ties together the pipeline's current traces, the PDN's droop physics and
// the corner model's failure thresholds to answer the question the paper's
// framework asks thousands of times: "does this workload, on these cores of
// this chip, at this voltage and frequency, run correctly -- and if not, how
// does the failure manifest?"
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chip/corners.hpp"
#include "isa/pipeline.hpp"
#include "pdn/pdn.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace gb {

/// Nominal operating point of the X-Gene2 PMD domain.
inline constexpr millivolts nominal_pmd_voltage{980.0};
inline constexpr megahertz nominal_core_frequency{2400.0};

/// One core running one workload profile at one frequency.  The profile must
/// have been produced by a pipeline_model clocked at `frequency`.
struct core_assignment {
    int core = 0;
    const execution_profile* profile = nullptr;
    megahertz frequency = nominal_core_frequency;
};

/// Which failure path gives out first at low voltage.
enum class failure_path : std::uint8_t {
    logic, ///< pipeline timing paths
    sram,  ///< cache SRAM cells
};

[[nodiscard]] std::string_view to_string(failure_path path);

/// Everything the Vmin analysis of one run determines.
struct vmin_analysis {
    millivolts vmin{0.0};            ///< minimum safe supply voltage
    millivolts droop{0.0};           ///< raw worst-case PDN droop
    millivolts droop_effective{0.0}; ///< after the chip's droop response
    failure_path path = failure_path::logic;
    int critical_core = 0; ///< core whose requirement dominates
};

/// How a characterization run at a given supply voltage ended.  Mirrors the
/// paper's classification: correctable errors (CE), uncorrectable errors
/// (UE), silent data corruption (SDC, caught against a golden reference),
/// crashes and hangs (caught by the watchdog).  `aborted_rig` is the
/// framework's graceful-degradation bucket: the *rig* (not the chip) kept
/// failing -- hangs, dead boards, stuck power switches -- until the retry
/// budget ran out, so the run produced no measurement.
enum class run_outcome : std::uint8_t {
    ok,
    corrected_error,
    uncorrectable_error,
    silent_data_corruption,
    crash,
    hang,
    aborted_rig,
};

[[nodiscard]] std::string_view to_string(run_outcome outcome);
[[nodiscard]] bool is_disruption(run_outcome outcome);

struct run_evaluation {
    run_outcome outcome = run_outcome::ok;
    millivolts margin{0.0}; ///< supply minus (noisy) Vmin; negative = below
    failure_path path = failure_path::logic;
};

/// Probability mass over run outcomes at one (deterministic) margin depth
/// inside the marginal region between Vmin and the hard-crash window.  This
/// is the chip's *SDC region* made explicit: silent corruption carries its
/// own probability, distinct from the crash/hang paths, so an operating
/// supervisor can budget sentinel (golden-checksum) epochs against it
/// instead of discovering corruption only after the fact.
struct outcome_distribution {
    double p_ok = 0.0;
    double p_corrected = 0.0;
    double p_uncorrectable = 0.0;
    double p_sdc = 0.0;
    double p_crash = 0.0;
    double p_hang = 0.0;

    [[nodiscard]] double total() const {
        return p_ok + p_corrected + p_uncorrectable + p_sdc + p_crash +
               p_hang;
    }
    /// Probability the epoch's work is lost or silently wrong.
    [[nodiscard]] double p_disruption() const {
        return p_uncorrectable + p_sdc + p_crash + p_hang;
    }
};

/// Core-local PDN loop: ~50 MHz first-order resonance, lightly damped,
/// ~40 mOhm resonant impedance against one core's current.
[[nodiscard]] pdn_parameters make_xgene2_pdn();

/// Chip-global PDN loop: same resonance, ~12 mOhm against the summed
/// current of all cores.
[[nodiscard]] pdn_parameters make_xgene2_global_pdn();

/// The simulated chip: corner personality plus its power-delivery network.
///
/// The PDN has two levels, as in the droop literature: a core-local loop
/// (each core's own grid/package path, responding to that core's current)
/// and a chip-global loop (shared regulator path, responding to the sum of
/// all cores).  A core's droop is the sum of both contributions, so a virus
/// aligned across 8 cores gains through the global loop but not 8-fold.
class chip_model {
public:
    chip_model(chip_config config, pdn_parameters local_pdn,
               pdn_parameters global_pdn = make_xgene2_global_pdn());

    /// Vmin of a multi-core run.  `phase_seed` determines the relative cycle
    /// alignment of the cores' loops (threads are never cycle-aligned on the
    /// real machine; alignment changes how per-core currents add up).
    [[nodiscard]] vmin_analysis analyze(
        std::span<const core_assignment> assignments,
        std::uint64_t phase_seed) const;

    /// Per-core supply requirements of a multi-core run (same droop, each
    /// core's own offsets/paths).  Used to rank PMDs by weakness for the
    /// frequency-scaling trade-off of Fig 5.
    [[nodiscard]] std::vector<vmin_analysis> core_requirements(
        std::span<const core_assignment> assignments,
        std::uint64_t phase_seed) const;

    /// Convenience: one workload on one core, the rest idle.
    [[nodiscard]] vmin_analysis analyze_single(
        const execution_profile& profile, int core,
        megahertz frequency = nominal_core_frequency) const;

    /// Aggregate per-cycle current of all 8 cores (active ones tiled with
    /// phase offsets, idle ones at baseline).  The accumulation loop walks
    /// each core's trace with a wrapped cursor instead of a per-cycle
    /// modulo; addition order matches combined_trace_reference exactly, so
    /// the two are bitwise-identical (held by kernel_equivalence_test).
    [[nodiscard]] std::vector<double> combined_trace(
        std::span<const core_assignment> assignments,
        std::uint64_t phase_seed) const;

    /// Retained reference implementation of combined_trace (per-cycle modulo
    /// indexing, the pre-optimization code path).  Differential-testing twin
    /// only.
    [[nodiscard]] std::vector<double> combined_trace_reference(
        std::span<const core_assignment> assignments,
        std::uint64_t phase_seed) const;

    /// Outcome of one run at the given supply voltage.  Stochastic: each run
    /// draws its own threshold noise, matching the paper's repetition of
    /// every undervolting experiment ten times.
    [[nodiscard]] run_evaluation evaluate_run(
        std::span<const core_assignment> assignments, millivolts supply,
        std::uint64_t phase_seed, rng& r) const;

    /// Outcome of one run at `supply` against a precomputed analysis.  The
    /// analysis is a pure function of (assignments, phase_seed) and is
    /// independent of the supply voltage, so a Vmin search evaluates its
    /// whole candidate ladder -- every (V, repetition) cell of a bisection
    /// or descent step -- against one shared trace/droop pass instead of
    /// re-convolving the PDN per cell.  `evaluate_run` is exactly
    /// `evaluate_at(analyze(assignments, phase_seed), supply, r)`; the RNG
    /// draw sequence is identical, so batched and unbatched evaluation are
    /// bitwise-equal (held by kernel_equivalence_test).
    [[nodiscard]] run_evaluation evaluate_at(const vmin_analysis& analysis,
                                             millivolts supply, rng& r) const;

    /// Outcome probabilities at a fixed depth inside the marginal region
    /// (depth in (0, 1): fraction of the crash window below Vmin).  The
    /// same mass function `evaluate_run` samples from.
    [[nodiscard]] static outcome_distribution marginal_outcome_distribution(
        failure_path path, double depth);

    /// Outcome probabilities of one run at a supply voltage, integrating
    /// the per-run threshold noise in closed form.  Deterministic (no RNG):
    /// the frequency of each `evaluate_run` outcome converges to these
    /// values over repetitions.
    [[nodiscard]] outcome_distribution outcome_probabilities(
        std::span<const core_assignment> assignments, millivolts supply,
        std::uint64_t phase_seed) const;

    /// Same closed-form integration against a precomputed analysis, for
    /// callers sweeping many supplies over one workload (supervisor sentinel
    /// budgeting, operating-point grids).
    [[nodiscard]] outcome_distribution outcome_probabilities_at(
        const vmin_analysis& analysis, millivolts supply) const;

    /// Probability that a run at this supply ends in silent data
    /// corruption -- the signal the supervisor's sentinel scheduler
    /// accumulates between golden-checksum epochs.
    [[nodiscard]] double sdc_probability(
        std::span<const core_assignment> assignments, millivolts supply,
        std::uint64_t phase_seed) const;

    [[nodiscard]] const chip_config& config() const { return config_; }
    [[nodiscard]] const pdn_parameters& pdn() const { return local_pdn_; }
    [[nodiscard]] const pdn_parameters& global_pdn() const {
        return global_pdn_;
    }

    /// Supply voltage below Vmin at which failures escalate to a crash.
    static constexpr millivolts crash_window{10.0};
    /// Run-to-run repeatability noise of the failure threshold.
    static constexpr double run_noise_sigma_mv = 2.5;

private:
    chip_config config_;
    pdn_parameters local_pdn_;
    pdn_parameters global_pdn_;
};

} // namespace gb

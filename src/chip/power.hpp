// CPU power model: dynamic power from pipeline activity, corner-dependent
// leakage, and PMD-domain aggregation.  Used for the savings projections of
// Figs 5 and 9.
#pragma once

#include <span>

#include "chip/chip_model.hpp"
#include "chip/corners.hpp"
#include "isa/pipeline.hpp"
#include "util/units.hpp"

namespace gb {

/// Power of the PMD voltage domain (all 8 cores).
class cpu_power_model {
public:
    /// Dynamic power of one core running `profile` at (v, f).  The profile's
    /// average current was measured at nominal V/F; switching current scales
    /// with V (charge per toggle) and f (toggle rate), so P_dyn ~ V^2 f.
    [[nodiscard]] watts core_dynamic_power(const execution_profile& profile,
                                           millivolts v, megahertz f) const;

    /// Leakage of the whole chip: exponential in voltage (DIBL) and
    /// temperature, anchored at the corner's nominal leakage at 50 C.
    [[nodiscard]] watts chip_leakage_power(const chip_config& chip,
                                           millivolts v, celsius t) const;

    /// Total PMD-domain power for a set of per-core runs at one domain
    /// voltage.  Idle cores contribute baseline dynamic power.
    [[nodiscard]] watts pmd_domain_power(
        const chip_config& chip, std::span<const core_assignment> assignments,
        millivolts v, celsius t) const;

    /// Voltage sensitivity of leakage: I_leak ~ exp((V - Vnom)/v0).
    static constexpr double leakage_voltage_scale_mv = 120.0;
    /// Temperature sensitivity: I_leak ~ exp((T - 50C)/t0).
    static constexpr double leakage_temperature_scale_c = 40.0;
};

} // namespace gb

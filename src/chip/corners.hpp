// Process-corner and per-chip variation model.
//
// The study characterizes one typical chip (TTT) and two sigma chips picked
// from the leakage extremes: TFF (high leakage, fast) and TSS (low leakage,
// slow).  Each chip has its own intrinsic failure voltage, per-core offsets
// (core-to-core variation inside one die) and a droop response describing how
// voltage noise translates into Vmin.  The canonical three chips are
// calibrated against the paper's measurements (Figs 4, 6, 7); random chips
// can be generated for fleet-scale simulations.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace gb {

enum class process_corner : std::uint8_t { ttt, tff, tss };

[[nodiscard]] std::string_view to_string(process_corner corner);

inline constexpr int cores_per_chip = 8;
inline constexpr int pmds_per_chip = 4;
inline constexpr int cores_per_pmd = 2;

/// How worst-case droop maps into Vmin for a chip.  Below `knee` the chip
/// responds with `gain_low` mV of Vmin per mV of droop; above the knee the
/// response steepens to `gain_high` (decap exhaustion; corner parts are
/// steeper).  This piecewise-linear response is what lets sigma chips match
/// typical chips on benign workloads (Fig 4) yet collapse under the dI/dt
/// virus (Fig 7).
struct droop_response {
    double gain_low = 1.0;
    double gain_high = 1.0;
    millivolts knee{40.0};

    [[nodiscard]] millivolts effective(millivolts droop) const;
};

/// Static electrical personality of one chip.
struct chip_config {
    std::string name;
    process_corner corner = process_corner::ttt;

    /// Logic-path failure voltage of the most robust core at the nominal
    /// 2.4 GHz, excluding droop.
    millivolts v_crit_logic{845.0};
    /// Extra failure voltage of the cache SRAM path when fully stressed
    /// (SRAM Vmin sits above logic Vmin; Wilkerson ISCA'08).
    millivolts v_crit_sram_delta{8.0};
    droop_response response;
    /// Per-core Vmin offsets (core-to-core variation); the most robust core
    /// has offset 0.  Cores 2k and 2k+1 form PMD k.
    std::array<double, cores_per_chip> core_offset_mv{};
    /// Vmin relief per MHz below nominal frequency (more timing slack).
    double vf_slope_mv_per_mhz = 0.13;
    /// Chip leakage current at nominal voltage and 50 C (amperes); the
    /// corner-defining parameter.
    double leakage_current_a = 0.8;

    /// Vmin offset of a core, worst core of a PMD, and PMD membership.
    [[nodiscard]] millivolts core_offset(int core) const;
    [[nodiscard]] millivolts pmd_offset(int pmd) const;
};

/// The three characterized chips, calibrated to the paper.
[[nodiscard]] chip_config make_ttt_chip();
[[nodiscard]] chip_config make_tff_chip();
[[nodiscard]] chip_config make_tss_chip();
[[nodiscard]] chip_config make_chip(process_corner corner);

/// A randomly drawn chip of the given corner for fleet simulations: offsets
/// and thresholds jittered around the canonical part.
[[nodiscard]] chip_config random_chip(process_corner corner, rng& r);

} // namespace gb

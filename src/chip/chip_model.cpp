#include "chip/chip_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "util/contracts.hpp"

namespace gb {

namespace {

/// Marginal-region outcome masses.  `evaluate_run` samples these with one
/// uniform draw (its literal thresholds are the cumulative sums below);
/// `marginal_outcome_distribution` exposes the same masses analytically.
/// A Monte-Carlo consistency test keeps the two in sync.
constexpr double sram_sdc_mass = 0.15;
constexpr double sram_ue_slope = 0.10;     ///< per unit depth
constexpr double sram_hang_slope = 0.05;   ///< per unit depth
constexpr double logic_crash_slope = 0.30; ///< per unit depth
constexpr double logic_hang_slope = 0.15;  ///< per unit depth
constexpr double logic_sdc_mass = 0.50;

double normal_cdf(double x, double sigma) {
    return 0.5 * std::erfc(-x / (sigma * std::numbers::sqrt2));
}

double normal_pdf_integral(double a, double b, double sigma) {
    // \int_a^b n f(n) dn for n ~ N(0, sigma).
    const double inv = 1.0 / (2.0 * sigma * sigma);
    return sigma / std::sqrt(2.0 * std::numbers::pi) *
           (std::exp(-a * a * inv) - std::exp(-b * b * inv));
}

} // namespace

std::string_view to_string(failure_path path) {
    switch (path) {
    case failure_path::logic: return "logic";
    case failure_path::sram: return "sram";
    }
    return "?";
}

std::string_view to_string(run_outcome outcome) {
    switch (outcome) {
    case run_outcome::ok: return "OK";
    case run_outcome::corrected_error: return "CE";
    case run_outcome::uncorrectable_error: return "UE";
    case run_outcome::silent_data_corruption: return "SDC";
    case run_outcome::crash: return "CRASH";
    case run_outcome::hang: return "HANG";
    case run_outcome::aborted_rig: return "ABORTED";
    }
    return "?";
}

bool is_disruption(run_outcome outcome) {
    // An aborted-rig run yields no measurement; treating it as a
    // disruption keeps searches (find_vmin descent) conservative.
    return outcome == run_outcome::uncorrectable_error ||
           outcome == run_outcome::silent_data_corruption ||
           outcome == run_outcome::crash || outcome == run_outcome::hang ||
           outcome == run_outcome::aborted_rig;
}

pdn_parameters make_xgene2_pdn() {
    // ~50 MHz first-order resonance (package L against die decap), Q ~ 6:
    // the regime the dI/dt literature reports for server parts.  The decap
    // value sets the resonant impedance (~40 mOhm) so that a one-core
    // current swing of ~1 A produces droops in the tens of mV.
    return pdn_parameters::for_resonance(50.0e6, 0.08, 0.5e-6);
}

pdn_parameters make_xgene2_global_pdn() {
    // The shared regulator loop: same resonance, ~3.3x more decap behind it,
    // so ~12 mOhm resonant impedance against the aggregate current.
    return pdn_parameters::for_resonance(50.0e6, 0.08, 1.67e-6);
}

chip_model::chip_model(chip_config config, pdn_parameters local_pdn,
                       pdn_parameters global_pdn)
    : config_(std::move(config)), local_pdn_(local_pdn),
      global_pdn_(global_pdn) {}

std::vector<double> chip_model::combined_trace(
    std::span<const core_assignment> assignments,
    std::uint64_t phase_seed) const {
    GB_EXPECTS(!assignments.empty());
    GB_EXPECTS(assignments.size() <=
               static_cast<std::size_t>(cores_per_chip));

    // Common length: a few PDN resonance periods beyond the longest loop so
    // the droop fully develops; round to cover whole loop repetitions.
    std::size_t length = 8192;
    for (const core_assignment& a : assignments) {
        GB_EXPECTS(a.profile != nullptr);
        GB_EXPECTS(!a.profile->current_trace.empty());
        GB_EXPECTS(a.core >= 0 && a.core < cores_per_chip);
        length = std::max(length, a.profile->current_trace.size());
    }

    std::vector<double> total(length, 0.0);
    rng phase_rng(phase_seed);
    for (const core_assignment& a : assignments) {
        const std::vector<double>& trace = a.profile->current_trace;
        const std::size_t n = trace.size();
        // Wrapped-cursor accumulation: same additions in the same order as
        // the reference's (k + offset) % n indexing, without the per-cycle
        // division.
        std::size_t j = phase_rng.uniform_index(n);
        for (std::size_t k = 0; k < length; ++k) {
            total[k] += trace[j];
            if (++j == n) {
                j = 0;
            }
        }
    }
    const int idle_cores =
        cores_per_chip - static_cast<int>(assignments.size());
    const double idle_a =
        static_cast<double>(idle_cores) * core_baseline_current_a;
    for (double& i : total) {
        i += idle_a;
    }
    return total;
}

std::vector<double> chip_model::combined_trace_reference(
    std::span<const core_assignment> assignments,
    std::uint64_t phase_seed) const {
    GB_EXPECTS(!assignments.empty());
    GB_EXPECTS(assignments.size() <=
               static_cast<std::size_t>(cores_per_chip));

    std::size_t length = 8192;
    for (const core_assignment& a : assignments) {
        GB_EXPECTS(a.profile != nullptr);
        GB_EXPECTS(!a.profile->current_trace.empty());
        GB_EXPECTS(a.core >= 0 && a.core < cores_per_chip);
        length = std::max(length, a.profile->current_trace.size());
    }

    std::vector<double> total(length, 0.0);
    rng phase_rng(phase_seed);
    for (const core_assignment& a : assignments) {
        const std::vector<double>& trace = a.profile->current_trace;
        const std::size_t offset = phase_rng.uniform_index(trace.size());
        for (std::size_t k = 0; k < length; ++k) {
            total[k] += trace[(k + offset) % trace.size()];
        }
    }
    const int idle_cores =
        cores_per_chip - static_cast<int>(assignments.size());
    for (double& i : total) {
        i += static_cast<double>(idle_cores) * core_baseline_current_a;
    }
    return total;
}

std::vector<vmin_analysis> chip_model::core_requirements(
    std::span<const core_assignment> assignments,
    std::uint64_t phase_seed) const {
    // Global contribution: the aggregate current through the shared loop.
    const std::vector<double> trace = combined_trace(assignments, phase_seed);
    const pdn_model global(global_pdn_, nominal_pmd_voltage,
                           nominal_core_frequency);
    const millivolts global_droop = global.worst_droop(trace);
    const pdn_model local(local_pdn_, nominal_pmd_voltage,
                          nominal_core_frequency);

    // Memoize the local droop per distinct profile: a homogeneous 8-core
    // assignment (the common campaign shape) convolves each trace once
    // instead of once per core.  Same input, same pure function -- the
    // memoized value is the one the per-core call would produce.
    std::vector<std::pair<const execution_profile*, millivolts>> local_droops;
    local_droops.reserve(assignments.size());
    const auto local_droop_of = [&](const execution_profile* profile) {
        for (const auto& [known, droop] : local_droops) {
            if (known == profile) {
                return droop;
            }
        }
        const millivolts droop = local.worst_droop(profile->current_trace);
        local_droops.emplace_back(profile, droop);
        return droop;
    };

    std::vector<vmin_analysis> requirements;
    requirements.reserve(assignments.size());
    for (const core_assignment& a : assignments) {
        GB_EXPECTS(a.frequency <= nominal_core_frequency);
        // Local contribution: this core's own current through its loop.
        const millivolts droop =
            local_droop_of(a.profile) + global_droop;
        const millivolts droop_eff = config_.response.effective(droop);
        const double freq_relief_mv =
            config_.vf_slope_mv_per_mhz *
            (nominal_core_frequency.value - a.frequency.value);

        // Logic timing path: full frequency relief, full droop coupling.
        const millivolts logic_vmin{config_.v_crit_logic.value +
                                    config_.core_offset(a.core).value -
                                    freq_relief_mv + droop_eff.value};

        // Cache SRAM path: cell stability, not timing -- only half the
        // frequency relief, slightly weaker droop coupling, but an extra
        // penalty proportional to how hard the caches are exercised.
        const double cache_activity =
            std::max(a.profile->activity.of(cpu_component::l1d),
                     a.profile->activity.of(cpu_component::l2));
        const millivolts sram_vmin{
            config_.v_crit_logic.value +
            config_.v_crit_sram_delta.value * cache_activity +
            config_.core_offset(a.core).value - 0.5 * freq_relief_mv +
            0.9 * droop_eff.value};

        vmin_analysis req;
        req.droop = droop;
        req.droop_effective = droop_eff;
        const bool sram_dominates = sram_vmin > logic_vmin;
        req.vmin = sram_dominates ? sram_vmin : logic_vmin;
        req.path = sram_dominates ? failure_path::sram : failure_path::logic;
        req.critical_core = a.core;
        requirements.push_back(req);
    }
    return requirements;
}

vmin_analysis chip_model::analyze(std::span<const core_assignment> assignments,
                                  std::uint64_t phase_seed) const {
    const std::vector<vmin_analysis> requirements =
        core_requirements(assignments, phase_seed);
    GB_EXPECTS(!requirements.empty());
    const vmin_analysis* worst = &requirements.front();
    for (const vmin_analysis& req : requirements) {
        if (req.vmin > worst->vmin) {
            worst = &req;
        }
    }
    GB_ENSURES(worst->vmin.value > 0.0);
    return *worst;
}

vmin_analysis chip_model::analyze_single(const execution_profile& profile,
                                         int core,
                                         megahertz frequency) const {
    const core_assignment assignment{core, &profile, frequency};
    return analyze(std::span<const core_assignment>(&assignment, 1),
                   /*phase_seed=*/0);
}

run_evaluation chip_model::evaluate_run(
    std::span<const core_assignment> assignments, millivolts supply,
    std::uint64_t phase_seed, rng& r) const {
    return evaluate_at(analyze(assignments, phase_seed), supply, r);
}

run_evaluation chip_model::evaluate_at(const vmin_analysis& analysis,
                                       millivolts supply, rng& r) const {
    const millivolts noisy_vmin{analysis.vmin.value +
                                r.normal(0.0, run_noise_sigma_mv)};
    run_evaluation eval;
    eval.margin = supply - noisy_vmin;
    eval.path = analysis.path;

    if (eval.margin.value >= 0.0) {
        eval.outcome = run_outcome::ok;
        return eval;
    }
    if (eval.margin.value <= -crash_window.value) {
        eval.outcome = run_outcome::crash;
        return eval;
    }
    // Marginal region: the failure mode depends on which path gave out and
    // on how deep below Vmin the supply sits.  Just below Vmin only the
    // slowest path misses occasionally (isolated errors); catastrophic
    // outcomes ramp up with depth until the hard-crash window.  Cache SRAM
    // failures are mostly caught by the cache ECC/parity (CE); logic-path
    // failures corrupt in-flight state (SDC) or lock up the pipeline.
    // The literal thresholds are the cumulative masses of
    // marginal_outcome_distribution(); keep the two in sync.
    const double depth = -eval.margin.value / crash_window.value; // (0, 1)
    const double u = r.uniform();
    if (analysis.path == failure_path::sram) {
        if (u < 0.15) {
            eval.outcome = run_outcome::silent_data_corruption;
        } else if (u < 0.15 + 0.10 * depth) {
            eval.outcome = run_outcome::uncorrectable_error;
        } else if (u < 0.15 + 0.15 * depth) {
            eval.outcome = run_outcome::hang;
        } else {
            eval.outcome = run_outcome::corrected_error;
        }
    } else {
        if (u < 0.30 * depth) {
            eval.outcome = run_outcome::crash;
        } else if (u < 0.45 * depth) {
            eval.outcome = run_outcome::hang;
        } else if (u < 0.45 * depth + 0.50) {
            eval.outcome = run_outcome::silent_data_corruption;
        } else {
            eval.outcome = run_outcome::corrected_error;
        }
    }
    return eval;
}

outcome_distribution chip_model::marginal_outcome_distribution(
    failure_path path, double depth) {
    GB_EXPECTS(depth >= 0.0 && depth <= 1.0);
    outcome_distribution d;
    if (path == failure_path::sram) {
        d.p_sdc = sram_sdc_mass;
        d.p_uncorrectable = sram_ue_slope * depth;
        d.p_hang = sram_hang_slope * depth;
        d.p_corrected =
            1.0 - d.p_sdc - d.p_uncorrectable - d.p_hang;
    } else {
        d.p_crash = logic_crash_slope * depth;
        d.p_hang = logic_hang_slope * depth;
        d.p_sdc = logic_sdc_mass;
        d.p_corrected = 1.0 - d.p_crash - d.p_hang - d.p_sdc;
    }
    return d;
}

outcome_distribution chip_model::outcome_probabilities(
    std::span<const core_assignment> assignments, millivolts supply,
    std::uint64_t phase_seed) const {
    return outcome_probabilities_at(analyze(assignments, phase_seed), supply);
}

outcome_distribution chip_model::outcome_probabilities_at(
    const vmin_analysis& analysis, millivolts supply) const {
    // margin = m0 - noise with noise ~ N(0, sigma); the marginal region is
    // noise in (m0, m0 + W).
    const double m0 = supply.value - analysis.vmin.value;
    const double sigma = run_noise_sigma_mv;
    const double w = crash_window.value;

    outcome_distribution d;
    d.p_ok = normal_cdf(m0, sigma);
    d.p_crash = 1.0 - normal_cdf(m0 + w, sigma);
    const double p_marginal = std::max(
        0.0, normal_cdf(m0 + w, sigma) - normal_cdf(m0, sigma));
    if (p_marginal <= 0.0) {
        return d;
    }
    // First moment of the depth over the marginal region:
    //   E[depth 1{marginal}] = (E[n 1{m0<n<m0+w}] - m0 p_marginal) / w.
    const double depth_mass =
        (normal_pdf_integral(m0, m0 + w, sigma) - m0 * p_marginal) / w;
    if (analysis.path == failure_path::sram) {
        d.p_sdc = sram_sdc_mass * p_marginal;
        d.p_uncorrectable = sram_ue_slope * depth_mass;
        d.p_hang = sram_hang_slope * depth_mass;
        d.p_corrected = p_marginal - d.p_sdc - d.p_uncorrectable - d.p_hang;
    } else {
        d.p_sdc = logic_sdc_mass * p_marginal;
        d.p_hang = logic_hang_slope * depth_mass;
        d.p_crash += logic_crash_slope * depth_mass;
        d.p_corrected = p_marginal - d.p_sdc - d.p_hang -
                        logic_crash_slope * depth_mass;
    }
    d.p_corrected = std::max(0.0, d.p_corrected);
    return d;
}

double chip_model::sdc_probability(
    std::span<const core_assignment> assignments, millivolts supply,
    std::uint64_t phase_seed) const {
    return outcome_probabilities(assignments, supply, phase_seed).p_sdc;
}

} // namespace gb

#include "chip/corners.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace gb {

std::string_view to_string(process_corner corner) {
    switch (corner) {
    case process_corner::ttt: return "TTT";
    case process_corner::tff: return "TFF";
    case process_corner::tss: return "TSS";
    }
    return "?";
}

millivolts droop_response::effective(millivolts droop) const {
    GB_EXPECTS(droop.value >= 0.0);
    if (droop <= knee) {
        return millivolts{gain_low * droop.value};
    }
    return millivolts{gain_low * knee.value +
                      gain_high * (droop.value - knee.value)};
}

millivolts chip_config::core_offset(int core) const {
    GB_EXPECTS(core >= 0 && core < cores_per_chip);
    return millivolts{core_offset_mv[static_cast<std::size_t>(core)]};
}

millivolts chip_config::pmd_offset(int pmd) const {
    GB_EXPECTS(pmd >= 0 && pmd < pmds_per_chip);
    return millivolts{std::max(core_offset_mv[static_cast<std::size_t>(
                                   pmd * cores_per_pmd)],
                               core_offset_mv[static_cast<std::size_t>(
                                   pmd * cores_per_pmd + 1)])};
}

// Calibration notes (paper Figs 4, 6, 7, and the Fig 5 DVFS ladder):
//  * Real workloads in this simulator develop ~3-35 mV of (local + global)
//    droop on one core; the GA dI/dt virus run on all 8 cores develops
//    ~42 mV under the framework's canonical launch alignment.  Corner
//    personalities are expressed through the droop response: the typical
//    TTT part saturates past a 20 mV knee (deep effective decap -- its
//    virus crash point stays ~60 mV below nominal, Fig 7), while the sigma
//    parts steepen sharply past 35 mV (gain_high fitted to the measured
//    crash margins: TFF ~20 mV below nominal, TSS ~10 mV, i.e. no usable
//    margin).  Only the virus exceeds the 35 mV knee on a single chip.
//  * v_crit_logic anchors the most robust core's SPEC Vmin band at 2.4 GHz:
//    TTT ~[865, 885] mV, TFF ~[865, 885] mV, TSS ~[860, 900] mV (Fig 4).
//  * Per-core offsets make the per-PMD worst offsets {40, 25, 10, 3} mV, so
//    the 8-benchmark mix yields the Fig 5 ladder (~925/905/895/885 mV as
//    weakest PMDs are slowed; the paper reports 915/900/885/875).
//  * vf_slope 0.13 mV/MHz gives ~156 mV of Vmin relief at 1.2 GHz, which is
//    what drops the all-PMDs-slow rung towards ~760 mV (Fig 5's last rung).

chip_config make_ttt_chip() {
    chip_config c;
    c.name = "TTT";
    c.corner = process_corner::ttt;
    c.v_crit_logic = millivolts{863.0};
    c.v_crit_sram_delta = millivolts{8.0};
    c.response = droop_response{1.0, 0.15, millivolts{20.0}};
    c.core_offset_mv = {40.0, 32.0, 25.0, 18.0, 10.0, 6.0, 0.0, 3.0};
    c.vf_slope_mv_per_mhz = 0.13;
    c.leakage_current_a = 7.3;
    return c;
}

chip_config make_tff_chip() {
    chip_config c;
    c.name = "TFF";
    c.corner = process_corner::tff;
    // Fast paths tolerate moderate noise well (gain 0.6) but the high-current
    // part exhausts decap quickly above the knee.
    c.v_crit_logic = millivolts{862.0};
    c.v_crit_sram_delta = millivolts{10.0};
    c.response = droop_response{0.65, 6.3, millivolts{35.0}};
    c.core_offset_mv = {34.0, 27.0, 21.0, 15.0, 8.0, 4.0, 0.0, 2.0};
    c.vf_slope_mv_per_mhz = 0.13;
    c.leakage_current_a = 11.5;
    return c;
}

chip_config make_tss_chip() {
    chip_config c;
    c.name = "TSS";
    c.corner = process_corner::tss;
    // Slow paths: every mV of droop costs more than 1 mV of Vmin even in the
    // benign region, and the response steepens further past the knee.
    c.v_crit_logic = millivolts{854.5};
    c.v_crit_sram_delta = millivolts{12.0};
    c.response = droop_response{1.3, 5.8, millivolts{35.0}};
    c.core_offset_mv = {38.0, 29.0, 23.0, 16.0, 9.0, 5.0, 0.0, 2.0};
    c.vf_slope_mv_per_mhz = 0.13;
    c.leakage_current_a = 3.9;
    return c;
}

chip_config make_chip(process_corner corner) {
    switch (corner) {
    case process_corner::ttt: return make_ttt_chip();
    case process_corner::tff: return make_tff_chip();
    case process_corner::tss: return make_tss_chip();
    }
    GB_ASSERT(false);
    return make_ttt_chip();
}

chip_config random_chip(process_corner corner, rng& r) {
    chip_config c = make_chip(corner);
    c.name = std::string(to_string(corner)) + "_rand";
    c.v_crit_logic += millivolts{r.normal(0.0, 6.0)};
    c.v_crit_sram_delta += millivolts{std::max(-4.0, r.normal(0.0, 2.0))};
    c.leakage_current_a =
        std::max(0.1, c.leakage_current_a * (1.0 + r.normal(0.0, 0.15)));
    // Redraw core offsets: half-normal spread, most robust core at zero.
    for (double& offset : c.core_offset_mv) {
        offset = std::abs(r.normal(0.0, 18.0));
    }
    const double min_offset =
        *std::min_element(c.core_offset_mv.begin(), c.core_offset_mv.end());
    for (double& offset : c.core_offset_mv) {
        offset -= min_offset;
    }
    return c;
}

} // namespace gb

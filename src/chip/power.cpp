#include "chip/power.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace gb {

watts cpu_power_model::core_dynamic_power(const execution_profile& profile,
                                          millivolts v, megahertz f) const {
    GB_EXPECTS(v.value > 0.0);
    GB_EXPECTS(f.value > 0.0);
    const double v_ratio = v / nominal_pmd_voltage;
    const double f_ratio = f / nominal_core_frequency;
    // I_dyn at (v, f) = I_nominal * (V/Vnom) * (f/fnom); P = V * I.
    const amperes current{profile.average_current_a() * v_ratio * f_ratio};
    return v * current;
}

watts cpu_power_model::chip_leakage_power(const chip_config& chip,
                                          millivolts v, celsius t) const {
    GB_EXPECTS(v.value > 0.0);
    const double voltage_factor =
        std::exp((v.value - nominal_pmd_voltage.value) /
                 leakage_voltage_scale_mv);
    const double temperature_factor =
        std::exp((t.value - 50.0) / leakage_temperature_scale_c);
    const amperes leak{chip.leakage_current_a * voltage_factor *
                       temperature_factor};
    return v * leak;
}

watts cpu_power_model::pmd_domain_power(
    const chip_config& chip, std::span<const core_assignment> assignments,
    millivolts v, celsius t) const {
    GB_EXPECTS(assignments.size() <=
               static_cast<std::size_t>(cores_per_chip));
    watts total = chip_leakage_power(chip, v, t);
    for (const core_assignment& a : assignments) {
        GB_EXPECTS(a.profile != nullptr);
        total += core_dynamic_power(*a.profile, v, a.frequency);
    }
    // Idle cores: clock/fetch baseline at the domain voltage, full frequency.
    const int idle_cores =
        cores_per_chip - static_cast<int>(assignments.size());
    const double v_ratio = v / nominal_pmd_voltage;
    const amperes idle_current{static_cast<double>(idle_cores) *
                               core_baseline_current_a * v_ratio};
    total += v * idle_current;
    return total;
}

} // namespace gb

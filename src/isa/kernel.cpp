#include "isa/kernel.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace gb {

kernel make_component_virus(cpu_component component) {
    kernel k;
    switch (component) {
    case cpu_component::fetch:
        // Branch-heavy straight-line code churns the front end / L1I.
        k.name = "virus_l1i";
        for (int i = 0; i < 64; ++i) {
            k.body.push_back(opcode::branch);
            k.body.push_back(opcode::int_alu);
        }
        break;
    case cpu_component::l1d:
        k.name = "virus_l1d";
        for (int i = 0; i < 64; ++i) {
            k.body.push_back(opcode::load_l1);
            k.body.push_back(opcode::store_l1);
        }
        break;
    case cpu_component::l2:
        k.name = "virus_l2";
        k.body.assign(64, opcode::load_l2);
        break;
    case cpu_component::l3:
        k.name = "virus_l3";
        k.body.assign(64, opcode::load_l3);
        break;
    case cpu_component::dram:
        k.name = "virus_dram";
        for (int i = 0; i < 32; ++i) {
            k.body.push_back(opcode::load_dram);
            k.body.push_back(opcode::store_dram);
        }
        break;
    case cpu_component::int_alu:
        k.name = "virus_int_alu";
        for (int i = 0; i < 64; ++i) {
            k.body.push_back(opcode::int_alu);
            k.body.push_back(opcode::int_mul);
        }
        break;
    case cpu_component::fp_alu:
        k.name = "virus_fp_alu";
        for (int i = 0; i < 64; ++i) {
            k.body.push_back(opcode::simd_mul);
            k.body.push_back(opcode::fp_mul);
        }
        break;
    case cpu_component::none:
        k.name = "virus_idle";
        k.body.assign(64, opcode::nop);
        break;
    }
    GB_ENSURES(!k.body.empty());
    return k;
}

std::vector<kernel> all_component_viruses() {
    return {
        make_component_virus(cpu_component::fetch),
        make_component_virus(cpu_component::l1d),
        make_component_virus(cpu_component::l2),
        make_component_virus(cpu_component::l3),
        make_component_virus(cpu_component::int_alu),
        make_component_virus(cpu_component::fp_alu),
    };
}

kernel make_square_wave_kernel(int high_cycles, int low_cycles) {
    GB_EXPECTS(high_cycles > 0 && low_cycles > 0);
    kernel k;
    k.name = "square_wave_" + std::to_string(high_cycles) + "_" +
             std::to_string(low_cycles);
    k.body.reserve(static_cast<std::size_t>(high_cycles + low_cycles));
    k.body.insert(k.body.end(), static_cast<std::size_t>(high_cycles),
                  opcode::simd_mul);
    k.body.insert(k.body.end(), static_cast<std::size_t>(low_cycles),
                  opcode::nop);
    return k;
}

kernel make_mix_kernel(const std::string& name,
                       const std::vector<opcode>& ops,
                       const std::vector<double>& weights,
                       std::size_t length) {
    GB_EXPECTS(!ops.empty());
    GB_EXPECTS(ops.size() == weights.size());
    GB_EXPECTS(length > 0);
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    GB_EXPECTS(total > 0.0);

    // Largest-remainder apportionment of `length` slots to the ops.
    std::vector<std::size_t> counts(ops.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const double exact =
            weights[i] / total * static_cast<double>(length);
        counts[i] = static_cast<std::size_t>(exact);
        assigned += counts[i];
        remainders.emplace_back(exact - static_cast<double>(counts[i]), i);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t k = 0; assigned < length; ++k) {
        ++counts[remainders[k % remainders.size()].second];
        ++assigned;
    }

    // Interleave round-robin so the mix is homogeneous across the loop.
    kernel result;
    result.name = name;
    result.body.reserve(length);
    std::vector<std::size_t> emitted(ops.size(), 0);
    while (result.body.size() < length) {
        for (std::size_t i = 0; i < ops.size(); ++i) {
            // Emit op i whenever it is behind its proportional share.
            const double share =
                static_cast<double>(counts[i]) / static_cast<double>(length);
            const double due =
                share * static_cast<double>(result.body.size() + 1);
            if (static_cast<double>(emitted[i]) < due &&
                emitted[i] < counts[i]) {
                result.body.push_back(ops[i]);
                ++emitted[i];
                if (result.body.size() == length) {
                    break;
                }
            }
        }
    }
    GB_ENSURES(result.body.size() == length);
    return result;
}

} // namespace gb

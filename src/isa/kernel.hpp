// Instruction kernels: the unit of workload the characterization framework
// runs.  A kernel is a loop body of instruction classes executed repeatedly.
// This header also provides the hand-crafted component viruses of the paper
// (Section I: "synthetic programs ... isolate particular components inside
// the CPU, including both L1 instruction and data cache memories, L2 cache as
// well as integer and FP ALUs").
#pragma once

#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace gb {

/// A named loop of instruction classes.
struct kernel {
    std::string name;
    std::vector<opcode> body;

    [[nodiscard]] std::size_t size() const { return body.size(); }
    [[nodiscard]] bool empty() const { return body.empty(); }
};

/// Hand-crafted diagnostic viruses, one per CPU component.  Each saturates a
/// single component so that failures under reduced voltage can be attributed
/// to it (cache SRAM vs pipeline logic).
[[nodiscard]] kernel make_component_virus(cpu_component component);

/// All component viruses the paper's methodology uses.
[[nodiscard]] std::vector<kernel> all_component_viruses();

/// A simple power virus: alternating bursts of maximum-current SIMD work and
/// idle cycles with the given half-period.  The GA typically rediscovers a
/// tuned version of this shape with the half-period matched to the PDN
/// resonance.
[[nodiscard]] kernel make_square_wave_kernel(int high_cycles, int low_cycles);

/// Build a kernel from an instruction-mix specification: `weights[i]` is the
/// relative frequency of `ops[i]` in a loop of `length` instructions,
/// arranged round-robin so the mix is homogeneous (no accidental dI/dt).
[[nodiscard]] kernel make_mix_kernel(const std::string& name,
                                     const std::vector<opcode>& ops,
                                     const std::vector<double>& weights,
                                     std::size_t length);

} // namespace gb

#include "isa/instruction.hpp"

#include "util/contracts.hpp"

namespace gb {

std::string_view to_string(cpu_component component) {
    switch (component) {
    case cpu_component::fetch: return "fetch/L1I";
    case cpu_component::l1d: return "L1D";
    case cpu_component::l2: return "L2";
    case cpu_component::l3: return "L3";
    case cpu_component::dram: return "DRAM";
    case cpu_component::int_alu: return "int ALU";
    case cpu_component::fp_alu: return "FP/SIMD ALU";
    case cpu_component::none: return "none";
    }
    return "?";
}

namespace {

// One row per opcode, in enum order.  Currents are per-core amperes at
// nominal voltage/frequency, calibrated so a fully packed SIMD loop draws
// ~1.5 A/core and an idle/nop loop ~0.45 A/core -- an aggregate swing of
// roughly 8 A across 8 aligned cores, in line with the droop magnitudes the
// X-Gene2 study implies (tens of mV at the PDN resonance).
constexpr std::array<op_traits, opcode_count> op_table{{
    // name        component               issue_A stall  mem_ns stall_A bytes  fp     load   store
    {"nop",        cpu_component::none,     0.05,   0,     0.0,   0.0,    0,     false, false, false},
    {"int_alu",    cpu_component::int_alu,  0.35,   0,     0.0,   0.0,    0,     false, false, false},
    {"int_mul",    cpu_component::int_alu,  0.50,   0,     0.0,   0.0,    0,     false, false, false},
    {"branch",     cpu_component::fetch,    0.25,   0,     0.0,   0.0,    0,     false, false, false},
    {"fp_alu",     cpu_component::fp_alu,   0.65,   0,     0.0,   0.0,    0,     true,  false, false},
    {"fp_mul",     cpu_component::fp_alu,   0.80,   0,     0.0,   0.0,    0,     true,  false, false},
    {"fp_div",     cpu_component::fp_alu,   0.40,   9,     0.0,   0.25,   0,     true,  false, false},
    {"simd_alu",   cpu_component::fp_alu,   1.05,   0,     0.0,   0.0,    0,     true,  false, false},
    {"simd_mul",   cpu_component::fp_alu,   1.30,   0,     0.0,   0.0,    0,     true,  false, false},
    {"load_l1",    cpu_component::l1d,      0.45,   0,     0.0,   0.0,    8,     false, true,  false},
    {"store_l1",   cpu_component::l1d,      0.40,   0,     0.0,   0.0,    8,     false, false, true},
    {"load_l2",    cpu_component::l2,       0.40,   7,     0.0,   0.15,   64,    false, true,  false},
    {"load_l3",    cpu_component::l3,       0.40,   28,    0.0,   0.12,   64,    false, true,  false},
    {"load_dram",  cpu_component::dram,     0.40,   0,     75.0,  0.10,   64,    false, true,  false},
    {"store_dram", cpu_component::dram,     0.35,   0,     40.0,  0.10,   64,    false, false, true},
}};

constexpr std::array<opcode, opcode_count> opcode_list{{
    opcode::nop, opcode::int_alu, opcode::int_mul, opcode::branch,
    opcode::fp_alu, opcode::fp_mul, opcode::fp_div, opcode::simd_alu,
    opcode::simd_mul, opcode::load_l1, opcode::store_l1, opcode::load_l2,
    opcode::load_l3, opcode::load_dram, opcode::store_dram,
}};

} // namespace

std::span<const opcode> all_opcodes() { return opcode_list; }

const op_traits& traits_of(opcode op) {
    const auto index = static_cast<std::size_t>(op);
    GB_EXPECTS(index < op_table.size());
    return op_table[index];
}

} // namespace gb

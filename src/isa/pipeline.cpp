#include "isa/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace gb {

double perf_counters::ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
}

double perf_counters::fp_fraction() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(fp_ops) /
                                   static_cast<double>(instructions);
}

double perf_counters::memory_intensity() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(dram_accesses) /
                                   static_cast<double>(instructions);
}

double perf_counters::sdc_vulnerability() const {
    if (instructions == 0) {
        return 0.0;
    }
    const double data_path = static_cast<double>(int_ops + fp_ops + loads +
                                                 stores);
    return std::clamp(data_path / static_cast<double>(instructions), 0.0,
                      1.0);
}

double execution_profile::average_current_a() const {
    if (current_trace.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const double i : current_trace) {
        sum += i;
    }
    return sum / static_cast<double>(current_trace.size());
}

double execution_profile::peak_current_a() const {
    if (current_trace.empty()) {
        return 0.0;
    }
    return *std::max_element(current_trace.begin(), current_trace.end());
}

double execution_profile::memory_bandwidth_bps(megahertz clock) const {
    if (counters.cycles == 0) {
        return 0.0;
    }
    const double seconds =
        static_cast<double>(counters.cycles) / clock.hertz();
    return static_cast<double>(counters.memory_bytes) / seconds;
}

pipeline_model::pipeline_model(megahertz clock) : clock_(clock) {
    GB_EXPECTS(clock.value > 0.0);
}

execution_profile pipeline_model::execute(const kernel& k,
                                          std::uint64_t min_cycles) const {
    GB_EXPECTS(!k.empty());
    GB_EXPECTS(min_cycles > 0);

    execution_profile profile;
    auto& counters = profile.counters;
    std::array<std::uint64_t, cpu_component_count> active_cycles{};

    const double cycle_ns = 1.0e3 / clock_.value; // MHz -> ns per cycle

    // One loop iteration carries no state into the next (the pipeline is
    // in-order with blocking misses), so the reference's cycle-by-cycle walk
    // is strictly periodic.  Simulate exactly one body pass, then tile its
    // trace and scale its integer counters by the iteration count: same
    // doubles, same integer totals, bitwise-identical profile.
    for (const opcode op : k.body) {
        const op_traits& t = traits_of(op);

        // Issue cycle.
        profile.current_trace.push_back(core_baseline_current_a +
                                        t.issue_current_a);
        ++counters.cycles;
        ++counters.instructions;
        active_cycles[static_cast<std::size_t>(cpu_component::fetch)] += 1;
        if (t.component != cpu_component::none &&
            t.component != cpu_component::fetch) {
            active_cycles[static_cast<std::size_t>(t.component)] += 1;
        }

        if (t.is_fp) {
            ++counters.fp_ops;
        } else if (op == opcode::int_alu || op == opcode::int_mul) {
            ++counters.int_ops;
        }
        if (op == opcode::branch) {
            ++counters.branches;
        }
        if (t.is_load) {
            ++counters.loads;
        }
        if (t.is_store) {
            ++counters.stores;
        }
        if (t.component == cpu_component::l2) {
            ++counters.l2_hits;
        }
        if (t.component == cpu_component::l3) {
            ++counters.l3_hits;
        }
        if (t.component == cpu_component::dram) {
            ++counters.dram_accesses;
        }
        counters.memory_bytes += static_cast<std::uint64_t>(t.memory_bytes);

        // Stall cycles: fixed-cycle stalls (cache misses, dividers) plus
        // wall-clock memory latency converted at the current frequency.
        std::uint64_t stalls = static_cast<std::uint64_t>(t.stall_cycles);
        if (t.memory_latency_ns > 0.0) {
            stalls += static_cast<std::uint64_t>(
                std::ceil(t.memory_latency_ns / cycle_ns));
        }
        for (std::uint64_t s = 0; s < stalls; ++s) {
            profile.current_trace.push_back(core_baseline_current_a +
                                            t.stall_current_a);
            ++counters.cycles;
            if (t.component != cpu_component::none) {
                active_cycles[static_cast<std::size_t>(t.component)] += 1;
            }
        }
    }

    // The reference re-checks `cycles < min_cycles` before each whole body
    // pass, so the iteration count is the ceiling division.
    const std::uint64_t block_cycles = counters.cycles;
    const std::uint64_t iterations =
        (min_cycles + block_cycles - 1) / block_cycles;
    const std::size_t block_size = profile.current_trace.size();
    profile.current_trace.resize(block_size *
                                 static_cast<std::size_t>(iterations));
    double* trace = profile.current_trace.data();
    for (std::uint64_t it = 1; it < iterations; ++it) {
        std::copy_n(trace, block_size,
                    trace + static_cast<std::size_t>(it) * block_size);
    }
    counters.cycles *= iterations;
    counters.instructions *= iterations;
    counters.int_ops *= iterations;
    counters.fp_ops *= iterations;
    counters.branches *= iterations;
    counters.loads *= iterations;
    counters.stores *= iterations;
    counters.l2_hits *= iterations;
    counters.l3_hits *= iterations;
    counters.dram_accesses *= iterations;
    counters.memory_bytes *= iterations;
    for (std::uint64_t& active : active_cycles) {
        active *= iterations;
    }

    for (std::size_t c = 0; c < active_cycles.size(); ++c) {
        profile.activity.utilization[c] =
            static_cast<double>(active_cycles[c]) /
            static_cast<double>(counters.cycles);
    }
    GB_ENSURES(profile.current_trace.size() == counters.cycles);
    return profile;
}

execution_profile pipeline_model::execute_reference(
    const kernel& k, std::uint64_t min_cycles) const {
    GB_EXPECTS(!k.empty());
    GB_EXPECTS(min_cycles > 0);

    execution_profile profile;
    auto& counters = profile.counters;
    std::array<std::uint64_t, cpu_component_count> active_cycles{};

    const double cycle_ns = 1.0e3 / clock_.value; // MHz -> ns per cycle
    // Generous upper bound so reserve covers stalls.
    profile.current_trace.reserve(min_cycles + 4096);

    while (counters.cycles < min_cycles) {
        for (const opcode op : k.body) {
            const op_traits& t = traits_of(op);

            // Issue cycle.
            profile.current_trace.push_back(core_baseline_current_a +
                                            t.issue_current_a);
            ++counters.cycles;
            ++counters.instructions;
            active_cycles[static_cast<std::size_t>(
                cpu_component::fetch)] += 1;
            if (t.component != cpu_component::none &&
                t.component != cpu_component::fetch) {
                active_cycles[static_cast<std::size_t>(t.component)] += 1;
            }

            if (t.is_fp) {
                ++counters.fp_ops;
            } else if (op == opcode::int_alu || op == opcode::int_mul) {
                ++counters.int_ops;
            }
            if (op == opcode::branch) {
                ++counters.branches;
            }
            if (t.is_load) {
                ++counters.loads;
            }
            if (t.is_store) {
                ++counters.stores;
            }
            if (t.component == cpu_component::l2) {
                ++counters.l2_hits;
            }
            if (t.component == cpu_component::l3) {
                ++counters.l3_hits;
            }
            if (t.component == cpu_component::dram) {
                ++counters.dram_accesses;
            }
            counters.memory_bytes +=
                static_cast<std::uint64_t>(t.memory_bytes);

            // Stall cycles: fixed-cycle stalls (cache misses, dividers) plus
            // wall-clock memory latency converted at the current frequency.
            std::uint64_t stalls = static_cast<std::uint64_t>(t.stall_cycles);
            if (t.memory_latency_ns > 0.0) {
                stalls += static_cast<std::uint64_t>(
                    std::ceil(t.memory_latency_ns / cycle_ns));
            }
            for (std::uint64_t s = 0; s < stalls; ++s) {
                profile.current_trace.push_back(core_baseline_current_a +
                                                t.stall_current_a);
                ++counters.cycles;
                if (t.component != cpu_component::none) {
                    active_cycles[static_cast<std::size_t>(t.component)] += 1;
                }
            }
        }
    }

    for (std::size_t c = 0; c < active_cycles.size(); ++c) {
        profile.activity.utilization[c] =
            static_cast<double>(active_cycles[c]) /
            static_cast<double>(counters.cycles);
    }
    GB_ENSURES(profile.current_trace.size() == counters.cycles);
    return profile;
}

} // namespace gb

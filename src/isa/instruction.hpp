// Abstract ARMv8-like instruction classes.
//
// The paper's diagnostic viruses are hand-crafted or GA-generated loops of
// real ARMv8 instructions chosen to stress specific micro-architectural
// components (L1I/L1D, L2, integer and FP ALUs) or to maximize dI/dt.  This
// module abstracts instructions into classes with the properties that matter
// for guardband characterization: which component they exercise, how much
// current they draw while active, and how long they occupy the in-order
// pipeline.  Memory instructions name the cache level they hit, standing in
// for the pointer-chasing buffers real viruses size to each level.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/units.hpp"

namespace gb {

/// Micro-architectural component an instruction class stresses.  Mirrors the
/// component list in the paper (Section I): L1I/L1D, L2, integer and FP ALUs.
enum class cpu_component : std::uint8_t {
    fetch,   ///< L1 instruction cache / front end
    l1d,     ///< L1 data cache
    l2,      ///< per-PMD shared L2
    l3,      ///< shared L3 behind the central switch
    dram,    ///< memory controller path
    int_alu, ///< integer execute
    fp_alu,  ///< floating-point / SIMD execute
    none,    ///< no specific component (nop)
};

constexpr int cpu_component_count = 8;

[[nodiscard]] std::string_view to_string(cpu_component component);

/// Instruction classes available to kernels and to the GA genome.
enum class opcode : std::uint8_t {
    nop,
    int_alu,
    int_mul,
    branch,
    fp_alu,
    fp_mul,
    fp_div,
    simd_alu,
    simd_mul,
    load_l1,
    store_l1,
    load_l2,
    load_l3,
    load_dram,
    store_dram,
};

constexpr int opcode_count = 15;

/// All opcodes, for iteration and for the GA's gene alphabet.
[[nodiscard]] std::span<const opcode> all_opcodes();

/// Static properties of one instruction class.
struct op_traits {
    std::string_view name;
    cpu_component component = cpu_component::none;
    /// Current drawn by the core on the instruction's issue cycle, on top of
    /// the clock/fetch baseline (amperes, at nominal V/F).
    double issue_current_a = 0.0;
    /// Extra cycles the in-order pipeline stalls after issue (cache misses,
    /// long dividers).  For DRAM ops this is derived from `memory_latency_ns`
    /// instead, so stalls scale with core frequency.
    int stall_cycles = 0;
    /// Wall-clock memory latency for DRAM-reaching ops; 0 for everything else.
    double memory_latency_ns = 0.0;
    /// Current drawn during stall cycles (amperes).
    double stall_current_a = 0.0;
    /// Bytes moved to/from memory (cacheline for DRAM-reaching ops).
    int memory_bytes = 0;
    bool is_fp = false;
    bool is_load = false;
    bool is_store = false;
};

/// Traits lookup for an opcode.
[[nodiscard]] const op_traits& traits_of(opcode op);

/// Baseline core current (clock tree, fetch, L1 arrays) present every cycle
/// (amperes).  A constant offset: contributes to power but not to dI/dt.
inline constexpr double core_baseline_current_a = 0.45;

} // namespace gb

// In-order pipeline timing/activity model.
//
// Executes a kernel in a loop and produces everything the guardband study
// needs from a workload:
//   * a per-cycle current trace (the PDN input),
//   * performance counters (the Vmin predictor's features),
//   * per-component activity factors (for attributing low-voltage failures
//     to cache SRAM vs pipeline logic).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/kernel.hpp"
#include "util/units.hpp"

namespace gb {

/// Hardware event counts over one execution, as exposed by PMU-style
/// counters on the real machine.
struct perf_counters {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t int_ops = 0;
    std::uint64_t fp_ops = 0;
    std::uint64_t branches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l3_hits = 0;
    std::uint64_t dram_accesses = 0;
    std::uint64_t memory_bytes = 0;

    [[nodiscard]] double ipc() const;
    [[nodiscard]] double fp_fraction() const;
    [[nodiscard]] double memory_intensity() const; ///< DRAM accesses per kilo-instruction
    /// Architectural vulnerability to *silent* corruption: the fraction of
    /// instructions whose corrupted result propagates into data (ALU ops,
    /// loads, stores) rather than derailing control flow (branches), which
    /// manifests as a crash or hang instead.  Drives the supervisor's
    /// sentinel scheduling, distinctly from the crash paths.
    [[nodiscard]] double sdc_vulnerability() const;
};

/// Fraction of cycles each CPU component was active, indexed by
/// cpu_component.
struct component_activity {
    std::array<double, cpu_component_count> utilization{};

    [[nodiscard]] double of(cpu_component component) const {
        return utilization[static_cast<std::size_t>(component)];
    }
};

/// Everything measured from executing a kernel.
struct execution_profile {
    perf_counters counters;
    component_activity activity;
    /// Per-cycle core current (amperes at nominal V/F), covering an integral
    /// number of loop iterations so the trace tiles periodically.
    std::vector<double> current_trace;

    [[nodiscard]] double average_current_a() const;
    [[nodiscard]] double peak_current_a() const;
    /// DRAM bandwidth in bytes per second at the given clock.
    [[nodiscard]] double memory_bandwidth_bps(megahertz clock) const;
};

/// Single-issue in-order pipeline with blocking misses.  Memory latencies for
/// DRAM-reaching ops are fixed in wall-clock time, so their cycle cost scales
/// with core frequency (lower frequency hides memory latency -- the effect
/// that makes frequency scaling attractive for memory-bound workloads).
class pipeline_model {
public:
    explicit pipeline_model(megahertz clock);

    /// Execute the kernel for at least `min_cycles` cycles, rounded up to a
    /// whole number of loop iterations.
    ///
    /// The loop body is strictly periodic (no inter-iteration state), so the
    /// implementation simulates exactly one iteration and tiles its current
    /// trace and counter deltas across the iteration count.  Counters are
    /// integer multiples and the trace is a byte-exact repetition, so the
    /// profile is bitwise-identical to execute_reference's cycle-by-cycle
    /// walk (held by kernel_equivalence_test over randomized kernels).
    [[nodiscard]] execution_profile execute(const kernel& k,
                                            std::uint64_t min_cycles) const;

    /// Retained reference implementation of execute (one simulated cycle per
    /// output cycle, the pre-optimization code path).  Differential-testing
    /// twin only.
    [[nodiscard]] execution_profile execute_reference(
        const kernel& k, std::uint64_t min_cycles) const;

    [[nodiscard]] megahertz clock() const { return clock_; }

private:
    megahertz clock_;
};

} // namespace gb

// Set-associative cache hierarchy simulator.
//
// The X-Gene2's hierarchy (32 KB L1D per core, 256 KB L2 per PMD, 8 MB L3
// behind the central switch) determines where a memory instruction's data
// lives, which in turn sets its stall time and current signature.  The ISA
// layer abstracts this with explicit load_l1/load_l2/... classes -- the way
// the paper's viruses use pointer-chase buffers sized to each level.  This
// module provides the underlying machinery: true-LRU set-associative
// caches, an inclusive three-level hierarchy, and stream drivers, so that
// the abstraction can be *derived* (which buffer size hits where) instead
// of assumed, and so cache-resident vs streaming workloads can be modelled
// from address traces.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/contracts.hpp"

namespace gb {

struct cache_config {
    std::int64_t size_bytes = 32 * 1024;
    int line_bytes = 64;
    int ways = 8;

    [[nodiscard]] std::int64_t sets() const {
        return size_bytes / (static_cast<std::int64_t>(line_bytes) * ways);
    }
    void validate() const;
};

/// One set-associative, write-allocate, write-back cache level with true
/// LRU replacement.
class cache_level {
public:
    explicit cache_level(cache_config config);

    struct access_result {
        bool hit = false;
        bool evicted_dirty = false;      ///< writeback generated
        std::uint64_t evicted_line = 0;  ///< line address if evicted
        bool evicted_valid = false;
    };

    /// Access one byte address; fills on miss (evicting LRU if needed).
    access_result access(std::uint64_t address, bool is_write);

    /// True if the line holding `address` is present (no LRU update).
    [[nodiscard]] bool contains(std::uint64_t address) const;

    void reset();

    [[nodiscard]] const cache_config& config() const { return config_; }
    [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return accesses_ - hits_; }
    [[nodiscard]] std::uint64_t writebacks() const { return writebacks_; }
    [[nodiscard]] double hit_rate() const;

private:
    struct way_entry {
        std::uint64_t tag = 0;
        std::uint32_t last_use = 0;
        bool valid = false;
        bool dirty = false;
    };

    cache_config config_;
    std::int64_t set_count_;
    std::vector<way_entry> ways_; ///< set-major [set * ways + way]
    std::uint32_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t writebacks_ = 0;
};

/// Where an access was served from.
enum class hit_level : std::uint8_t { l1, l2, l3, memory };

[[nodiscard]] std::string_view to_string(hit_level level);

/// Three-level hierarchy with fill-on-miss at every level (the normally
/// inclusive behaviour of the X-Gene2 hierarchy).
class cache_hierarchy {
public:
    cache_hierarchy(cache_config l1, cache_config l2, cache_config l3);

    /// X-Gene2 data-side hierarchy: 32 KB / 256 KB / 8 MB.
    [[nodiscard]] static cache_hierarchy xgene2();

    [[nodiscard]] hit_level access(std::uint64_t address, bool is_write);

    [[nodiscard]] const cache_level& l1() const { return l1_; }
    [[nodiscard]] const cache_level& l2() const { return l2_; }
    [[nodiscard]] const cache_level& l3() const { return l3_; }
    void reset();

    /// Load-to-use latency of a level in core cycles at 2.4 GHz (matches
    /// the ISA layer's stall model).
    [[nodiscard]] static int latency_cycles(hit_level level);

private:
    cache_level l1_;
    cache_level l2_;
    cache_level l3_;
};

} // namespace gb

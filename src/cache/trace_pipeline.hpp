// Trace-driven execution: the bridge between address-level workloads and
// the declared-level kernels of the ISA layer.
//
// A traced instruction carries an optional memory address; at execution
// time the cache hierarchy decides which level serves it, and the
// instruction is charged the current/stall signature of the *resolved*
// class (load_l1/l2/l3/dram).  Running the same pointer-chase loop both
// ways -- declared (kernel of load_l2) and traced (addresses over a 64 KB
// buffer) -- must produce matching profiles; that equivalence is what
// licenses the paper-style declared kernels everywhere else in the library.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "isa/pipeline.hpp"
#include "util/rng.hpp"

namespace gb {

/// One instruction of a trace.  For memory operations (`load`/`store` set)
/// the concrete class is resolved through the cache simulator; for
/// everything else `op` is charged as-is.
struct traced_instruction {
    opcode op = opcode::nop;
    std::uint64_t address = 0;
    bool is_memory = false;

    static traced_instruction compute(opcode op) {
        return traced_instruction{op, 0, false};
    }
    static traced_instruction load(std::uint64_t address) {
        return traced_instruction{opcode::load_l1, address, true};
    }
    static traced_instruction store(std::uint64_t address) {
        return traced_instruction{opcode::store_l1, address, true};
    }
};

/// Executes instruction traces against a cache hierarchy, producing the
/// same execution_profile the declared-level pipeline produces.
class trace_pipeline {
public:
    trace_pipeline(megahertz clock, cache_hierarchy& hierarchy);

    /// Run the trace `repetitions` times (the hierarchy warm from lap to
    /// lap, as a loop would be).
    [[nodiscard]] execution_profile execute(
        std::span<const traced_instruction> trace, int repetitions);

    [[nodiscard]] const cache_hierarchy& hierarchy() const {
        return hierarchy_;
    }

private:
    megahertz clock_;
    cache_hierarchy& hierarchy_;
};

/// Resolved load/store class for a hit level.
[[nodiscard]] opcode load_class_of(hit_level level);
[[nodiscard]] opcode store_class_of(hit_level level);

/// Build a pointer-chase trace: `loads` loads walking a shuffled
/// `buffer_bytes` buffer line by line, with `compute_per_load` int ops
/// between hops.
[[nodiscard]] std::vector<traced_instruction> make_chase_trace(
    std::int64_t buffer_bytes, int loads, int compute_per_load, rng& r);

/// Build a streaming trace: sequential 8-byte loads over `bytes`, with
/// `compute_per_load` FP ops between them (a stream kernel's inner loop).
[[nodiscard]] std::vector<traced_instruction> make_stream_trace(
    std::int64_t bytes, int compute_per_load);

} // namespace gb

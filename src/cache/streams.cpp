#include "cache/streams.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "util/contracts.hpp"

namespace gb {

std::vector<std::uint64_t> make_chase_order(std::int64_t buffer_bytes,
                                            int line_bytes, rng& r) {
    GB_EXPECTS(buffer_bytes >= line_bytes);
    GB_EXPECTS(line_bytes > 0);
    const auto lines =
        static_cast<std::size_t>(buffer_bytes / line_bytes);
    std::vector<std::uint64_t> order(lines);
    std::iota(order.begin(), order.end(), 0u);
    // Fisher-Yates over the visit order; addresses are line-aligned.
    for (std::size_t i = lines; i > 1; --i) {
        std::swap(order[i - 1], order[r.uniform_index(i)]);
    }
    for (std::uint64_t& line : order) {
        line *= static_cast<std::uint64_t>(line_bytes);
    }
    return order;
}

chase_measurement measure_chase(cache_hierarchy& hierarchy,
                                std::int64_t buffer_bytes, int laps, rng& r) {
    GB_EXPECTS(laps >= 2);
    const std::vector<std::uint64_t> order =
        make_chase_order(buffer_bytes, 64, r);

    // Warm-up lap fills the hierarchy; measured laps count.
    for (const std::uint64_t address : order) {
        (void)hierarchy.access(address, false);
    }
    std::array<std::uint64_t, 4> level_counts{};
    double latency_sum = 0.0;
    std::uint64_t accesses = 0;
    for (int lap = 1; lap < laps; ++lap) {
        for (const std::uint64_t address : order) {
            const hit_level level = hierarchy.access(address, false);
            ++level_counts[static_cast<std::size_t>(level)];
            latency_sum += cache_hierarchy::latency_cycles(level);
            ++accesses;
        }
    }

    chase_measurement result;
    result.average_latency_cycles =
        latency_sum / static_cast<double>(accesses);
    std::size_t best = 0;
    for (std::size_t i = 1; i < level_counts.size(); ++i) {
        if (level_counts[i] > level_counts[best]) {
            best = i;
        }
    }
    result.dominant_level = static_cast<hit_level>(best);
    result.dominant_fraction = static_cast<double>(level_counts[best]) /
                               static_cast<double>(accesses);
    return result;
}

hit_level steady_state_level(std::int64_t buffer_bytes) {
    cache_hierarchy hierarchy = cache_hierarchy::xgene2();
    rng r(buffer_bytes < 0 ? 1
                           : static_cast<std::uint64_t>(buffer_bytes) + 1);
    return measure_chase(hierarchy, buffer_bytes, 4, r).dominant_level;
}

kernel make_pointer_chase_kernel(std::int64_t buffer_bytes,
                                 int loads_per_iteration) {
    GB_EXPECTS(loads_per_iteration > 0);
    const hit_level level = steady_state_level(buffer_bytes);
    opcode op = opcode::load_l1;
    switch (level) {
    case hit_level::l1: op = opcode::load_l1; break;
    case hit_level::l2: op = opcode::load_l2; break;
    case hit_level::l3: op = opcode::load_l3; break;
    case hit_level::memory: op = opcode::load_dram; break;
    }
    kernel k;
    k.name = "chase_" + std::to_string(buffer_bytes / 1024) + "K";
    k.body.assign(static_cast<std::size_t>(loads_per_iteration), op);
    return k;
}

double sequential_sweep_l1_hit_rate(cache_hierarchy& hierarchy,
                                    std::int64_t bytes) {
    GB_EXPECTS(bytes >= 64);
    std::uint64_t l1_hits = 0;
    std::uint64_t accesses = 0;
    for (std::int64_t address = 0; address < bytes; address += 8) {
        const hit_level level =
            hierarchy.access(static_cast<std::uint64_t>(address), false);
        l1_hits += level == hit_level::l1 ? 1 : 0;
        ++accesses;
    }
    return static_cast<double>(l1_hits) / static_cast<double>(accesses);
}

} // namespace gb

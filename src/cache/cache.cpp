#include "cache/cache.hpp"

#include <bit>

namespace gb {

void cache_config::validate() const {
    GB_EXPECTS(line_bytes > 0 &&
               std::has_single_bit(static_cast<unsigned>(line_bytes)));
    GB_EXPECTS(ways > 0);
    GB_EXPECTS(size_bytes > 0);
    GB_EXPECTS(size_bytes % (static_cast<std::int64_t>(line_bytes) * ways) ==
               0);
    GB_EXPECTS(std::has_single_bit(static_cast<std::uint64_t>(sets())));
}

cache_level::cache_level(cache_config config)
    : config_(config), set_count_(config.sets()),
      ways_(static_cast<std::size_t>(set_count_ * config.ways)) {
    config.validate();
}

cache_level::access_result cache_level::access(std::uint64_t address,
                                               bool is_write) {
    const std::uint64_t line =
        address / static_cast<std::uint64_t>(config_.line_bytes);
    const auto set = static_cast<std::int64_t>(
        line & (static_cast<std::uint64_t>(set_count_) - 1));
    const std::uint64_t tag =
        line / static_cast<std::uint64_t>(set_count_);
    way_entry* base = &ways_[static_cast<std::size_t>(set * config_.ways)];

    ++accesses_;
    ++clock_;

    access_result result;
    way_entry* victim = base;
    for (int w = 0; w < config_.ways; ++w) {
        way_entry& entry = base[w];
        if (entry.valid && entry.tag == tag) {
            ++hits_;
            entry.last_use = clock_;
            entry.dirty = entry.dirty || is_write;
            result.hit = true;
            return result;
        }
        // Track LRU victim: invalid ways win immediately.
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.last_use < victim->last_use) {
            victim = &entry;
        }
    }

    // Miss: fill into the victim way.
    if (victim->valid) {
        result.evicted_valid = true;
        result.evicted_line =
            victim->tag * static_cast<std::uint64_t>(set_count_) +
            static_cast<std::uint64_t>(set);
        if (victim->dirty) {
            result.evicted_dirty = true;
            ++writebacks_;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->last_use = clock_;
    victim->dirty = is_write;
    return result;
}

bool cache_level::contains(std::uint64_t address) const {
    const std::uint64_t line =
        address / static_cast<std::uint64_t>(config_.line_bytes);
    const auto set = static_cast<std::int64_t>(
        line & (static_cast<std::uint64_t>(set_count_) - 1));
    const std::uint64_t tag = line / static_cast<std::uint64_t>(set_count_);
    const way_entry* base =
        &ways_[static_cast<std::size_t>(set * config_.ways)];
    for (int w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            return true;
        }
    }
    return false;
}

void cache_level::reset() {
    for (way_entry& entry : ways_) {
        entry = way_entry{};
    }
    clock_ = 0;
    accesses_ = 0;
    hits_ = 0;
    writebacks_ = 0;
}

double cache_level::hit_rate() const {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(hits_) /
                                static_cast<double>(accesses_);
}

std::string_view to_string(hit_level level) {
    switch (level) {
    case hit_level::l1: return "L1";
    case hit_level::l2: return "L2";
    case hit_level::l3: return "L3";
    case hit_level::memory: return "memory";
    }
    return "?";
}

cache_hierarchy::cache_hierarchy(cache_config l1, cache_config l2,
                                 cache_config l3)
    : l1_(l1), l2_(l2), l3_(l3) {
    GB_EXPECTS(l1.size_bytes < l2.size_bytes);
    GB_EXPECTS(l2.size_bytes < l3.size_bytes);
}

cache_hierarchy cache_hierarchy::xgene2() {
    return cache_hierarchy(cache_config{32 * 1024, 64, 8},
                           cache_config{256 * 1024, 64, 8},
                           cache_config{8 * 1024 * 1024, 64, 16});
}

hit_level cache_hierarchy::access(std::uint64_t address, bool is_write) {
    if (l1_.access(address, is_write).hit) {
        return hit_level::l1;
    }
    if (l2_.access(address, false).hit) {
        return hit_level::l2;
    }
    if (l3_.access(address, false).hit) {
        return hit_level::l3;
    }
    return hit_level::memory;
}

void cache_hierarchy::reset() {
    l1_.reset();
    l2_.reset();
    l3_.reset();
}

int cache_hierarchy::latency_cycles(hit_level level) {
    // Matches the ISA stall model: L1 1 cycle, L2 8, L3 29, DRAM ~181 at
    // 2.4 GHz (75 ns).
    switch (level) {
    case hit_level::l1: return 1;
    case hit_level::l2: return 8;
    case hit_level::l3: return 29;
    case hit_level::memory: return 181;
    }
    return 0;
}

} // namespace gb

// Address-stream drivers and the bridge from buffer sizes to the ISA's
// memory instruction classes.
//
// The paper's cache viruses use pointer-chase buffers sized so every access
// hits exactly one level of the hierarchy.  `steady_state_level` runs that
// experiment on the simulator: chase a buffer until the hit pattern
// stabilizes and report where the accesses land.  `make_pointer_chase_kernel`
// then emits the ISA kernel whose declared level is the *measured* one --
// deriving the abstraction the isa layer builds on, instead of assuming it.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "isa/kernel.hpp"
#include "util/rng.hpp"

namespace gb {

/// A randomized circular pointer-chase order over `buffer_bytes`, one hop
/// per cache line (the classic latency-benchmark layout: each line visited
/// exactly once per lap, in an order the prefetcher cannot guess).
[[nodiscard]] std::vector<std::uint64_t> make_chase_order(
    std::int64_t buffer_bytes, int line_bytes, rng& r);

/// Average per-access latency (cycles) and the dominant level after running
/// `laps` of the chase to steady state.
struct chase_measurement {
    double average_latency_cycles = 0.0;
    hit_level dominant_level = hit_level::l1;
    double dominant_fraction = 0.0;
};

[[nodiscard]] chase_measurement measure_chase(cache_hierarchy& hierarchy,
                                              std::int64_t buffer_bytes,
                                              int laps, rng& r);

/// The level where a steady-state chase over `buffer_bytes` is served.
[[nodiscard]] hit_level steady_state_level(std::int64_t buffer_bytes);

/// ISA kernel whose loads target the level a buffer of this size actually
/// hits on the simulated X-Gene2 hierarchy.
[[nodiscard]] kernel make_pointer_chase_kernel(std::int64_t buffer_bytes,
                                               int loads_per_iteration = 32);

/// Hit rate of a sequential 8-byte-stride sweep over a large array (spatial
/// locality through 64-byte lines: 7 of 8 accesses hit L1).
[[nodiscard]] double sequential_sweep_l1_hit_rate(cache_hierarchy& hierarchy,
                                                  std::int64_t bytes);

} // namespace gb

#include "cache/trace_pipeline.hpp"

#include <cmath>

#include "cache/streams.hpp"
#include "util/contracts.hpp"

namespace gb {

opcode load_class_of(hit_level level) {
    switch (level) {
    case hit_level::l1: return opcode::load_l1;
    case hit_level::l2: return opcode::load_l2;
    case hit_level::l3: return opcode::load_l3;
    case hit_level::memory: return opcode::load_dram;
    }
    GB_ASSERT(false);
    return opcode::load_l1;
}

opcode store_class_of(hit_level level) {
    // The store buffer hides cache-resident store latency; only
    // memory-destined stores stall like their load counterparts.
    return level == hit_level::memory ? opcode::store_dram
                                      : opcode::store_l1;
}

trace_pipeline::trace_pipeline(megahertz clock, cache_hierarchy& hierarchy)
    : clock_(clock), hierarchy_(hierarchy) {
    GB_EXPECTS(clock.value > 0.0);
}

execution_profile trace_pipeline::execute(
    std::span<const traced_instruction> trace, int repetitions) {
    GB_EXPECTS(!trace.empty());
    GB_EXPECTS(repetitions >= 1);

    execution_profile profile;
    auto& counters = profile.counters;
    std::array<std::uint64_t, cpu_component_count> active_cycles{};
    const double cycle_ns = 1.0e3 / clock_.value;

    for (int rep = 0; rep < repetitions; ++rep) {
        for (const traced_instruction& instruction : trace) {
            opcode resolved = instruction.op;
            if (instruction.is_memory) {
                const bool is_store =
                    traits_of(instruction.op).is_store;
                const hit_level level =
                    hierarchy_.access(instruction.address, is_store);
                resolved = is_store ? store_class_of(level)
                                    : load_class_of(level);
            }
            const op_traits& t = traits_of(resolved);

            profile.current_trace.push_back(core_baseline_current_a +
                                            t.issue_current_a);
            ++counters.cycles;
            ++counters.instructions;
            active_cycles[static_cast<std::size_t>(cpu_component::fetch)] +=
                1;
            if (t.component != cpu_component::none &&
                t.component != cpu_component::fetch) {
                active_cycles[static_cast<std::size_t>(t.component)] += 1;
            }
            if (t.is_fp) {
                ++counters.fp_ops;
            } else if (resolved == opcode::int_alu ||
                       resolved == opcode::int_mul) {
                ++counters.int_ops;
            }
            if (resolved == opcode::branch) {
                ++counters.branches;
            }
            if (t.is_load) {
                ++counters.loads;
            }
            if (t.is_store) {
                ++counters.stores;
            }
            if (t.component == cpu_component::l2) {
                ++counters.l2_hits;
            }
            if (t.component == cpu_component::l3) {
                ++counters.l3_hits;
            }
            if (t.component == cpu_component::dram) {
                ++counters.dram_accesses;
            }
            counters.memory_bytes +=
                static_cast<std::uint64_t>(t.memory_bytes);

            std::uint64_t stalls =
                static_cast<std::uint64_t>(t.stall_cycles);
            if (t.memory_latency_ns > 0.0) {
                stalls += static_cast<std::uint64_t>(
                    std::ceil(t.memory_latency_ns / cycle_ns));
            }
            for (std::uint64_t s = 0; s < stalls; ++s) {
                profile.current_trace.push_back(core_baseline_current_a +
                                                t.stall_current_a);
                ++counters.cycles;
                if (t.component != cpu_component::none) {
                    active_cycles[static_cast<std::size_t>(t.component)] +=
                        1;
                }
            }
        }
    }

    for (std::size_t c = 0; c < active_cycles.size(); ++c) {
        profile.activity.utilization[c] =
            static_cast<double>(active_cycles[c]) /
            static_cast<double>(counters.cycles);
    }
    GB_ENSURES(profile.current_trace.size() == counters.cycles);
    return profile;
}

std::vector<traced_instruction> make_chase_trace(std::int64_t buffer_bytes,
                                                 int loads,
                                                 int compute_per_load,
                                                 rng& r) {
    GB_EXPECTS(loads >= 1);
    GB_EXPECTS(compute_per_load >= 0);
    const std::vector<std::uint64_t> order =
        make_chase_order(buffer_bytes, 64, r);
    std::vector<traced_instruction> trace;
    trace.reserve(static_cast<std::size_t>(loads) *
                  static_cast<std::size_t>(1 + compute_per_load));
    for (int i = 0; i < loads; ++i) {
        trace.push_back(traced_instruction::load(
            order[static_cast<std::size_t>(i) % order.size()]));
        for (int c = 0; c < compute_per_load; ++c) {
            trace.push_back(traced_instruction::compute(opcode::int_alu));
        }
    }
    return trace;
}

std::vector<traced_instruction> make_stream_trace(std::int64_t bytes,
                                                  int compute_per_load) {
    GB_EXPECTS(bytes >= 8);
    GB_EXPECTS(compute_per_load >= 0);
    std::vector<traced_instruction> trace;
    trace.reserve(static_cast<std::size_t>(bytes / 8) *
                  static_cast<std::size_t>(1 + compute_per_load));
    for (std::int64_t address = 0; address < bytes; address += 8) {
        trace.push_back(traced_instruction::load(
            static_cast<std::uint64_t>(address)));
        for (int c = 0; c < compute_per_load; ++c) {
            trace.push_back(traced_instruction::compute(opcode::fp_mul));
        }
    }
    return trace;
}

} // namespace gb

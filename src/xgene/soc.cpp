#include "xgene/soc.hpp"

#include "util/contracts.hpp"

namespace gb {

int soc_topology::pmd_of_core(int core) const {
    GB_EXPECTS(core >= 0 && core < core_count());
    return core / cores_per_pmd;
}

soc_topology xgene2_topology() { return soc_topology{}; }

std::string_view to_string(power_domain domain) {
    switch (domain) {
    case power_domain::pmd: return "PMD";
    case power_domain::soc: return "SoC";
    case power_domain::dram: return "DRAM";
    case power_domain::other: return "other";
    }
    return "?";
}

double operating_point::relative_performance() const {
    double sum = 0.0;
    for (const megahertz f : pmd_frequency) {
        sum += f.value;
    }
    return sum / (4.0 * 2400.0);
}

operating_point operating_point::nominal() { return operating_point{}; }

} // namespace gb

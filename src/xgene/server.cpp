#include "xgene/server.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace gb {

watts soc_power_model::power(millivolts v) const {
    GB_EXPECTS(v.value > 0.0);
    const double v_ratio = v / nominal_soc_voltage;
    const double dynamic = dynamic_w * v_ratio * v_ratio;
    const double leakage =
        leakage_w *
        std::exp((v.value - nominal_soc_voltage.value) /
                 cpu_power_model::leakage_voltage_scale_mv) *
        v_ratio;
    return watts{fixed_w + dynamic + leakage};
}

xgene2_server::xgene2_server(chip_config chip, std::uint64_t seed,
                             dram_geometry memory_geometry,
                             retention_model retention, study_limits limits)
    : topology_(xgene2_topology()),
      cpu_(std::move(chip), make_xgene2_pdn()),
      memory_(memory_geometry, retention, seed, limits),
      op_(operating_point::nominal()) {}

void xgene2_server::apply(const operating_point& op) {
    GB_EXPECTS(op.pmd_voltage.value > 0.0);
    GB_EXPECTS(op.soc_voltage.value > 0.0);
    for (const megahertz f : op.pmd_frequency) {
        GB_EXPECTS(f.value > 0.0 && f <= nominal_core_frequency);
    }
    slimpro_.configure_refresh_period(memory_, op.refresh_period);
    op_ = op;
}

sensor_readings xgene2_server::read_sensors(
    const workload_snapshot& snapshot) const {
    for (const core_assignment& a : snapshot.assignments) {
        const int pmd = topology_.pmd_of_core(a.core);
        GB_EXPECTS(a.frequency ==
                   op_.pmd_frequency[static_cast<std::size_t>(pmd)]);
    }
    sensor_readings readings;
    readings.pmd_power = cpu_power_.pmd_domain_power(
        cpu_.config(), snapshot.assignments, op_.pmd_voltage,
        snapshot.chip_temperature);
    readings.soc_power = soc_power_.power(op_.soc_voltage);
    readings.dram_power =
        dram_power_.power(op_.refresh_period, snapshot.dram_bandwidth_gbps);
    readings.other_power = other_domain_power;
    readings.soc_temperature = snapshot.chip_temperature;
    for (int dimm = 0;
         dimm < std::min(memory_.geometry().dimms, 4); ++dimm) {
        readings.dimm_temperature[static_cast<std::size_t>(dimm)] =
            memory_.dimm_temperature(dimm);
    }
    return readings;
}

run_evaluation xgene2_server::execute(const workload_snapshot& snapshot,
                                      std::uint64_t phase_seed, rng& r) {
    const run_evaluation eval = cpu_.evaluate_run(
        snapshot.assignments, op_.pmd_voltage, phase_seed, r);
    slimpro_.report_cpu_event(eval.outcome);
    return eval;
}

} // namespace gb

#include "xgene/slimpro.hpp"

#include "util/contracts.hpp"

namespace gb {

void slimpro::report_dram_scan(const scan_result& scan) {
    dram_errors_.corrected += scan.ce_words;
    dram_errors_.uncorrected += scan.ue_words + scan.sdc_words;
}

void slimpro::report_cpu_event(run_outcome outcome) {
    switch (outcome) {
    case run_outcome::corrected_error:
        ++cache_errors_.corrected;
        break;
    case run_outcome::uncorrectable_error:
        ++cache_errors_.uncorrected;
        break;
    case run_outcome::ok:
    case run_outcome::silent_data_corruption:
    case run_outcome::crash:
    case run_outcome::hang:
    case run_outcome::aborted_rig:
        // SDC is by definition invisible to the hardware; crashes, hangs
        // and rig aborts are caught by the watchdog, not the error log.
        break;
    }
}

void slimpro::clear_error_log() {
    cache_errors_ = error_counters{};
    dram_errors_ = error_counters{};
}

const error_counters& slimpro::errors(error_source source) const {
    return source == error_source::cache ? cache_errors_ : dram_errors_;
}

std::uint64_t slimpro::total_corrected() const {
    return cache_errors_.corrected + dram_errors_.corrected;
}

std::uint64_t slimpro::total_uncorrected() const {
    return cache_errors_.uncorrected + dram_errors_.uncorrected;
}

void slimpro::configure_refresh_period(memory_system& memory,
                                       milliseconds period) const {
    GB_EXPECTS(period.value >= nominal_refresh_period.value);
    memory.set_refresh_period(period);
}

} // namespace gb

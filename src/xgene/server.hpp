// The assembled micro-server: CPU chip model + DRAM subsystem + SLIMpro,
// operated at a configurable operating point, with per-domain power
// accounting (the paper's Fig 9 decomposition: PMD / SoC / DRAM / other).
#pragma once

#include <cstdint>
#include <vector>

#include "chip/chip_model.hpp"
#include "chip/power.hpp"
#include "dram/memory_system.hpp"
#include "dram/power.hpp"
#include "util/units.hpp"
#include "xgene/slimpro.hpp"
#include "xgene/soc.hpp"

namespace gb {

/// Power of the SoC (uncore) domain: L3, central switch, MCBs/MCUs.  A large
/// share is IO/PHY on fixed rails, which is why undervolting this domain
/// saves comparatively little (Fig 9 reports only 6.9%).
struct soc_power_model {
    double fixed_w = 2.8;   ///< PHY/IO, independent of the SoC rail
    double dynamic_w = 1.4; ///< at nominal SoC voltage
    double leakage_w = 1.3; ///< at nominal SoC voltage

    [[nodiscard]] watts power(millivolts v) const;
};

/// Constant management/board overhead (SLIMpro, fans are external).
inline constexpr watts other_domain_power{0.3};

/// What the server is executing, for sensor/power purposes.
struct workload_snapshot {
    std::vector<core_assignment> assignments;
    double dram_bandwidth_gbps = 0.0;
    celsius chip_temperature{50.0};
};

class xgene2_server {
public:
    xgene2_server(chip_config chip, std::uint64_t seed,
                  dram_geometry memory_geometry = xgene2_memory_geometry(),
                  retention_model retention = {}, study_limits limits = {});

    [[nodiscard]] chip_model& cpu() { return cpu_; }
    [[nodiscard]] const chip_model& cpu() const { return cpu_; }
    [[nodiscard]] memory_system& memory() { return memory_; }
    [[nodiscard]] const memory_system& memory() const { return memory_; }
    [[nodiscard]] slimpro& management() { return slimpro_; }
    [[nodiscard]] const soc_topology& topology() const { return topology_; }

    /// Apply an operating point: programs the DRAM refresh period through
    /// SLIMpro and records the voltage/frequency settings.
    void apply(const operating_point& op);
    [[nodiscard]] const operating_point& current_operating_point() const {
        return op_;
    }

    /// Sensor snapshot under a workload at the current operating point.
    /// Core assignments must run at their PMD's configured frequency.
    [[nodiscard]] sensor_readings read_sensors(
        const workload_snapshot& snapshot) const;

    /// Whether a workload executes correctly at the current operating point
    /// (one stochastic characterization run).
    [[nodiscard]] run_evaluation execute(const workload_snapshot& snapshot,
                                         std::uint64_t phase_seed, rng& r);

private:
    soc_topology topology_;
    chip_model cpu_;
    memory_system memory_;
    slimpro slimpro_;
    cpu_power_model cpu_power_;
    soc_power_model soc_power_;
    dram_power_model dram_power_;
    operating_point op_;
};

} // namespace gb

// Structural description of the X-Gene2 Server-on-Chip (paper Section II,
// Fig 1): four PMDs of two ARMv8 cores each, per-core L1s, per-PMD L2, an
// 8 MB L3 behind the cache-coherent Central Switch, two Memory Controller
// Bridges each feeding two DDR3 Memory Control Units, and the SLIMpro
// management processor.  Power is delivered on three independently scalable
// domains: PMD (cores + L1/L2), SoC (L3/CSW/MCB/MCU uncore) and DRAM.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/units.hpp"

namespace gb {

struct soc_topology {
    int pmds = 4;
    int cores_per_pmd = 2;
    int l1d_kb = 32;
    int l1i_kb = 32;
    int l2_per_pmd_kb = 256;
    int l3_mb = 8;
    int mcbs = 2;
    int mcus_per_mcb = 2;

    [[nodiscard]] int core_count() const { return pmds * cores_per_pmd; }
    [[nodiscard]] int mcu_count() const { return mcbs * mcus_per_mcb; }
    [[nodiscard]] int pmd_of_core(int core) const;
};

[[nodiscard]] soc_topology xgene2_topology();

/// The independently controllable supply/timing domains.
enum class power_domain : std::uint8_t { pmd, soc, dram, other };

[[nodiscard]] std::string_view to_string(power_domain domain);

inline constexpr millivolts nominal_soc_voltage{950.0};

/// A complete server operating point: the knobs the characterization study
/// turns (PMD voltage, per-PMD frequency, SoC voltage, DRAM refresh period).
struct operating_point {
    millivolts pmd_voltage{980.0};
    millivolts soc_voltage = nominal_soc_voltage;
    std::array<megahertz, 4> pmd_frequency{megahertz{2400.0},
                                           megahertz{2400.0},
                                           megahertz{2400.0},
                                           megahertz{2400.0}};
    milliseconds refresh_period{64.0};

    /// Aggregate performance relative to all-PMDs-nominal (the paper's Fig 5
    /// x-axis: sum of PMD frequencies over the nominal sum).
    [[nodiscard]] double relative_performance() const;

    [[nodiscard]] static operating_point nominal();
};

} // namespace gb

// SLIMpro management-processor facade.
//
// On the real board the Scalable Lightweight Intelligent Management
// Processor boots the system, exposes the temperature/power sensors, reports
// every ECC correction/detection to the kernel, and is the interface through
// which MCU parameters (timings, refresh period TREFP) are reconfigured.
// The characterization framework talks exclusively to this facade, the same
// way the paper's framework talks to the real SLIMpro.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "chip/chip_model.hpp"
#include "dram/memory_system.hpp"
#include "util/units.hpp"
#include "xgene/soc.hpp"

namespace gb {

/// One snapshot of the on-board sensors.
struct sensor_readings {
    watts pmd_power{0.0};
    watts soc_power{0.0};
    watts dram_power{0.0};
    watts other_power{0.0};
    std::array<celsius, 4> dimm_temperature{celsius{30.0}, celsius{30.0},
                                            celsius{30.0}, celsius{30.0}};
    celsius soc_temperature{50.0};

    [[nodiscard]] watts total_power() const {
        return pmd_power + soc_power + dram_power + other_power;
    }
};

/// Classes of error events SLIMpro reports to the kernel log.
enum class error_source : std::uint8_t { cache, dram };

struct error_counters {
    std::uint64_t corrected = 0;
    std::uint64_t uncorrected = 0;
};

class slimpro {
public:
    /// Error reporting, as the kernel's EDAC driver would see it.
    void report_dram_scan(const scan_result& scan);
    void report_cpu_event(run_outcome outcome);
    void clear_error_log();

    [[nodiscard]] const error_counters& errors(error_source source) const;
    [[nodiscard]] std::uint64_t total_corrected() const;
    [[nodiscard]] std::uint64_t total_uncorrected() const;

    /// MCU configuration: refresh period (TREFP), bounded like the real
    /// register (the paper programs up to 35x nominal).
    void configure_refresh_period(memory_system& memory,
                                  milliseconds period) const;

private:
    error_counters cache_errors_;
    error_counters dram_errors_;
};

} // namespace gb

// dI/dt virus generation: GA over instruction loops, fitness = radiated EM
// amplitude at the PDN resonance (the paper's Section III.C methodology).
#pragma once

#include <cstddef>
#include <vector>

#include "em/em_probe.hpp"
#include "ga/genetic.hpp"
#include "isa/kernel.hpp"
#include "isa/pipeline.hpp"
#include "pdn/pdn.hpp"

namespace gb {

/// GA problem: genome is a fixed-length loop of instruction classes; fitness
/// is the EM probe amplitude of the loop's current trace.
class virus_problem {
public:
    using genome_type = std::vector<opcode>;

    virus_problem(const pipeline_model& pipeline, const em_probe& probe,
                  std::size_t genome_length, std::uint64_t trace_cycles);

    [[nodiscard]] genome_type random_genome(rng& r) const;
    [[nodiscard]] double fitness(const genome_type& g) const;
    [[nodiscard]] genome_type mutate(const genome_type& g, rng& r) const;
    [[nodiscard]] genome_type crossover(const genome_type& a,
                                        const genome_type& b, rng& r) const;

    /// Per-gene mutation probability (default 2 expected flips per genome).
    void set_mutation_rate(double per_gene_probability);

private:
    const pipeline_model& pipeline_;
    const em_probe& probe_;
    std::size_t genome_length_;
    std::uint64_t trace_cycles_;
    double mutation_rate_;
};

/// Result of a virus search: the evolved kernel plus GA diagnostics.
struct virus_search_result {
    kernel virus;
    double em_amplitude = 0.0;
    std::vector<ga_generation_stats> history;
};

/// Evolve a dI/dt virus for a machine with the given pipeline and PDN.  The
/// probe is tuned to the PDN resonance internally.
[[nodiscard]] virus_search_result evolve_didt_virus(
    const pipeline_model& pipeline, const pdn_parameters& pdn,
    const ga_config& config, rng& r, std::size_t genome_length = 96,
    std::uint64_t trace_cycles = 2048);

} // namespace gb

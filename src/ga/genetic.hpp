// Generic genetic algorithm, used to craft dI/dt viruses the way the paper
// does ("these stress-tests are automatically generated using optimization
// approaches, such as Genetic Algorithms, guided by direct voltage
// measurements" -- here guided by the EM probe instead, per [14]).
//
// The algorithm is deliberately classic: tournament selection, one-point
// crossover, per-gene mutation, elitism, generational replacement.  It is a
// template over a problem policy so tests can drive it with toy problems.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gb {

/// Requirements on a GA problem definition.
template <typename P>
concept ga_problem = requires(const P& p, const typename P::genome_type& g,
                              rng& r) {
    { p.random_genome(r) } -> std::same_as<typename P::genome_type>;
    { p.fitness(g) } -> std::convertible_to<double>;
    { p.mutate(g, r) } -> std::same_as<typename P::genome_type>;
    { p.crossover(g, g, r) } -> std::same_as<typename P::genome_type>;
};

struct ga_config {
    std::size_t population_size = 48;
    std::size_t generations = 40;
    std::size_t tournament_size = 3;
    std::size_t elite_count = 2;
    double crossover_probability = 0.9;

    void validate() const {
        GB_EXPECTS(population_size >= 2);
        GB_EXPECTS(generations >= 1);
        GB_EXPECTS(tournament_size >= 1 &&
                   tournament_size <= population_size);
        GB_EXPECTS(elite_count < population_size);
        GB_EXPECTS(crossover_probability >= 0.0 &&
                   crossover_probability <= 1.0);
    }
};

/// Per-generation statistics, for convergence analysis.
struct ga_generation_stats {
    double best_fitness = 0.0;
    double mean_fitness = 0.0;
};

template <typename Genome>
struct ga_result {
    Genome best;
    double best_fitness = 0.0;
    std::vector<ga_generation_stats> history;
};

/// Run the GA to maximize `problem.fitness`.
template <ga_problem P>
ga_result<typename P::genome_type> run_ga(const P& problem,
                                          const ga_config& config, rng& r) {
    config.validate();
    using genome = typename P::genome_type;

    struct scored {
        genome g;
        double fitness;
    };

    std::vector<scored> population;
    population.reserve(config.population_size);
    for (std::size_t i = 0; i < config.population_size; ++i) {
        genome g = problem.random_genome(r);
        const double f = problem.fitness(g);
        population.push_back(scored{std::move(g), f});
    }

    const auto by_fitness_desc = [](const scored& a, const scored& b) {
        return a.fitness > b.fitness;
    };

    ga_result<genome> result;
    for (std::size_t gen = 0; gen < config.generations; ++gen) {
        std::sort(population.begin(), population.end(), by_fitness_desc);

        double sum = 0.0;
        for (const scored& s : population) {
            sum += s.fitness;
        }
        result.history.push_back(ga_generation_stats{
            population.front().fitness,
            sum / static_cast<double>(population.size())});

        std::vector<scored> next;
        next.reserve(config.population_size);
        for (std::size_t e = 0; e < config.elite_count; ++e) {
            next.push_back(population[e]);
        }

        const auto tournament = [&]() -> const scored& {
            std::size_t best = r.uniform_index(population.size());
            for (std::size_t t = 1; t < config.tournament_size; ++t) {
                const std::size_t c = r.uniform_index(population.size());
                if (population[c].fitness > population[best].fitness) {
                    best = c;
                }
            }
            return population[best];
        };

        while (next.size() < config.population_size) {
            const scored& a = tournament();
            const scored& b = tournament();
            genome child = r.bernoulli(config.crossover_probability)
                               ? problem.crossover(a.g, b.g, r)
                               : a.g;
            child = problem.mutate(child, r);
            const double f = problem.fitness(child);
            next.push_back(scored{std::move(child), f});
        }
        population = std::move(next);
    }

    std::sort(population.begin(), population.end(), by_fitness_desc);
    result.best = population.front().g;
    result.best_fitness = population.front().fitness;
    result.history.push_back(ga_generation_stats{
        population.front().fitness, population.front().fitness});
    return result;
}

} // namespace gb

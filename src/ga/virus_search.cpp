#include "ga/virus_search.hpp"

#include "util/contracts.hpp"

namespace gb {

virus_problem::virus_problem(const pipeline_model& pipeline,
                             const em_probe& probe, std::size_t genome_length,
                             std::uint64_t trace_cycles)
    : pipeline_(pipeline), probe_(probe), genome_length_(genome_length),
      trace_cycles_(trace_cycles),
      mutation_rate_(2.0 / static_cast<double>(genome_length)) {
    GB_EXPECTS(genome_length >= 2);
    GB_EXPECTS(trace_cycles >= 64);
}

virus_problem::genome_type virus_problem::random_genome(rng& r) const {
    // Initialize with runs of identical instructions rather than i.i.d.
    // genes: dI/dt structure lives in bursts, and a run-structured initial
    // population gives the GA a usable gradient (i.i.d. genomes are all
    // near-homogeneous mixes with uniformly poor fitness).
    const std::span<const opcode> alphabet = all_opcodes();
    genome_type g;
    g.reserve(genome_length_);
    while (g.size() < genome_length_) {
        const opcode op = alphabet[r.uniform_index(alphabet.size())];
        const std::size_t run = 4 + r.uniform_index(28);
        for (std::size_t k = 0; k < run && g.size() < genome_length_; ++k) {
            g.push_back(op);
        }
    }
    return g;
}

double virus_problem::fitness(const genome_type& g) const {
    kernel k;
    k.name = "ga_candidate";
    k.body = g;
    const execution_profile profile = pipeline_.execute(k, trace_cycles_);
    return probe_.amplitude(profile.current_trace);
}

virus_problem::genome_type virus_problem::mutate(const genome_type& g,
                                                 rng& r) const {
    const std::span<const opcode> alphabet = all_opcodes();
    genome_type mutated = g;
    // Point mutations explore locally ...
    for (opcode& op : mutated) {
        if (r.bernoulli(mutation_rate_)) {
            op = alphabet[r.uniform_index(alphabet.size())];
        }
    }
    // ... and an occasional run rewrite shifts burst boundaries, the move
    // that actually tunes the loop toward the PDN resonance.
    if (r.bernoulli(0.5)) {
        const std::size_t start = r.uniform_index(mutated.size());
        const std::size_t run = 3 + r.uniform_index(22);
        const opcode op = alphabet[r.uniform_index(alphabet.size())];
        for (std::size_t k = 0; k < run && start + k < mutated.size(); ++k) {
            mutated[start + k] = op;
        }
    }
    return mutated;
}

virus_problem::genome_type virus_problem::crossover(const genome_type& a,
                                                    const genome_type& b,
                                                    rng& r) const {
    GB_EXPECTS(a.size() == b.size());
    // One-point crossover: loop prefixes carry the burst structure the GA
    // builds up, so a single cut preserves them better than uniform mixing.
    const std::size_t cut = 1 + r.uniform_index(a.size() - 1);
    genome_type child = a;
    for (std::size_t i = cut; i < b.size(); ++i) {
        child[i] = b[i];
    }
    return child;
}

void virus_problem::set_mutation_rate(double per_gene_probability) {
    GB_EXPECTS(per_gene_probability >= 0.0 && per_gene_probability <= 1.0);
    mutation_rate_ = per_gene_probability;
}

virus_search_result evolve_didt_virus(const pipeline_model& pipeline,
                                      const pdn_parameters& pdn,
                                      const ga_config& config, rng& r,
                                      std::size_t genome_length,
                                      std::uint64_t trace_cycles) {
    const em_probe probe(pdn.resonant_frequency_hz(), pipeline.clock());
    const virus_problem problem(pipeline, probe, genome_length, trace_cycles);
    ga_result<virus_problem::genome_type> ga = run_ga(problem, config, r);

    virus_search_result result;
    result.virus.name = "ga_didt_virus";
    result.virus.body = std::move(ga.best);
    result.em_amplitude = ga.best_fitness;
    result.history = std::move(ga.history);
    return result;
}

} // namespace gb

#include "ecc/secded.hpp"

#include <bit>

#include "util/contracts.hpp"

namespace gb {

const secded72_64& secded72_64::instance() {
    static const secded72_64 codec;
    return codec;
}

secded72_64::secded72_64() {
    // Hsiao construction: data columns are distinct odd-weight 8-bit vectors
    // of weight >= 3 (weight-3 first: C(8,3) = 56 of them, then weight-5 for
    // the remaining 8); check-bit columns are the unit vectors.  Odd column
    // weight guarantees that any double error produces an even-weight, hence
    // nonzero and non-column, syndrome -> detectable but not (mis)correctable.
    int next = 0;
    for (int weight : {3, 5}) {
        for (int pattern = 0; pattern < 256 && next < data_bits; ++pattern) {
            if (std::popcount(static_cast<unsigned>(pattern)) == weight) {
                columns_[next++] = static_cast<std::uint8_t>(pattern);
            }
        }
    }
    GB_ASSERT(next == data_bits);
    for (int c = 0; c < check_bits; ++c) {
        columns_[data_bits + c] = static_cast<std::uint8_t>(1u << c);
    }

    syndrome_to_bit_.fill(-1);
    for (int bit = 0; bit < total_bits; ++bit) {
        GB_ASSERT(syndrome_to_bit_[columns_[bit]] == -1);
        syndrome_to_bit_[columns_[bit]] = static_cast<std::int16_t>(bit);
    }
}

std::uint8_t secded72_64::encode_check(std::uint64_t data) const {
    std::uint8_t check = 0;
    while (data != 0) {
        const int bit = std::countr_zero(data);
        check ^= columns_[bit];
        data &= data - 1;
    }
    return check;
}

secded_word secded72_64::encode(std::uint64_t data) const {
    return secded_word{data, encode_check(data)};
}

decode_result secded72_64::decode(const secded_word& word) const {
    const std::uint8_t syndrome =
        static_cast<std::uint8_t>(encode_check(word.data) ^ word.check);
    if (syndrome == 0) {
        return decode_result{decode_status::clean, word.data, -1};
    }
    const std::int16_t bit = syndrome_to_bit_[syndrome];
    if (bit < 0) {
        // Even-weight or unused syndrome: detectable, uncorrectable.
        return decode_result{decode_status::uncorrectable, word.data, -1};
    }
    std::uint64_t data = word.data;
    if (bit < data_bits) {
        data ^= std::uint64_t{1} << bit;
    }
    // A flipped check bit leaves the data intact; still reported as corrected.
    return decode_result{decode_status::corrected, data, bit};
}

std::uint8_t secded72_64::column(int bit_position) const {
    GB_EXPECTS(bit_position >= 0 && bit_position < total_bits);
    return columns_[static_cast<std::size_t>(bit_position)];
}

word_outcome classify_decode(const decode_result& decoded,
                             std::uint64_t golden) {
    switch (decoded.status) {
    case decode_status::clean:
        // A zero syndrome with wrong data means the flips cancelled into
        // another valid codeword: silent.
        return decoded.data == golden ? word_outcome::clean
                                      : word_outcome::silent_corruption;
    case decode_status::corrected:
        return decoded.data == golden ? word_outcome::corrected
                                      : word_outcome::silent_corruption;
    case decode_status::uncorrectable:
        return word_outcome::uncorrectable;
    }
    return word_outcome::uncorrectable;
}

secded_word flip_codeword_bit(secded_word word, int bit_position) {
    GB_EXPECTS(bit_position >= 0 && bit_position < secded72_64::total_bits);
    if (bit_position < secded72_64::data_bits) {
        word.data ^= std::uint64_t{1} << bit_position;
    } else {
        word.check ^= static_cast<std::uint8_t>(
            1u << (bit_position - secded72_64::data_bits));
    }
    return word;
}

} // namespace gb

// (72,64) SECDED error-correcting code, Hsiao construction.
//
// The X-Gene2 memory controllers protect every 64-bit word with 8 check bits
// stored on a ninth DRAM chip per rank (hence the 72 chips in the paper's
// testbed: 4 DIMMs x 2 ranks x 9 chips).  A Hsiao code uses only odd-weight
// parity-check columns, which gives single-error correction, double-error
// detection, and minimal-logic encoders -- the construction actually used in
// server memory controllers.
//
// This is a real codec, not a probability model: the DRAM simulator flips
// stored bits at weak-cell locations and the MCU read path runs the decode
// below, so the paper's "all manifested errors are corrected by ECC" claim is
// reproduced by exercising the actual code.
#pragma once

#include <array>
#include <cstdint>

namespace gb {

/// A codeword: 64 data bits plus 8 check bits.
struct secded_word {
    std::uint64_t data = 0;
    std::uint8_t check = 0;

    friend bool operator==(const secded_word&, const secded_word&) = default;
};

/// Outcome of decoding one possibly-corrupted codeword.
enum class decode_status {
    clean,         ///< syndrome zero: no error
    corrected,     ///< single-bit error corrected (CE)
    uncorrectable, ///< double (or detectable multi-) bit error (UE)
};

struct decode_result {
    decode_status status = decode_status::clean;
    std::uint64_t data = 0;  ///< corrected data (valid for clean/corrected)
    int corrected_bit = -1;  ///< 0..63 data bit, 64..71 check bit, -1 if none
};

/// Ground-truth classification of one decode against the golden data the
/// word held.  The decoder alone cannot see silent corruption -- a 3+ bit
/// flip aliasing onto a valid single-error syndrome "corrects" to the wrong
/// word -- so the golden comparison is what separates the SDC signal from a
/// genuine CE.  This is the per-word taxonomy the DRAM scan and the
/// operating-point supervisor's error accounting share.
enum class word_outcome : std::uint8_t {
    clean,             ///< no error
    corrected,         ///< CE: corrected to the golden data
    uncorrectable,     ///< UE: detected, machine-check visible
    silent_corruption, ///< SDC: decode succeeded but the data is wrong
};

[[nodiscard]] word_outcome classify_decode(const decode_result& decoded,
                                           std::uint64_t golden);

/// The (72,64) Hsiao codec.  Stateless apart from precomputed tables; obtain
/// the process-wide instance via `instance()`.
class secded72_64 {
public:
    static const secded72_64& instance();

    /// Compute the 8 check bits for a data word.
    [[nodiscard]] std::uint8_t encode_check(std::uint64_t data) const;

    /// Encode a data word into a full codeword.
    [[nodiscard]] secded_word encode(std::uint64_t data) const;

    /// Decode a (possibly corrupted) codeword.
    [[nodiscard]] decode_result decode(const secded_word& word) const;

    /// Parity-check column for codeword bit position 0..71 (data bits first).
    [[nodiscard]] std::uint8_t column(int bit_position) const;

    static constexpr int data_bits = 64;
    static constexpr int check_bits = 8;
    static constexpr int total_bits = 72;

private:
    secded72_64();

    std::array<std::uint8_t, total_bits> columns_{};
    // syndrome value -> codeword bit position, or -1 when the syndrome does
    // not correspond to any single-bit error.
    std::array<std::int16_t, 256> syndrome_to_bit_{};
};

/// Flip one bit (0..71) of a codeword: utility for fault injection.
[[nodiscard]] secded_word flip_codeword_bit(secded_word word,
                                            int bit_position);

} // namespace gb

// Discrete PID controller with clamping anti-windup and derivative-on-
// measurement, as implemented on the testbed's controller board (four
// closed-loop PID controllers on a Raspberry Pi 3 driving solid-state
// relays).
#pragma once

#include "util/contracts.hpp"

namespace gb {

struct pid_gains {
    double kp = 0.0;
    double ki = 0.0;
    double kd = 0.0;
};

class pid_controller {
public:
    pid_controller(pid_gains gains, double output_min, double output_max);

    /// One control step; returns the clamped actuator command.
    double update(double setpoint, double measurement, double dt_s);

    void reset();

    [[nodiscard]] const pid_gains& gains() const { return gains_; }

private:
    pid_gains gains_;
    double output_min_;
    double output_max_;
    double integral_ = 0.0;
    double previous_measurement_ = 0.0;
    bool first_update_ = true;
};

} // namespace gb

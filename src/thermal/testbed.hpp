// The temperature-controlled DRAM testbed (paper Section III.B, Fig 3):
// one heating adapter per DIMM, each regulated by its own PID loop reading
// the thermocouple and driving a solid-state relay.  The paper reports a
// maximum deviation below 1 C from the set temperature; the regulation test
// here reproduces that bound.
#pragma once

#include <vector>

#include "dram/memory_system.hpp"
#include "thermal/pid.hpp"
#include "thermal/plant.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace gb {

class thermal_testbed {
public:
    thermal_testbed(int dimm_count, const thermal_plant_config& plant_config,
                    std::uint64_t seed);

    void set_target(int dimm, celsius target);
    void set_all_targets(celsius target);
    [[nodiscard]] celsius target(int dimm) const;

    /// Run the control loop for `duration_s` at the given control period.
    /// Tracking statistics (deviation from target) accumulate only after
    /// `settle_s` so the approach transient does not count, matching how the
    /// testbed is operated (heat, wait, then measure).
    void run(double duration_s, double control_period_s, double settle_s);

    /// Enable the dual-sensor cross-check: when thermocouple and SPD
    /// readings disagree by more than `threshold` for several consecutive
    /// control steps, the controller raises an alarm for that DIMM and
    /// falls back to the SPD sensor (the paper's testbed reads both "to
    /// aggressively control the heating elements").
    void enable_spd_cross_check(celsius threshold);
    [[nodiscard]] bool cross_check_alarm(int dimm) const;
    /// Number of DIMMs whose cross-check alarm is currently raised.
    [[nodiscard]] int alarm_count() const;

    /// Inject a thermocouple mounting fault on one DIMM.
    void inject_thermocouple_fault(int dimm, celsius offset);

    [[nodiscard]] celsius temperature(int dimm) const;
    /// Largest |T - target| observed for a DIMM after settling.
    [[nodiscard]] double max_deviation_c(int dimm) const;
    [[nodiscard]] int dimm_count() const;

    /// Copy the current plant temperatures into a memory system.
    void apply_to(memory_system& memory) const;

private:
    std::vector<thermal_plant> plants_;
    std::vector<pid_controller> controllers_;
    std::vector<celsius> targets_;
    std::vector<double> max_deviation_c_;
    rng sensor_rng_;
    bool cross_check_enabled_ = false;
    celsius cross_check_threshold_{2.0};
    std::vector<int> disagreement_streak_;
    std::vector<bool> alarm_;
};

/// PID gains tuned for the default plant (90 s time constant, 60 W heater):
/// fast approach with < 1 C overshoot and steady tracking.
[[nodiscard]] pid_gains default_dimm_heater_gains();

} // namespace gb

#include "thermal/plant.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace gb {

thermal_plant::thermal_plant(const thermal_plant_config& config)
    : config_(config), temperature_(config.ambient) {
    GB_EXPECTS(config.time_constant_s > 0.0);
    GB_EXPECTS(config.heater_gain_c_per_w > 0.0);
    GB_EXPECTS(config.heater_max_w > 0.0);
}

void thermal_plant::step(double dt_s, double duty) {
    GB_EXPECTS(dt_s > 0.0);
    GB_EXPECTS(duty >= 0.0 && duty <= 1.0);
    const double power_w = duty * config_.heater_max_w + config_.self_heat_w;
    const double steady =
        config_.ambient.value + config_.heater_gain_c_per_w * power_w;
    // Exact discretization of dT/dt = (steady - T) / tau.
    const double alpha = 1.0 - std::exp(-dt_s / config_.time_constant_s);
    temperature_ = celsius{temperature_.value +
                           alpha * (steady - temperature_.value)};
}

celsius thermal_plant::thermocouple_reading(rng& r) const {
    return celsius{temperature_.value + thermocouple_fault_.value +
                   r.normal(0.0, 0.1)};
}

celsius thermal_plant::spd_reading(rng& r) const {
    const double noisy = temperature_.value + r.normal(0.0, 0.2);
    return celsius{std::round(noisy * 4.0) / 4.0};
}

} // namespace gb

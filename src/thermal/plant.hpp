// First-order thermal plant of one heated DIMM.
//
// The paper's testbed (Fig 3) puts a resistive element and thermally
// conductive tape on each DIMM, with a thermocouple and the SPD chip's
// embedded sensor for feedback.  Thermally this is a lumped RC: the DIMM
// warms towards ambient-plus-heater-gain with a single time constant, plus a
// small self-heating term when the memory is active.
#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace gb {

struct thermal_plant_config {
    celsius ambient{30.0};
    /// Time constant of the DIMM + adapter assembly.
    double time_constant_s = 90.0;
    /// Steady-state degrees above ambient per heater watt.
    double heater_gain_c_per_w = 1.0;
    /// Maximum power of the resistive element.
    double heater_max_w = 60.0;
    /// Self-heating of an active DIMM (adds to the heater).
    double self_heat_w = 2.0;
};

/// Continuous-time first-order model, integrated explicitly.  The solid
/// state relays time-proportion the heater; over the plant's ~90 s time
/// constant a duty cycle is equivalent to continuous fractional power.
class thermal_plant {
public:
    explicit thermal_plant(const thermal_plant_config& config);

    /// Advance `dt_s` seconds with the heater at `duty` in [0, 1].
    void step(double dt_s, double duty);

    [[nodiscard]] celsius temperature() const { return temperature_; }
    [[nodiscard]] const thermal_plant_config& config() const {
        return config_;
    }

    /// Thermocouple: fast, ~0.1 C noise.  Subject to mounting faults (tape
    /// lifting off the DIMM), modelled as a constant read offset.
    [[nodiscard]] celsius thermocouple_reading(rng& r) const;
    /// SPD-embedded sensor: quantized to 0.25 C steps with ~0.2 C noise.
    /// On-die, so it cannot detach -- the cross-check reference.
    [[nodiscard]] celsius spd_reading(rng& r) const;

    /// Inject a thermocouple mounting fault: readings shift by `offset`.
    void set_thermocouple_fault(celsius offset) {
        thermocouple_fault_ = offset;
    }
    [[nodiscard]] celsius thermocouple_fault() const {
        return thermocouple_fault_;
    }

private:
    thermal_plant_config config_;
    celsius temperature_;
    celsius thermocouple_fault_{0.0};
};

} // namespace gb

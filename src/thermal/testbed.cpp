#include "thermal/testbed.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace gb {

pid_gains default_dimm_heater_gains() {
    // Duty-cycle output (0..1) against degrees of error: proportional band
    // of ~7 C, slow integral to remove the ambient-dependent offset, strong
    // derivative to catch the first-order lag.
    return pid_gains{0.15, 0.004, 1.2};
}

thermal_testbed::thermal_testbed(int dimm_count,
                                 const thermal_plant_config& plant_config,
                                 std::uint64_t seed)
    : sensor_rng_(seed) {
    GB_EXPECTS(dimm_count >= 1);
    plants_.reserve(static_cast<std::size_t>(dimm_count));
    controllers_.reserve(static_cast<std::size_t>(dimm_count));
    for (int i = 0; i < dimm_count; ++i) {
        plants_.emplace_back(plant_config);
        controllers_.emplace_back(default_dimm_heater_gains(), 0.0, 1.0);
        targets_.push_back(plant_config.ambient);
        max_deviation_c_.push_back(0.0);
        disagreement_streak_.push_back(0);
        alarm_.push_back(false);
    }
}

void thermal_testbed::set_target(int dimm, celsius target) {
    GB_EXPECTS(dimm >= 0 && dimm < dimm_count());
    const auto& cfg = plants_[static_cast<std::size_t>(dimm)].config();
    const double max_reachable =
        cfg.ambient.value +
        cfg.heater_gain_c_per_w * (cfg.heater_max_w + cfg.self_heat_w);
    GB_EXPECTS(target.value >= cfg.ambient.value);
    GB_EXPECTS(target.value <= max_reachable - 2.0);
    targets_[static_cast<std::size_t>(dimm)] = target;
    max_deviation_c_[static_cast<std::size_t>(dimm)] = 0.0;
}

void thermal_testbed::set_all_targets(celsius target) {
    for (int i = 0; i < dimm_count(); ++i) {
        set_target(i, target);
    }
}

celsius thermal_testbed::target(int dimm) const {
    GB_EXPECTS(dimm >= 0 && dimm < dimm_count());
    return targets_[static_cast<std::size_t>(dimm)];
}

void thermal_testbed::run(double duration_s, double control_period_s,
                          double settle_s) {
    GB_EXPECTS(duration_s > 0.0);
    GB_EXPECTS(control_period_s > 0.0 && control_period_s < duration_s);
    GB_EXPECTS(settle_s >= 0.0 && settle_s < duration_s);

    const auto steps =
        static_cast<std::size_t>(std::ceil(duration_s / control_period_s));
    for (std::size_t step = 0; step < steps; ++step) {
        const double t = static_cast<double>(step) * control_period_s;
        for (std::size_t i = 0; i < plants_.size(); ++i) {
            const celsius thermocouple =
                plants_[i].thermocouple_reading(sensor_rng_);
            celsius reading = thermocouple;
            if (cross_check_enabled_) {
                const celsius spd = plants_[i].spd_reading(sensor_rng_);
                if (std::abs(thermocouple.value - spd.value) >
                    cross_check_threshold_.value) {
                    ++disagreement_streak_[i];
                } else if (!alarm_[i]) {
                    disagreement_streak_[i] = 0;
                }
                if (disagreement_streak_[i] >= 5) {
                    alarm_[i] = true;
                }
                if (alarm_[i]) {
                    reading = spd; // fall back to the on-die sensor
                }
            }
            const double duty = controllers_[i].update(
                targets_[i].value, reading.value, control_period_s);
            plants_[i].step(control_period_s, duty);
            if (t >= settle_s) {
                const double deviation = std::abs(
                    plants_[i].temperature().value - targets_[i].value);
                max_deviation_c_[i] =
                    std::max(max_deviation_c_[i], deviation);
            }
        }
    }
}

celsius thermal_testbed::temperature(int dimm) const {
    GB_EXPECTS(dimm >= 0 && dimm < dimm_count());
    return plants_[static_cast<std::size_t>(dimm)].temperature();
}

double thermal_testbed::max_deviation_c(int dimm) const {
    GB_EXPECTS(dimm >= 0 && dimm < dimm_count());
    return max_deviation_c_[static_cast<std::size_t>(dimm)];
}

int thermal_testbed::dimm_count() const {
    return static_cast<int>(plants_.size());
}

void thermal_testbed::enable_spd_cross_check(celsius threshold) {
    GB_EXPECTS(threshold.value > 0.5); // must exceed combined sensor noise
    cross_check_enabled_ = true;
    cross_check_threshold_ = threshold;
}

bool thermal_testbed::cross_check_alarm(int dimm) const {
    GB_EXPECTS(dimm >= 0 && dimm < dimm_count());
    return alarm_[static_cast<std::size_t>(dimm)];
}

int thermal_testbed::alarm_count() const {
    int count = 0;
    for (int dimm = 0; dimm < dimm_count(); ++dimm) {
        if (cross_check_alarm(dimm)) {
            ++count;
        }
    }
    return count;
}

void thermal_testbed::inject_thermocouple_fault(int dimm, celsius offset) {
    GB_EXPECTS(dimm >= 0 && dimm < dimm_count());
    plants_[static_cast<std::size_t>(dimm)].set_thermocouple_fault(offset);
}

void thermal_testbed::apply_to(memory_system& memory) const {
    GB_EXPECTS(memory.geometry().dimms <= dimm_count());
    for (int dimm = 0; dimm < memory.geometry().dimms; ++dimm) {
        memory.set_dimm_temperature(dimm, temperature(dimm));
    }
}

} // namespace gb

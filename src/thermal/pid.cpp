#include "thermal/pid.hpp"

#include <algorithm>

namespace gb {

pid_controller::pid_controller(pid_gains gains, double output_min,
                               double output_max)
    : gains_(gains), output_min_(output_min), output_max_(output_max) {
    GB_EXPECTS(output_min < output_max);
    GB_EXPECTS(gains.kp >= 0.0 && gains.ki >= 0.0 && gains.kd >= 0.0);
}

double pid_controller::update(double setpoint, double measurement,
                              double dt_s) {
    GB_EXPECTS(dt_s > 0.0);
    const double error = setpoint - measurement;

    // Derivative on measurement: immune to setpoint steps.
    double derivative = 0.0;
    if (!first_update_) {
        derivative = -(measurement - previous_measurement_) / dt_s;
    }
    previous_measurement_ = measurement;
    first_update_ = false;

    const double tentative_integral = integral_ + error * dt_s;
    double output = gains_.kp * error + gains_.ki * tentative_integral +
                    gains_.kd * derivative;

    // Clamping anti-windup: only accumulate the integral when the actuator
    // is not saturated in the direction the integral pushes.
    if (output > output_max_) {
        output = output_max_;
        if (error < 0.0) {
            integral_ = tentative_integral;
        }
    } else if (output < output_min_) {
        output = output_min_;
        if (error > 0.0) {
            integral_ = tentative_integral;
        }
    } else {
        integral_ = tentative_integral;
    }
    return std::clamp(output, output_min_, output_max_);
}

void pid_controller::reset() {
    integral_ = 0.0;
    previous_measurement_ = 0.0;
    first_update_ = true;
}

} // namespace gb

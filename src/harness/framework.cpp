#include "harness/framework.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace gb {

characterization_framework::characterization_framework(const chip_model& chip,
                                                       std::uint64_t seed)
    : chip_(chip), rng_(seed) {}

const execution_profile& characterization_framework::profile_of(
    const kernel& program, megahertz frequency) {
    GB_EXPECTS(!program.empty());
    const auto key = std::make_pair(program.name,
                                    std::lround(frequency.value));
    auto it = profiles_.find(key);
    if (it == profiles_.end()) {
        const pipeline_model pipeline(frequency);
        auto profile = std::make_unique<execution_profile>(
            pipeline.execute(program, 8192));
        it = profiles_.emplace(key, std::move(profile)).first;
    }
    return *it->second;
}

std::vector<core_assignment> characterization_framework::make_assignments(
    const std::vector<program_assignment>& programs,
    const std::array<megahertz, 4>& pmd_frequency) {
    GB_EXPECTS(!programs.empty());
    std::vector<core_assignment> assignments;
    assignments.reserve(programs.size());
    for (const program_assignment& p : programs) {
        GB_EXPECTS(p.program != nullptr);
        GB_EXPECTS(p.core >= 0 && p.core < cores_per_chip);
        const megahertz f =
            pmd_frequency[static_cast<std::size_t>(p.core / cores_per_pmd)];
        assignments.push_back(
            core_assignment{p.core, &profile_of(*p.program, f), f});
    }
    return assignments;
}

campaign_result characterization_framework::run_campaign(
    const campaign_spec& spec, const kernel& program) {
    GB_EXPECTS(spec.repetitions >= 1);
    GB_EXPECTS(!spec.setups.empty());

    campaign_result result;
    result.spec = spec;
    for (const characterization_setup& setup : spec.setups) {
        GB_EXPECTS(!setup.cores.empty());
        std::vector<program_assignment> programs;
        programs.reserve(setup.cores.size());
        for (const int core : setup.cores) {
            programs.push_back(program_assignment{core, &program});
        }
        const std::array<megahertz, 4> frequencies{
            setup.frequency, setup.frequency, setup.frequency,
            setup.frequency};
        const std::vector<core_assignment> assignments =
            make_assignments(programs, frequencies);

        // Thread launch alignment is part of the workload setup: the
        // campaign scripts start instances the same way every run, so the
        // phase draw is stable per benchmark (run-to-run variability comes
        // from the threshold noise, as on the real rig).
        const std::uint64_t phase_seed = hash_label(spec.benchmark);
        for (int rep = 0; rep < spec.repetitions; ++rep) {
            const run_evaluation eval = chip_.evaluate_run(
                assignments, setup.voltage, phase_seed, rng_);

            run_record record;
            record.benchmark = spec.benchmark;
            record.voltage = setup.voltage;
            record.frequency = setup.frequency;
            record.cores = setup.cores;
            record.repetition = rep;
            record.outcome = eval.outcome;
            record.margin = eval.margin;
            record.path = eval.path;
            record.watchdog_reset = eval.outcome == run_outcome::crash ||
                                    eval.outcome == run_outcome::hang;
            if (record.watchdog_reset) {
                ++result.watchdog_resets;
                ++watchdog_resets_;
                log_debug("watchdog reset: ", spec.benchmark, " at ",
                          setup.voltage.value, " mV");
            }
            result.records.push_back(std::move(record));
        }
    }
    return result;
}

run_evaluation characterization_framework::run_mix(
    const std::vector<program_assignment>& programs, millivolts voltage,
    const std::array<megahertz, 4>& pmd_frequency) {
    const std::vector<core_assignment> assignments =
        make_assignments(programs, pmd_frequency);
    const run_evaluation eval = chip_.evaluate_run(
        assignments, voltage, next_phase_seed_++, rng_);
    if (eval.outcome == run_outcome::crash ||
        eval.outcome == run_outcome::hang) {
        ++watchdog_resets_;
    }
    return eval;
}

millivolts characterization_framework::find_vmin(
    const kernel& program, const std::vector<int>& cores, megahertz frequency,
    int repetitions, millivolts step) {
    GB_EXPECTS(repetitions >= 1);
    GB_EXPECTS(step.value > 0.0);
    GB_EXPECTS(!cores.empty());

    std::vector<program_assignment> programs;
    programs.reserve(cores.size());
    for (const int core : cores) {
        programs.push_back(program_assignment{core, &program});
    }
    const std::array<megahertz, 4> frequencies{frequency, frequency,
                                               frequency, frequency};
    const std::vector<core_assignment> assignments =
        make_assignments(programs, frequencies);

    const std::uint64_t phase_seed = hash_label(program.name);
    millivolts safe = nominal_pmd_voltage;
    for (millivolts v = nominal_pmd_voltage; v.value > 0.0; v -= step) {
        bool all_clean = true;
        for (int rep = 0; rep < repetitions && all_clean; ++rep) {
            const run_evaluation eval =
                chip_.evaluate_run(assignments, v, phase_seed, rng_);
            if (is_disruption(eval.outcome)) {
                all_clean = false;
                if (eval.outcome == run_outcome::crash ||
                    eval.outcome == run_outcome::hang) {
                    ++watchdog_resets_;
                }
            }
        }
        if (!all_clean) {
            break;
        }
        safe = v;
    }
    GB_ENSURES(safe <= nominal_pmd_voltage);
    return safe;
}

vmin_analysis characterization_framework::analyze_mix(
    const std::vector<program_assignment>& programs,
    const std::array<megahertz, 4>& pmd_frequency) {
    const std::vector<core_assignment> assignments =
        make_assignments(programs, pmd_frequency);
    return chip_.analyze(assignments, /*phase_seed=*/12345);
}

} // namespace gb

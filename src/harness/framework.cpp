#include "harness/framework.hpp"

#include <cmath>
#include <istream>

#include "harness/fault_injection.hpp"
#include "harness/journal.hpp"
#include "harness/logfile.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace gb {

namespace {

/// Campaign-level seed root: decorrelates the framework seed from the
/// benchmark identity so two benchmarks never share task seeds.
std::uint64_t campaign_seed(std::uint64_t framework_seed,
                            std::string_view label) {
    return derive_task_seed(framework_seed, hash_label(label));
}

} // namespace

characterization_framework::characterization_framework(const chip_model& chip,
                                                       std::uint64_t seed)
    : chip_(chip), seed_(seed), rng_(seed) {}

const execution_profile& characterization_framework::profile_of(
    const kernel& program, megahertz frequency) {
    GB_EXPECTS(!program.empty());
    const auto key = std::make_pair(program.name,
                                    std::lround(frequency.value));
    profile_entry* entry = nullptr;
    {
        std::shared_lock<std::shared_mutex> read(profiles_mutex_);
        auto it = profiles_.find(key);
        if (it != profiles_.end()) {
            entry = it->second.get();
        }
    }
    if (entry == nullptr) {
        std::unique_lock<std::shared_mutex> write(profiles_mutex_);
        entry = profiles_.try_emplace(key, std::make_unique<profile_entry>())
                    .first->second.get();
    }
    // First caller profiles the kernel; concurrent callers for the same key
    // block here until the profile is ready.  The pipeline execution runs
    // outside the map lock so unrelated keys proceed in parallel.
    std::call_once(entry->once, [&] {
        const pipeline_model pipeline(frequency);
        entry->profile = std::make_unique<execution_profile>(
            pipeline.execute(program, 8192));
    });
    return *entry->profile;
}

std::vector<core_assignment> characterization_framework::make_assignments(
    const std::vector<program_assignment>& programs,
    const std::array<megahertz, 4>& pmd_frequency) {
    GB_EXPECTS(!programs.empty());
    std::vector<core_assignment> assignments;
    assignments.reserve(programs.size());
    for (const program_assignment& p : programs) {
        GB_EXPECTS(p.program != nullptr);
        GB_EXPECTS(p.core >= 0 && p.core < cores_per_chip);
        const megahertz f =
            pmd_frequency[static_cast<std::size_t>(p.core / cores_per_pmd)];
        assignments.push_back(
            core_assignment{p.core, &profile_of(*p.program, f), f});
    }
    return assignments;
}

campaign_result characterization_framework::run_campaign(
    const campaign_spec& spec, const kernel& program) {
    return run_campaign_impl(spec, program, {}, nullptr);
}

campaign_result characterization_framework::run_campaign(
    const campaign_spec& spec, const kernel& program,
    const campaign_io& io) {
    return run_campaign_impl(spec, program, io, nullptr);
}

campaign_result characterization_framework::resume_campaign(
    const campaign_spec& spec, const kernel& program,
    std::istream& journal_in, const campaign_io& io) {
    const cpu_journal_replay replay = replay_cpu_journal(journal_in);
    if (replay.skipped > 0) {
        log_info(spec.benchmark, " resume: ", replay.completed.size(),
                 " records restored, ", replay.skipped,
                 " journal lines unrecoverable (their tasks re-run)");
    }
    return run_campaign_impl(spec, program, io, &replay.completed);
}

campaign_result characterization_framework::run_campaign_impl(
    const campaign_spec& spec, const kernel& program, const campaign_io& io,
    const std::map<std::size_t, run_record>* restored) {
    GB_EXPECTS(spec.repetitions >= 1);
    GB_EXPECTS(!spec.setups.empty());
    GB_EXPECTS(io.retry_budget >= 1);

    // Profiles are warmed serially while the setups are enumerated, so the
    // engine tasks below only ever read shared state.
    std::vector<std::vector<core_assignment>> setup_assignments;
    setup_assignments.reserve(spec.setups.size());
    for (const characterization_setup& setup : spec.setups) {
        GB_EXPECTS(!setup.cores.empty());
        std::vector<program_assignment> programs;
        programs.reserve(setup.cores.size());
        for (const int core : setup.cores) {
            programs.push_back(program_assignment{core, &program});
        }
        const std::array<megahertz, 4> frequencies{
            setup.frequency, setup.frequency, setup.frequency,
            setup.frequency};
        setup_assignments.push_back(make_assignments(programs, frequencies));
    }

    // Thread launch alignment is part of the workload setup: the campaign
    // scripts start instances the same way every run, so the phase draw is
    // stable per benchmark (run-to-run variability comes from the threshold
    // noise, as on the real rig).
    const std::uint64_t phase_seed = hash_label(spec.benchmark);
    const std::size_t reps = static_cast<std::size_t>(spec.repetitions);
    const std::size_t total = spec.setups.size() * reps;

    // The Vmin analysis is a pure function of (assignments, phase_seed) and
    // independent of the supply, so each setup's trace/droop pass runs once
    // here instead of once per (voltage, repetition) task.  evaluate_at
    // draws the same RNG sequence as evaluate_run, so records are identical.
    std::vector<vmin_analysis> setup_analyses;
    setup_analyses.reserve(setup_assignments.size());
    for (const std::vector<core_assignment>& assignments : setup_assignments) {
        setup_analyses.push_back(chip_.analyze(assignments, phase_seed));
    }

    campaign_result result;
    result.spec = spec;
    result.records.resize(total);

    // Journal-resume bookkeeping: prefill restored slots; the engine skips
    // fault injection for them and the task only reports the replayed
    // outcome bucket.
    std::vector<char> completed(total, 0);
    if (restored != nullptr) {
        for (const auto& [index, record] : *restored) {
            if (index < total) {
                result.records[index] = record;
                completed[index] = 1;
            }
        }
    }

    execution_options options;
    options.workers = spec.workers;
    options.base_seed = campaign_seed(seed_, spec.benchmark);
    options.campaign = spec.benchmark;
    options.faults = io.faults;
    options.retry_budget = io.retry_budget;
    options.backoff_base_s = io.backoff_base_s;
    options.trace = io.trace;
    options.metrics = io.metrics;
    options.timeline = io.timeline;
    options.status_path = io.status_path;
    if (restored != nullptr) {
        options.already_complete = [&completed](std::size_t index) {
            return completed[index] != 0;
        };
    }
    const execution_engine engine(options);
    result.stats = engine.run(total, [&](const task_context& ctx) {
        run_record& record = result.records[ctx.index];
        if (ctx.replayed) {
            return static_cast<int>(record.outcome);
        }
        const std::size_t setup_index = ctx.index / reps;
        const characterization_setup& setup = spec.setups[setup_index];
        record.benchmark = spec.benchmark;
        record.voltage = setup.voltage;
        record.frequency = setup.frequency;
        record.cores = setup.cores;
        record.repetition = static_cast<int>(ctx.index % reps);
        if (ctx.aborted) {
            // Rig retry budget exhausted: the board never reported a
            // result for this cell.  The campaign records the gap (the
            // rig's watchdog monitor did fire) and moves on.
            record.outcome = run_outcome::aborted_rig;
            record.margin = millivolts{0.0};
            record.path = failure_path::logic;
            record.watchdog_reset = true;
        } else {
            rng task_rng(ctx.seed);
            const run_evaluation eval = chip_.evaluate_at(
                setup_analyses[setup_index], setup.voltage, task_rng);
            record.outcome = eval.outcome;
            record.margin = eval.margin;
            record.path = eval.path;
            record.watchdog_reset = eval.outcome == run_outcome::crash ||
                                    eval.outcome == run_outcome::hang;
        }
        if (io.journal != nullptr) {
            io.journal->append(ctx.index, to_log_line(record), io.faults);
        }
        return static_cast<int>(record.outcome);
    });
    if (io.journal != nullptr) {
        result.stats.corrupted_log_lines = io.journal->corrupted();
    }

    // Watchdog accounting happens after the sweep, in record order, so the
    // count and the debug log sequence are scheduling-independent.
    for (const run_record& record : result.records) {
        if (record.watchdog_reset) {
            ++result.watchdog_resets;
            ++watchdog_resets_;
            log_debug("watchdog reset: ", spec.benchmark, " at ",
                      record.voltage.value, " mV");
        }
    }
    return result;
}

run_evaluation characterization_framework::run_mix(
    const std::vector<program_assignment>& programs, millivolts voltage,
    const std::array<megahertz, 4>& pmd_frequency) {
    const std::vector<core_assignment> assignments =
        make_assignments(programs, pmd_frequency);
    const run_evaluation eval = chip_.evaluate_run(
        assignments, voltage, next_phase_seed_++, rng_);
    if (eval.outcome == run_outcome::crash ||
        eval.outcome == run_outcome::hang) {
        ++watchdog_resets_;
    }
    return eval;
}

millivolts characterization_framework::find_vmin(
    const kernel& program, const std::vector<int>& cores, megahertz frequency,
    int repetitions, millivolts step, int workers) {
    GB_EXPECTS(repetitions >= 1);
    GB_EXPECTS(step.value > 0.0);
    GB_EXPECTS(!cores.empty());

    std::vector<program_assignment> programs;
    programs.reserve(cores.size());
    for (const int core : cores) {
        programs.push_back(program_assignment{core, &program});
    }
    const std::array<megahertz, 4> frequencies{frequency, frequency,
                                               frequency, frequency};
    const std::vector<core_assignment> assignments =
        make_assignments(programs, frequencies);

    // The descending voltage ladder, fully enumerated up front.
    std::vector<millivolts> ladder;
    for (millivolts v = nominal_pmd_voltage; v.value > 0.0; v -= step) {
        ladder.push_back(v);
    }

    // The search seed identifies the (kernel, frequency, cores) sweep so
    // repeated searches of the same point reproduce exactly, while every
    // distinct sweep draws independent noise.
    std::uint64_t base = campaign_seed(seed_, program.name);
    base = derive_task_seed(base, static_cast<std::uint64_t>(
                                      std::lround(frequency.value)));
    for (const int core : cores) {
        base = derive_task_seed(base, static_cast<std::uint64_t>(core) + 1);
    }

    execution_options options;
    options.workers = workers;
    options.base_seed = base;
    options.campaign = program.name + "/vmin";
    const execution_engine engine(options);

    const std::uint64_t phase_seed = hash_label(program.name);
    // One trace/droop pass serves the entire ladder: the analysis does not
    // depend on the candidate supply, only the per-run noise draw does.
    const vmin_analysis analysis = chip_.analyze(assignments, phase_seed);
    const std::size_t reps = static_cast<std::size_t>(repetitions);
    // Fixed speculation depth: the chunk size must not depend on the worker
    // count or the set of evaluated cells (and thus the result and the
    // watchdog accounting) would change with parallelism.  16 voltages keep
    // 8 workers saturated at 10 repetitions while over-descending past the
    // failure point by less than one chunk.
    constexpr std::size_t chunk_voltages = 16;

    millivolts safe = nominal_pmd_voltage;
    std::vector<run_outcome> outcomes;
    for (std::size_t chunk_start = 0; chunk_start < ladder.size();
         chunk_start += chunk_voltages) {
        const std::size_t chunk_end =
            std::min(chunk_start + chunk_voltages, ladder.size());
        const std::size_t chunk_tasks = (chunk_end - chunk_start) * reps;
        outcomes.assign(chunk_tasks, run_outcome::ok);

        engine.run(
            chunk_tasks,
            [&](const task_context& ctx) {
                const std::size_t local = ctx.index - chunk_start * reps;
                const millivolts v = ladder[ctx.index / reps];
                rng task_rng(ctx.seed);
                const run_evaluation eval =
                    chip_.evaluate_at(analysis, v, task_rng);
                outcomes[local] = eval.outcome;
                return static_cast<int>(eval.outcome);
            },
            /*first_index=*/chunk_start * reps);

        // Scan the chunk in ladder order: descend while every repetition is
        // clean; the first disruptive voltage ends the search.  Watchdog
        // resets are counted only down to that voltage -- the speculative
        // cells below it are discarded, as the serial descent would never
        // have evaluated them.
        for (std::size_t v_idx = chunk_start; v_idx < chunk_end; ++v_idx) {
            bool all_clean = true;
            for (std::size_t rep = 0; rep < reps; ++rep) {
                const run_outcome outcome =
                    outcomes[(v_idx - chunk_start) * reps + rep];
                if (outcome == run_outcome::crash ||
                    outcome == run_outcome::hang) {
                    ++watchdog_resets_;
                }
                all_clean = all_clean && !is_disruption(outcome);
            }
            if (!all_clean) {
                GB_ENSURES(safe <= nominal_pmd_voltage);
                return safe;
            }
            safe = ladder[v_idx];
        }
    }
    GB_ENSURES(safe <= nominal_pmd_voltage);
    return safe;
}

vmin_analysis characterization_framework::analyze_mix(
    const std::vector<program_assignment>& programs,
    const std::array<megahertz, 4>& pmd_frequency) {
    const std::vector<core_assignment> assignments =
        make_assignments(programs, pmd_frequency);
    return chip_.analyze(assignments, /*phase_seed=*/12345);
}

} // namespace gb

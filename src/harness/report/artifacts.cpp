#include "harness/report/artifacts.hpp"

#include <fstream>
#include <sstream>

#include "harness/logfile.hpp"
#include "harness/report/json.hpp"

namespace gb::report {

namespace {

/// Prefix a loader diagnostic so every error is one self-contained line.
std::string tagged(std::string_view what, std::string_view detail) {
    std::string out(what);
    out += ": ";
    out += detail;
    return out;
}

} // namespace

std::optional<std::string> read_file(const std::string& path,
                                     std::string& error) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        error = tagged(path, "cannot open file");
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        error = tagged(path, "read failed");
        return std::nullopt;
    }
    return std::move(buffer).str();
}

// --- trace --------------------------------------------------------------

const std::string* trace_event::arg(std::string_view key) const {
    for (const auto& [name, value] : args) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

std::optional<std::uint64_t> trace_event::arg_u64(
    std::string_view key) const {
    const std::string* text = arg(key);
    if (text == nullptr) {
        return std::nullopt;
    }
    std::uint64_t parsed = 0;
    std::size_t digits = 0;
    for (const char c : *text) {
        if (c < '0' || c > '9' || digits > 19) {
            return std::nullopt;
        }
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
        ++digits;
    }
    if (digits == 0) {
        return std::nullopt;
    }
    return parsed;
}

std::vector<const trace_event*> trace_artifact::on_track(
    std::uint32_t track) const {
    std::vector<const trace_event*> out;
    for (const trace_event& event : events) {
        if (event.track == track) {
            out.push_back(&event);
        }
    }
    return out;
}

std::optional<trace_artifact> load_trace(std::string_view text,
                                         std::string& error) {
    json_parse_result parsed = parse_json(text);
    if (!parsed.value) {
        error = tagged("trace", parsed.error);
        return std::nullopt;
    }
    const json_value& root = *parsed.value;
    if (!root.is_object()) {
        error = "trace: top level is not an object";
        return std::nullopt;
    }
    const json_value* events = root.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
        error = "trace: missing traceEvents array";
        return std::nullopt;
    }

    trace_artifact artifact;
    for (std::size_t i = 0; i < events->items.size(); ++i) {
        const json_value& entry = events->items[i];
        const std::string position =
            "trace event " + std::to_string(i) + ": ";
        if (!entry.is_object()) {
            error = position + "not an object";
            return std::nullopt;
        }
        const json_value* ph = entry.find("ph");
        const auto ph_text =
            ph != nullptr ? ph->as_string() : std::nullopt;
        if (!ph_text) {
            error = position + "missing ph";
            return std::nullopt;
        }
        const json_value* tid = entry.find("tid");
        const auto track = tid != nullptr ? tid->as_u64() : std::nullopt;
        if (!track || *track > 0xffffffffULL) {
            error = position + "missing or invalid tid";
            return std::nullopt;
        }
        const json_value* name = entry.find("name");
        const auto name_text =
            name != nullptr ? name->as_string() : std::nullopt;
        if (!name_text) {
            error = position + "missing name";
            return std::nullopt;
        }

        if (*ph_text == "M") {
            // Track-name metadata; anything else ("process_name", ...)
            // would be from a foreign producer -- reject rather than
            // guess.
            if (*name_text != "thread_name") {
                error = position + "unsupported metadata record";
                return std::nullopt;
            }
            const json_value* args = entry.find("args");
            const json_value* label =
                args != nullptr ? args->find("name") : nullptr;
            const auto label_text =
                label != nullptr ? label->as_string() : std::nullopt;
            if (!label_text) {
                error = position + "thread_name without args.name";
                return std::nullopt;
            }
            artifact.track_names[static_cast<std::uint32_t>(*track)] =
                std::string(*label_text);
            continue;
        }

        trace_event event;
        if (*ph_text == "X") {
            event.ph = trace_event::phase::complete;
        } else if (*ph_text == "i") {
            event.ph = trace_event::phase::instant;
        } else {
            error = position + "unsupported event phase '" +
                    std::string(*ph_text) + "'";
            return std::nullopt;
        }
        event.track = static_cast<std::uint32_t>(*track);
        event.name = std::string(*name_text);

        const json_value* ts = entry.find("ts");
        const auto ts_value = ts != nullptr ? ts->as_u64() : std::nullopt;
        if (!ts_value) {
            error = position + "missing or negative ts";
            return std::nullopt;
        }
        event.ts = *ts_value;
        if (event.ph == trace_event::phase::complete) {
            const json_value* dur = entry.find("dur");
            const auto dur_value =
                dur != nullptr ? dur->as_u64() : std::nullopt;
            if (!dur_value) {
                error = position + "complete span without dur";
                return std::nullopt;
            }
            event.dur = *dur_value;
        }
        if (const json_value* cat = entry.find("cat")) {
            if (const auto cat_text = cat->as_string()) {
                event.category = std::string(*cat_text);
            }
        }
        if (const json_value* args = entry.find("args")) {
            if (!args->is_object()) {
                error = position + "args is not an object";
                return std::nullopt;
            }
            for (const auto& [key, value] : args->members) {
                const auto text_value = value.as_string();
                if (!text_value) {
                    error = position + "non-string arg '" + key + "'";
                    return std::nullopt;
                }
                event.args.emplace_back(key, std::string(*text_value));
            }
        }
        artifact.events.push_back(std::move(event));
    }
    return artifact;
}

std::optional<trace_artifact> load_trace_file(const std::string& path,
                                              std::string& error) {
    const auto text = read_file(path, error);
    if (!text) {
        return std::nullopt;
    }
    auto artifact = load_trace(*text, error);
    if (!artifact) {
        error = tagged(path, error);
    }
    return artifact;
}

// --- metrics ------------------------------------------------------------

namespace {

bool load_histogram(const json_value& value, histogram_snapshot& out,
                    std::string& reason) {
    if (!value.is_object()) {
        reason = "histogram is not an object";
        return false;
    }
    const json_value* bounds = value.find("bounds");
    const json_value* counts = value.find("counts");
    const json_value* count = value.find("count");
    const json_value* sum = value.find("sum");
    if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
        !counts->is_array() || count == nullptr || sum == nullptr) {
        reason = "histogram missing bounds/counts/count/sum";
        return false;
    }
    for (const json_value& bound : bounds->items) {
        const auto parsed = bound.as_u64();
        if (!parsed) {
            reason = "non-integer histogram bound";
            return false;
        }
        out.bounds.push_back(*parsed);
    }
    for (const json_value& bucket : counts->items) {
        const auto parsed = bucket.as_u64();
        if (!parsed) {
            reason = "non-integer histogram bucket";
            return false;
        }
        out.counts.push_back(*parsed);
    }
    if (out.counts.size() != out.bounds.size() + 1) {
        reason = "histogram bucket count does not match bounds";
        return false;
    }
    const auto count_value = count->as_u64();
    const auto sum_value = sum->as_u64();
    if (!count_value || !sum_value) {
        reason = "non-integer histogram count/sum";
        return false;
    }
    out.count = *count_value;
    out.sum = *sum_value;
    return true;
}

} // namespace

std::optional<metrics_snapshot> load_metrics(std::string_view text,
                                             std::string& error) {
    json_parse_result parsed = parse_json(text);
    if (!parsed.value) {
        error = tagged("metrics", parsed.error);
        return std::nullopt;
    }
    const json_value& root = *parsed.value;
    if (!root.is_object()) {
        error = "metrics: top level is not an object";
        return std::nullopt;
    }
    const json_value* counters = root.find("counters");
    const json_value* gauges = root.find("gauges");
    const json_value* histograms = root.find("histograms");
    if (counters == nullptr || !counters->is_object() || gauges == nullptr ||
        !gauges->is_object() || histograms == nullptr ||
        !histograms->is_object()) {
        error = "metrics: missing counters/gauges/histograms sections";
        return std::nullopt;
    }

    metrics_snapshot snapshot;
    for (const auto& [name, value] : counters->members) {
        const auto parsed_value = value.as_u64();
        if (!parsed_value) {
            error = "metrics: counter '" + name +
                    "' is not a non-negative integer";
            return std::nullopt;
        }
        snapshot.counters.emplace_back(name, *parsed_value);
    }
    for (const auto& [name, value] : gauges->members) {
        const auto parsed_value = value.as_number();
        if (!parsed_value) {
            error = "metrics: gauge '" + name + "' is not a number";
            return std::nullopt;
        }
        snapshot.gauges.emplace_back(name, *parsed_value);
    }
    for (const auto& [name, value] : histograms->members) {
        histogram_snapshot histogram;
        std::string reason;
        if (!load_histogram(value, histogram, reason)) {
            error = "metrics: histogram '" + name + "': " + reason;
            return std::nullopt;
        }
        snapshot.histograms.emplace_back(name, std::move(histogram));
    }
    return snapshot;
}

std::optional<metrics_snapshot> load_metrics_file(const std::string& path,
                                                  std::string& error) {
    const auto text = read_file(path, error);
    if (!text) {
        return std::nullopt;
    }
    auto snapshot = load_metrics(*text, error);
    if (!snapshot) {
        error = tagged(path, error);
    }
    return snapshot;
}

// --- journal ------------------------------------------------------------

std::optional<journal_artifact> load_journal_file(const std::string& path,
                                                  std::string& error) {
    std::ifstream in(path);
    if (!in.is_open()) {
        error = tagged(path, "cannot open file");
        return std::nullopt;
    }
    journal_artifact artifact;
    std::string line;
    while (std::getline(in, line)) {
        if (in.eof()) {
            // No trailing newline: the journal is live and this line is
            // still being appended.  Surface a clean truncated-tail
            // indicator instead of mis-reporting the partial bytes as a
            // skipped (corrupt) record.
            artifact.truncated_tail = !line.empty();
            break;
        }
        if (line.empty()) {
            continue;
        }
        ++artifact.lines;
        std::size_t index = 0;
        std::string_view payload;
        if (!parse_journal_prefix(line, index, payload)) {
            ++artifact.skipped;
            continue;
        }
        run_record cpu_record;
        if (parse_log_line(payload, cpu_record)) {
            artifact.cpu.completed[index] = std::move(cpu_record);
            continue;
        }
        dram_run_record dram_record;
        if (parse_log_line(payload, dram_record)) {
            artifact.dram.completed[index] = std::move(dram_record);
            continue;
        }
        ++artifact.skipped;
    }
    artifact.cpu.skipped = artifact.skipped;
    artifact.dram.skipped = artifact.skipped;
    if (artifact.records() == 0) {
        error = tagged(
            path,
            artifact.truncated_tail
                ? "journal holds only a truncated tail (still being "
                  "written?)"
            : artifact.lines == 0
                ? "journal is empty"
                : "no recoverable record in " +
                      std::to_string(artifact.lines) + " lines");
        return std::nullopt;
    }
    return artifact;
}

// --- timeline -----------------------------------------------------------

const series_snapshot* timeline_artifact::find(std::string_view name) const {
    for (const series_snapshot& s : series) {
        if (s.name == name) {
            return &s;
        }
    }
    return nullptr;
}

namespace {

/// A crashed writer leaves timeline.json as a strict byte prefix.  The
/// writer breaks lines only at record boundaries, so trimming to the last
/// newline yields complete records; dropping one dangling comma and
/// closing the open scopes turns that prefix back into a document.
std::optional<std::string> close_torn_tail(std::string_view text) {
    const std::size_t cut = text.rfind('\n');
    if (cut == std::string_view::npos) {
        return std::nullopt;
    }
    std::string_view head = text.substr(0, cut);
    while (!head.empty() &&
           (head.back() == ' ' || head.back() == '\t' ||
            head.back() == '\r' || head.back() == '\n')) {
        head.remove_suffix(1);
    }
    if (!head.empty() && head.back() == ',') {
        head.remove_suffix(1);
    }
    std::string closers;
    bool in_string = false;
    bool escaped = false;
    for (const char c : head) {
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            closers += '}';
        } else if (c == '[') {
            closers += ']';
        } else if (c == '}' || c == ']') {
            if (closers.empty() || closers.back() != c) {
                return std::nullopt; // not a prefix of well-formed JSON
            }
            closers.pop_back();
        }
    }
    if (in_string) {
        return std::nullopt;
    }
    std::string out(head);
    out.append(closers.rbegin(), closers.rend());
    return out;
}

/// True when a parse diagnostic ("byte <offset>: ...") points at or past
/// the end of the input: the parser ran out of bytes, i.e. the document
/// is a strict prefix (a tear), not mid-document corruption.
bool parse_failed_at_end(const std::string& error, std::size_t size) {
    if (error.rfind("byte ", 0) != 0) {
        return false;
    }
    std::size_t offset = 0;
    std::size_t digits = 0;
    for (std::size_t i = 5; i < error.size() && error[i] != ':'; ++i) {
        if (error[i] < '0' || error[i] > '9') {
            return false;
        }
        offset = offset * 10 + static_cast<std::size_t>(error[i] - '0');
        ++digits;
    }
    return digits > 0 && offset >= size;
}

bool parse_timeline_document(const json_value& root,
                             timeline_artifact& artifact,
                             std::string& error) {
    if (!root.is_object()) {
        error = "timeline: top level is not an object";
        return false;
    }
    const json_value* series = root.find("series");
    if (series == nullptr || !series->is_object()) {
        error = "timeline: missing series section";
        return false;
    }
    for (const auto& [name, value] : series->members) {
        const std::string position = "timeline series '" + name + "': ";
        if (!value.is_object()) {
            error = position + "not an object";
            return false;
        }
        series_snapshot snapshot;
        snapshot.name = name;
        const json_value* count = value.find("count");
        const auto count_value =
            count != nullptr ? count->as_u64() : std::nullopt;
        if (!count_value) {
            error = position + "missing or invalid count";
            return false;
        }
        snapshot.count = *count_value;
        for (const auto& [key, member] :
             {std::pair<const char*, double*>{"min", &snapshot.min},
              {"max", &snapshot.max},
              {"last", &snapshot.last}}) {
            const json_value* field = value.find(key);
            const auto number =
                field != nullptr ? field->as_number() : std::nullopt;
            if (!number) {
                error = position + "missing or invalid " + key;
                return false;
            }
            *member = *number;
        }
        const json_value* samples = value.find("samples");
        if (samples == nullptr || !samples->is_array()) {
            error = position + "missing samples array";
            return false;
        }
        for (const json_value& pair : samples->items) {
            if (!pair.is_array() || pair.items.size() != 2) {
                error = position + "sample is not a [tick, value] pair";
                return false;
            }
            const auto tick = pair.items[0].as_u64();
            const auto sample = pair.items[1].as_number();
            if (!tick || !sample) {
                error = position + "non-numeric sample pair";
                return false;
            }
            snapshot.samples.push_back({*tick, *sample});
        }
        const json_value* evicted = value.find("evicted");
        if (evicted == nullptr) {
            error = position + "missing evicted histogram";
            return false;
        }
        std::string reason;
        if (!load_histogram(*evicted, snapshot.evicted, reason)) {
            error = position + reason;
            return false;
        }
        artifact.series.push_back(std::move(snapshot));
    }

    // The alerts section is optional (a torn tail can cut it off); its
    // absence parses as "no alerting configured".
    const json_value* alerts = root.find("alerts");
    if (alerts == nullptr) {
        return true;
    }
    if (!alerts->is_object()) {
        error = "timeline: alerts is not an object";
        return false;
    }
    if (const json_value* rules = alerts->find("rules")) {
        artifact.alert_rules = rules->as_u64().value_or(0);
    }
    if (const json_value* firing = alerts->find("firing")) {
        if (!firing->is_array()) {
            error = "timeline: alerts.firing is not an array";
            return false;
        }
        for (const json_value& label : firing->items) {
            const auto text = label.as_string();
            if (!text) {
                error = "timeline: non-string firing label";
                return false;
            }
            artifact.firing.emplace_back(*text);
        }
    }
    if (const json_value* events = alerts->find("events")) {
        if (!events->is_array()) {
            error = "timeline: alerts.events is not an array";
            return false;
        }
        for (std::size_t i = 0; i < events->items.size(); ++i) {
            const json_value& entry = events->items[i];
            const std::string position =
                "timeline alert event " + std::to_string(i) + ": ";
            if (!entry.is_object()) {
                error = position + "not an object";
                return false;
            }
            alert_event event;
            const json_value* tick = entry.find("tick");
            const auto tick_value =
                tick != nullptr ? tick->as_u64() : std::nullopt;
            const json_value* rule = entry.find("rule");
            const auto rule_text =
                rule != nullptr ? rule->as_string() : std::nullopt;
            const json_value* series_name = entry.find("series");
            const auto series_text = series_name != nullptr
                                         ? series_name->as_string()
                                         : std::nullopt;
            const json_value* state = entry.find("state");
            const auto state_text =
                state != nullptr ? state->as_string() : std::nullopt;
            const json_value* measure = entry.find("value");
            const auto measure_value =
                measure != nullptr ? measure->as_number() : std::nullopt;
            if (!tick_value || !rule_text || !series_text || !state_text ||
                !measure_value) {
                error = position + "missing tick/rule/series/state/value";
                return false;
            }
            if (*state_text != "firing" && *state_text != "resolved") {
                error = position + "state is neither firing nor resolved";
                return false;
            }
            event.tick = *tick_value;
            event.rule = std::string(*rule_text);
            event.series = std::string(*series_text);
            event.firing = *state_text == "firing";
            event.value = *measure_value;
            artifact.events.push_back(std::move(event));
        }
    }
    return true;
}

} // namespace

std::optional<timeline_artifact> load_timeline(std::string_view text,
                                               std::string& error) {
    json_parse_result parsed = parse_json(text);
    bool torn = false;
    if (!parsed.value) {
        // Distinguish a torn tail (strict prefix of a well-formed
        // document) from corruption: close the complete-line prefix and
        // retry.  Only an end-of-input tear gets this second chance.
        const std::string original_error = parsed.error;
        const auto repaired = close_torn_tail(text);
        if (repaired) {
            parsed = parse_json(*repaired);
            torn = true;
        }
        if (!parsed.value) {
            error = parse_failed_at_end(original_error, text.size())
                        ? "timeline holds only a truncated tail (still "
                          "being written?)"
                        : tagged("timeline", original_error);
            return std::nullopt;
        }
    }
    timeline_artifact artifact;
    artifact.truncated_tail = torn;
    if (!parse_timeline_document(*parsed.value, artifact, error)) {
        if (torn) {
            error = "timeline holds only a truncated tail (still being "
                    "written?)";
        }
        return std::nullopt;
    }
    if (torn && artifact.series.empty()) {
        error =
            "timeline holds only a truncated tail (still being written?)";
        return std::nullopt;
    }
    return artifact;
}

std::optional<timeline_artifact> load_timeline_file(const std::string& path,
                                                    std::string& error) {
    const auto text = read_file(path, error);
    if (!text) {
        return std::nullopt;
    }
    auto artifact = load_timeline(*text, error);
    if (!artifact) {
        error = tagged(path, error);
    }
    return artifact;
}

// --- status -------------------------------------------------------------

namespace {

bool require_u64(const json_value& root, std::string_view key,
                 std::uint64_t& out, std::string& error) {
    const json_value* value = root.find(key);
    const auto parsed = value != nullptr ? value->as_u64() : std::nullopt;
    if (!parsed) {
        error = "status: missing or invalid '" + std::string(key) + "'";
        return false;
    }
    out = *parsed;
    return true;
}

} // namespace

std::optional<status_artifact> load_status(std::string_view text,
                                           std::string& error) {
    json_parse_result parsed = parse_json(text);
    if (!parsed.value) {
        error = tagged("status", parsed.error);
        return std::nullopt;
    }
    const json_value& root = *parsed.value;
    if (!root.is_object()) {
        error = "status: top level is not an object";
        return std::nullopt;
    }
    status_artifact status;
    if (const json_value* campaign = root.find("campaign")) {
        if (const auto name = campaign->as_string()) {
            status.campaign = std::string(*name);
        }
    }
    const json_value* running = root.find("running");
    if (running == nullptr ||
        running->type != json_value::kind::boolean) {
        error = "status: missing or invalid 'running'";
        return std::nullopt;
    }
    status.running = running->boolean;
    if (!require_u64(root, "tasks_total", status.tasks_total, error) ||
        !require_u64(root, "tasks_done", status.tasks_done, error) ||
        !require_u64(root, "retries", status.retries, error) ||
        !require_u64(root, "injected_faults", status.injected_faults,
                     error) ||
        !require_u64(root, "aborted_rig", status.aborted_rig, error) ||
        !require_u64(root, "replayed", status.replayed, error) ||
        !require_u64(root, "rig_downtime_ms", status.downtime_ms, error)) {
        return std::nullopt;
    }
    if (const json_value* fleet = root.find("fleet")) {
        // Fleet snapshots extend the heartbeat schema; the degraded
        // quarantine is the part consumers must see to not trust stale
        // characterization (optional: plain heartbeats lack it).
        if (fleet->is_object()) {
            if (const json_value* degraded = fleet->find("degraded")) {
                if (!degraded->is_object()) {
                    error = "status: fleet.degraded is not an object";
                    return std::nullopt;
                }
                if (const json_value* cohorts = degraded->find("cohorts")) {
                    status.degraded_cohorts = cohorts->as_u64().value_or(0);
                }
                if (const json_value* nodes = degraded->find("nodes")) {
                    status.degraded_nodes = nodes->as_u64().value_or(0);
                }
            }
            // The observatory rollup is newer than the degraded section:
            // snapshots that predate it (or ran with the timeline off)
            // simply lack the key, and `timeline_present` stays false.
            if (const json_value* timeline = fleet->find("timeline")) {
                if (!timeline->is_object()) {
                    error = "status: fleet.timeline is not an object";
                    return std::nullopt;
                }
                status.timeline_present = true;
                if (const json_value* series = timeline->find("series")) {
                    status.timeline_series = series->as_u64().value_or(0);
                }
                if (const json_value* samples =
                        timeline->find("samples")) {
                    status.timeline_samples = samples->as_u64().value_or(0);
                }
                if (const json_value* rules = timeline->find("rules")) {
                    status.timeline_rules = rules->as_u64().value_or(0);
                }
                if (const json_value* events = timeline->find("events")) {
                    status.timeline_events = events->as_u64().value_or(0);
                }
                if (const json_value* firing = timeline->find("firing")) {
                    if (!firing->is_array()) {
                        error = "status: fleet.timeline.firing is not an "
                                "array";
                        return std::nullopt;
                    }
                    for (const json_value& label : firing->items) {
                        const auto text = label.as_string();
                        if (!text) {
                            error = "status: non-string firing label";
                            return std::nullopt;
                        }
                        status.timeline_firing.emplace_back(*text);
                    }
                }
            }
        }
    }
    if (const json_value* live = root.find("live")) {
        if (!live->is_object()) {
            error = "status: 'live' is not an object";
            return std::nullopt;
        }
        if (const json_value* workers = live->find("workers")) {
            if (const auto count = workers->as_i64()) {
                status.workers = static_cast<int>(*count);
            }
        }
        if (const json_value* tasks = live->find("worker_task")) {
            if (!tasks->is_array()) {
                error = "status: live.worker_task is not an array";
                return std::nullopt;
            }
            for (const json_value& task : tasks->items) {
                const auto index = task.as_i64();
                if (!index) {
                    error = "status: non-integer live.worker_task entry";
                    return std::nullopt;
                }
                status.worker_task.push_back(*index);
            }
        }
        if (const json_value* wall = live->find("wall_elapsed_s")) {
            if (const auto seconds = wall->as_number()) {
                status.wall_elapsed_s = *seconds;
            }
        }
    }
    return status;
}

std::optional<status_artifact> load_status_file(const std::string& path,
                                                std::string& error) {
    const auto text = read_file(path, error);
    if (!text) {
        return std::nullopt;
    }
    auto status = load_status(*text, error);
    if (!status) {
        error = tagged(path, error);
    }
    return status;
}

} // namespace gb::report

// Typed in-memory models of the three observability artifact formats the
// emit side produces -- Chrome trace_event JSON (trace/trace.cpp), flat
// metrics JSON (trace/metrics.cpp) and the task journal (journal.cpp) --
// plus the status-heartbeat snapshot (status.cpp).
//
// Every loader is total: it either returns a validated model or a one-line
// diagnostic; corrupted, truncated or wrong-shape input (the rig-fault
// injector mangles logs by design) can never crash the consumer.  Loaders
// return std::nullopt and fill `error` -- the gbreport CLI turns that into
// a non-zero exit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/journal.hpp"
#include "harness/timeseries/alerts.hpp"
#include "harness/trace/metrics.hpp"

namespace gb::report {

// --- Chrome trace_event -------------------------------------------------

/// One event recovered from a trace file.  `ts`/`dur` are the exporter's
/// deterministic virtual timestamps (per-track layout, see trace.cpp);
/// they are comparable within a track, not across tracks.
struct trace_event {
    enum class phase : std::uint8_t { complete, instant, metadata };
    phase ph = phase::complete;
    std::uint32_t track = 0;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::string name;
    std::string category;
    std::vector<std::pair<std::string, std::string>> args;

    /// Arg lookup; null when absent.
    [[nodiscard]] const std::string* arg(std::string_view key) const;
    [[nodiscard]] std::optional<std::uint64_t> arg_u64(
        std::string_view key) const;
};

struct trace_artifact {
    /// Non-metadata events in file order (the exporter emits layout
    /// order, so this is also deterministic submission order per track).
    std::vector<trace_event> events;
    /// Track id -> thread_name metadata.
    std::map<std::uint32_t, std::string> track_names;

    [[nodiscard]] std::vector<const trace_event*> on_track(
        std::uint32_t track) const;
};

[[nodiscard]] std::optional<trace_artifact> load_trace(std::string_view text,
                                                       std::string& error);
[[nodiscard]] std::optional<trace_artifact> load_trace_file(
    const std::string& path, std::string& error);

// --- flat metrics JSON --------------------------------------------------

/// Metrics artifacts parse straight back into the emit side's merged-view
/// type, so analyses and tests compare snapshots, not strings.
[[nodiscard]] std::optional<metrics_snapshot> load_metrics(
    std::string_view text, std::string& error);
[[nodiscard]] std::optional<metrics_snapshot> load_metrics_file(
    const std::string& path, std::string& error);

// --- task journal -------------------------------------------------------

/// Replay of one journal file through the tolerant wire-format parsers.
/// CPU (`run=`) and DRAM (`dram=`) records can in principle share a file;
/// the model keeps both maps and the line accounting.
struct journal_artifact {
    cpu_journal_replay cpu;
    dram_journal_replay dram;
    std::size_t lines = 0;   ///< non-empty lines seen
    std::size_t skipped = 0; ///< lines that were not recoverable records
    /// The file ended mid-line (no trailing newline): it is being tailed
    /// while the writer appends.  The partial tail is not a parse error
    /// and is excluded from `lines`/`skipped`/records -- re-read later for
    /// the completed record.
    bool truncated_tail = false;

    [[nodiscard]] std::size_t records() const {
        return cpu.completed.size() + dram.completed.size();
    }
};

/// Fails (with a diagnostic) when the file is unreadable or contains no
/// recoverable record at all -- a journal that is *pure* corruption is an
/// error, partially corrupt ones just report their skipped count.
[[nodiscard]] std::optional<journal_artifact> load_journal_file(
    const std::string& path, std::string& error);

// --- timeline (fleet observatory) ---------------------------------------

/// Parsed `timeline.json` (timeseries/timeseries.cpp writes it).  Series
/// parse straight back into the emit side's snapshot type, so `gbreport
/// alerts --rules` can re-run the stateless alert evaluator over them.
struct timeline_artifact {
    /// Name-sorted, like the writer emits them.
    std::vector<series_snapshot> series;
    std::uint64_t alert_rules = 0;    ///< rules loaded by the producer
    std::vector<std::string> firing;  ///< sorted "rule:series" labels
    std::vector<alert_event> events;  ///< transition history, in order
    /// The document ended mid-write (a crashed writer leaves a strict
    /// byte prefix): the loader salvaged the complete-line prefix and
    /// dropped the partial tail.  Mirrors journal_artifact's
    /// `truncated_tail` -- not a parse error, re-read later for the
    /// full document.
    bool truncated_tail = false;

    /// Series lookup by exact name; null when absent.
    [[nodiscard]] const series_snapshot* find(std::string_view name) const;

    [[nodiscard]] std::size_t samples() const {
        std::size_t total = 0;
        for (const series_snapshot& s : series) {
            total += s.samples.size();
        }
        return total;
    }
};

/// Fails (with a diagnostic) when the text is malformed beyond a torn
/// tail, or when a torn tail left no complete series at all.
[[nodiscard]] std::optional<timeline_artifact> load_timeline(
    std::string_view text, std::string& error);
[[nodiscard]] std::optional<timeline_artifact> load_timeline_file(
    const std::string& path, std::string& error);

// --- status heartbeat ---------------------------------------------------

/// Parsed `--status` snapshot (status.hpp writes these atomically).
struct status_artifact {
    std::string campaign;
    bool running = false;
    std::uint64_t tasks_total = 0;
    std::uint64_t tasks_done = 0;
    std::uint64_t retries = 0;
    std::uint64_t injected_faults = 0;
    std::uint64_t aborted_rig = 0;
    std::uint64_t replayed = 0;
    std::uint64_t downtime_ms = 0;
    /// Fleet snapshots only (service.hpp "fleet.degraded" section):
    /// cohorts/nodes currently quarantined in degraded mode.  Zero for
    /// plain campaign heartbeats.
    std::uint64_t degraded_cohorts = 0;
    std::uint64_t degraded_nodes = 0;
    /// Fleet observatory rollup ("fleet.timeline" section).  Optional
    /// twice over: plain heartbeats have no fleet object, and fleet
    /// snapshots written before the observatory existed (or with it off)
    /// lack the section -- `timeline_present` stays false and renderers
    /// show a stable placeholder instead of omitting the line.
    bool timeline_present = false;
    std::uint64_t timeline_series = 0;
    std::uint64_t timeline_samples = 0;
    std::uint64_t timeline_rules = 0;
    std::uint64_t timeline_events = 0;
    std::vector<std::string> timeline_firing;
    /// Live-only (scheduling-dependent) fields; empty/zero in the final
    /// snapshot, which is a pure function of campaign content.
    int workers = 0;
    std::vector<std::int64_t> worker_task;
    double wall_elapsed_s = 0.0;
};

[[nodiscard]] std::optional<status_artifact> load_status(
    std::string_view text, std::string& error);
[[nodiscard]] std::optional<status_artifact> load_status_file(
    const std::string& path, std::string& error);

/// Slurp a whole file; nullopt (with diagnostic) when unreadable.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path,
                                                   std::string& error);

} // namespace gb::report

#include "harness/report/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>

namespace gb::report {

const json_value* json_value::find(std::string_view key) const {
    if (type != kind::object) {
        return nullptr;
    }
    for (const auto& [name, value] : members) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

std::optional<std::uint64_t> json_value::as_u64() const {
    if (type != kind::number) {
        return std::nullopt;
    }
    if (integral) {
        if (negative && integer != 0) {
            return std::nullopt;
        }
        return integer;
    }
    if (!std::isfinite(number) || number < 0.0 ||
        number != std::floor(number) || number > 1.8446744073709552e19) {
        return std::nullopt;
    }
    return static_cast<std::uint64_t>(number);
}

std::optional<std::int64_t> json_value::as_i64() const {
    if (type != kind::number) {
        return std::nullopt;
    }
    if (integral) {
        constexpr std::uint64_t max_i64 = 9223372036854775807ULL;
        if (negative) {
            if (integer > max_i64 + 1) {
                return std::nullopt;
            }
            return integer == max_i64 + 1
                       ? std::numeric_limits<std::int64_t>::min()
                       : -static_cast<std::int64_t>(integer);
        }
        if (integer > max_i64) {
            return std::nullopt;
        }
        return static_cast<std::int64_t>(integer);
    }
    if (!std::isfinite(number) || number != std::floor(number) ||
        number < -9.2233720368547758e18 || number > 9.2233720368547758e18) {
        return std::nullopt;
    }
    return static_cast<std::int64_t>(number);
}

std::optional<double> json_value::as_number() const {
    if (type != kind::number) {
        return std::nullopt;
    }
    return number;
}

std::optional<std::string_view> json_value::as_string() const {
    if (type != kind::string) {
        return std::nullopt;
    }
    return std::string_view(text);
}

namespace {

/// Anything deeper than this is treated as corrupt, not recursed into --
/// the artifacts we read nest three or four levels, and a pathological
/// input must not be able to overflow the stack.
constexpr int max_depth = 64;

class parser {
public:
    explicit parser(std::string_view input) : input_(input) {}

    json_parse_result run() {
        json_parse_result result;
        json_value value;
        if (!parse_value(value, 0)) {
            result.error = error_;
            return result;
        }
        skip_whitespace();
        if (position_ != input_.size()) {
            fail("trailing bytes after the document");
            result.error = error_;
            return result;
        }
        result.value = std::move(value);
        return result;
    }

private:
    bool fail(std::string_view reason) {
        if (error_.empty()) {
            error_ = "byte " + std::to_string(position_) + ": " +
                     std::string(reason);
        }
        return false;
    }

    void skip_whitespace() {
        while (position_ < input_.size()) {
            const char c = input_[position_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                break;
            }
            ++position_;
        }
    }

    [[nodiscard]] bool at_end() const { return position_ >= input_.size(); }

    bool expect(char wanted) {
        if (at_end() || input_[position_] != wanted) {
            return fail(std::string("expected '") + wanted + "'");
        }
        ++position_;
        return true;
    }

    bool consume_literal(std::string_view literal) {
        if (input_.substr(position_, literal.size()) != literal) {
            return fail("unrecognized literal");
        }
        position_ += literal.size();
        return true;
    }

    bool parse_value(json_value& out, int depth) {
        if (depth > max_depth) {
            return fail("nesting deeper than the supported maximum");
        }
        skip_whitespace();
        if (at_end()) {
            return fail("unexpected end of input");
        }
        const char c = input_[position_];
        switch (c) {
        case '{': return parse_object(out, depth);
        case '[': return parse_array(out, depth);
        case '"':
            out.type = json_value::kind::string;
            return parse_string(out.text);
        case 't':
            out.type = json_value::kind::boolean;
            out.boolean = true;
            return consume_literal("true");
        case 'f':
            out.type = json_value::kind::boolean;
            out.boolean = false;
            return consume_literal("false");
        case 'n':
            out.type = json_value::kind::null;
            return consume_literal("null");
        default: return parse_number(out);
        }
    }

    bool parse_object(json_value& out, int depth) {
        out.type = json_value::kind::object;
        if (!expect('{')) {
            return false;
        }
        skip_whitespace();
        if (!at_end() && input_[position_] == '}') {
            ++position_;
            return true;
        }
        while (true) {
            skip_whitespace();
            std::string key;
            if (!parse_string(key)) {
                return false;
            }
            skip_whitespace();
            if (!expect(':')) {
                return false;
            }
            json_value value;
            if (!parse_value(value, depth + 1)) {
                return false;
            }
            out.members.emplace_back(std::move(key), std::move(value));
            skip_whitespace();
            if (at_end()) {
                return fail("unterminated object");
            }
            if (input_[position_] == ',') {
                ++position_;
                continue;
            }
            return expect('}');
        }
    }

    bool parse_array(json_value& out, int depth) {
        out.type = json_value::kind::array;
        if (!expect('[')) {
            return false;
        }
        skip_whitespace();
        if (!at_end() && input_[position_] == ']') {
            ++position_;
            return true;
        }
        while (true) {
            json_value element;
            if (!parse_value(element, depth + 1)) {
                return false;
            }
            out.items.push_back(std::move(element));
            skip_whitespace();
            if (at_end()) {
                return fail("unterminated array");
            }
            if (input_[position_] == ',') {
                ++position_;
                continue;
            }
            return expect(']');
        }
    }

    bool parse_string(std::string& out) {
        if (at_end() || input_[position_] != '"') {
            return fail("expected a string");
        }
        ++position_;
        out.clear();
        while (true) {
            if (at_end()) {
                return fail("unterminated string");
            }
            const char c = input_[position_++];
            if (c == '"') {
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                --position_;
                return fail("raw control byte inside a string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (at_end()) {
                return fail("dangling escape at end of input");
            }
            const char escape = input_[position_++];
            switch (escape) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (!append_unicode_escape(out)) {
                    return false;
                }
                break;
            }
            default:
                position_ -= 1;
                return fail("unknown string escape");
            }
        }
    }

    bool append_unicode_escape(std::string& out) {
        std::uint32_t code = 0;
        if (!parse_hex4(code)) {
            return false;
        }
        // Surrogate pairs: a high surrogate must be followed by an escaped
        // low surrogate; anything else is corrupt input.
        if (code >= 0xd800 && code <= 0xdbff) {
            if (input_.substr(position_, 2) != "\\u") {
                return fail("high surrogate without a following pair");
            }
            position_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) {
                return false;
            }
            if (low < 0xdc00 || low > 0xdfff) {
                return fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
        } else if (code >= 0xdc00 && code <= 0xdfff) {
            return fail("unpaired low surrogate");
        }
        // UTF-8 encode.
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
        return true;
    }

    bool parse_hex4(std::uint32_t& out) {
        if (position_ + 4 > input_.size()) {
            return fail("truncated \\u escape");
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = input_[position_ + static_cast<std::size_t>(i)];
            std::uint32_t digit = 0;
            if (c >= '0' && c <= '9') {
                digit = static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                digit = static_cast<std::uint32_t>(c - 'a') + 10;
            } else if (c >= 'A' && c <= 'F') {
                digit = static_cast<std::uint32_t>(c - 'A') + 10;
            } else {
                return fail("non-hex digit in \\u escape");
            }
            out = (out << 4) | digit;
        }
        position_ += 4;
        return true;
    }

    bool parse_number(json_value& out) {
        const std::size_t start = position_;
        if (!at_end() && input_[position_] == '-') {
            ++position_;
        }
        const auto digits = [&] {
            std::size_t n = 0;
            while (!at_end() &&
                   std::isdigit(static_cast<unsigned char>(
                       input_[position_]))) {
                ++position_;
                ++n;
            }
            return n;
        };
        if (digits() == 0) {
            position_ = start;
            return fail("expected a value");
        }
        if (!at_end() && input_[position_] == '.') {
            ++position_;
            if (digits() == 0) {
                return fail("digits required after decimal point");
            }
        }
        if (!at_end() &&
            (input_[position_] == 'e' || input_[position_] == 'E')) {
            ++position_;
            if (!at_end() &&
                (input_[position_] == '+' || input_[position_] == '-')) {
                ++position_;
            }
            if (digits() == 0) {
                return fail("digits required in exponent");
            }
        }
        const std::string_view token =
            input_.substr(start, position_ - start);
        double parsed = 0.0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(),
                            parsed);
        if (ec != std::errc{} || ptr != token.data() + token.size() ||
            !std::isfinite(parsed)) {
            position_ = start;
            return fail("number out of range");
        }
        out.type = json_value::kind::number;
        out.number = parsed;
        // Plain-integer tokens additionally keep their exact 64-bit value:
        // the double alone rounds above 2^53 and counters need every bit.
        if (token.find('.') == std::string_view::npos &&
            token.find('e') == std::string_view::npos &&
            token.find('E') == std::string_view::npos) {
            const bool minus = token.front() == '-';
            const std::string_view magnitude =
                minus ? token.substr(1) : token;
            std::uint64_t exact = 0;
            const auto [iptr, iec] = std::from_chars(
                magnitude.data(), magnitude.data() + magnitude.size(),
                exact);
            if (iec == std::errc{} &&
                iptr == magnitude.data() + magnitude.size()) {
                out.integral = true;
                out.negative = minus;
                out.integer = exact;
            }
        }
        return true;
    }

    std::string_view input_;
    std::size_t position_ = 0;
    std::string error_;
};

} // namespace

json_parse_result parse_json(std::string_view input) {
    return parser(input).run();
}

} // namespace gb::report

// Post-run analyses over the observability artifacts: the consume side of
// the trace/metrics/journal stack.  Everything here is a pure function of
// the artifact bytes -- and since the emit side guarantees those bytes are
// identical at any GB_JOBS, every rendered report is too (the
// trace_determinism ctest pins this end to end through the gbreport CLI).
//
// Analyses:
//   * build_trace_model   -- reconstruct the campaign -> task -> fault
//                            hierarchy from a parsed Chrome trace using the
//                            exporter's deterministic layout order;
//   * render_summary      -- per-core Vmin / weak-cell rollup replayed from
//                            the task journal (the paper's parsing phase,
//                            automated);
//   * render_critical_path-- where the virtual ticks went: dominant
//                            campaign, heaviest tasks, fault downtime;
//   * simulate_utilization-- deterministic what-if list scheduling of the
//                            recorded task durations on K workers;
//   * render_timeline     -- fault / supervisor event timeline merged with
//                            supervisor metrics;
//   * diff_metrics        -- baseline-vs-candidate comparison with
//                            per-metric relative tolerances (the CI perf
//                            gate's engine).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "harness/report/artifacts.hpp"
#include "harness/schedule.hpp"

namespace gb::report {

// --- trace model --------------------------------------------------------

/// One engine task slot recovered from the rig track.
struct task_node {
    std::uint64_t index = 0;
    std::uint64_t ticks = 0; ///< virtual duration (quantum + downtime)
    int bucket = -1;
    std::uint64_t faulted_attempts = 0;
    bool aborted = false;
    bool replayed = false;
    /// Instant events laid inside this task's slot (injected rig faults).
    std::vector<const trace_event*> instants;
};

/// One engine run: a campaign-control span plus the task slots it owns.
struct campaign_node {
    std::string name;
    std::uint64_t declared_tasks = 0;
    std::uint64_t first_index = 0;
    std::uint64_t declared_faults = 0;
    std::uint64_t span_ticks = 0;  ///< exporter duration of the span
    std::uint64_t task_ticks = 0;  ///< sum of task durations
    std::uint64_t quantum_ticks = 0; ///< inferred per-task base cost
    std::vector<task_node> tasks;

    /// Ticks charged to simulated rig downtime (duration above the
    /// inferred quantum, summed over tasks).
    [[nodiscard]] std::uint64_t downtime_ticks() const;
};

struct trace_model {
    /// The parsed artifact, owned by the model: every trace_event pointer
    /// below points into `source.events`, so the model is self-contained
    /// and safely movable (moving a vector never relocates its elements).
    trace_artifact source;
    std::vector<campaign_node> campaigns;
    /// Supervisor-track events in deterministic layout order.
    std::vector<const trace_event*> supervisor_events;

    [[nodiscard]] std::uint64_t total_task_ticks() const;
};

/// Reconstruct the hierarchy: campaign spans on the campaign track own the
/// next `tasks` task spans on the rig track, in layout order.  Takes the
/// artifact by value -- the returned model owns it.  Fails with a one-line
/// diagnostic when the trace is internally inconsistent (e.g. a truncated
/// file that still parsed as JSON).
[[nodiscard]] std::optional<trace_model> build_trace_model(
    trace_artifact artifact, std::string& error);

// --- analyses -----------------------------------------------------------

/// Campaign summary reconstructed from the journal: per-(benchmark, cores)
/// safe-Vmin rollup for CPU records, per-temperature weak-cell/safe-period
/// rollup for DRAM records, plus line accounting.
void render_summary(std::ostream& out, const journal_artifact& journal);

/// Critical-path extraction: dominant campaign, top-N heaviest tasks with
/// their injected faults, downtime attribution.
void render_critical_path(std::ostream& out, const trace_model& model,
                          std::size_t top = 5);

/// Per-worker load of the simulated schedule (the shared scheduler's
/// accounting type, see harness/schedule.hpp).
using gb::worker_load;

/// Deterministic list-scheduling simulation of the recorded task durations
/// on `workers` workers -- the virtual-time answer to "where would an
/// N-worker campaign lose time".  The policy is the shared
/// `gb::list_scheduler` (harness/schedule.hpp), the same scheduler the
/// fleet service plans shards with, so simulation and live service agree
/// assignment-for-assignment.
struct utilization_report {
    int workers = 1;
    std::uint64_t serial_ticks = 0; ///< sum of all task durations
    std::uint64_t makespan = 0;     ///< finish time of the simulated pool
    std::vector<worker_load> loads;

    [[nodiscard]] double efficiency() const;  ///< serial / (workers * makespan)
    [[nodiscard]] double speedup() const;     ///< serial / makespan
    [[nodiscard]] double imbalance() const;   ///< max busy / mean busy
};

[[nodiscard]] utilization_report simulate_utilization(
    const trace_model& model, int workers);
void render_utilization(std::ostream& out, const utilization_report& report);

/// Fault / supervisor timeline: campaign boundaries, injected-fault
/// instants and supervisor events in deterministic order, with an optional
/// supervisor/health metrics footer.
void render_timeline(std::ostream& out, const trace_model& model,
                     const metrics_snapshot* metrics = nullptr);

// --- metrics diff -------------------------------------------------------

struct diff_options {
    /// Relative tolerance applied to every metric without an override.
    /// 0 means exact match.
    double default_tolerance = 0.0;
    /// (pattern, tolerance) overrides matched against the bare metric name
    /// (histograms as "<name>.count"/"<name>.sum").  A pattern ending in
    /// '*' prefix-matches; exact patterns win over prefixes, longer
    /// prefixes over shorter.
    std::vector<std::pair<std::string, double>> overrides;
};

enum class diff_status : std::uint8_t {
    ok,         ///< within tolerance
    added,      ///< only in the candidate (not a failure)
    regression, ///< relative change above tolerance
    missing,    ///< in the baseline, absent from the candidate (failure)
};

struct diff_entry {
    std::string name; ///< bare metric name
    std::string kind; ///< counter / gauge / histogram
    double baseline = 0.0;
    double candidate = 0.0;
    /// Exact renderings (integer metrics -- counters, histogram
    /// count/sum -- print and compare at full 64-bit precision; a double
    /// would silently merge values differing only in the low bits).
    std::string baseline_text;
    std::string candidate_text;
    /// |candidate - baseline| / |baseline|; infinity when the baseline is
    /// zero and the candidate is not (a zero baseline admits only an
    /// exactly-zero candidate).
    double relative = 0.0;
    double tolerance = 0.0;
    diff_status status = diff_status::ok;
};

struct diff_report {
    std::vector<diff_entry> entries; ///< name-sorted
    std::size_t regressions = 0;
    std::size_t missing = 0;
    std::size_t added = 0;

    [[nodiscard]] bool failed() const { return regressions + missing > 0; }
};

[[nodiscard]] diff_report diff_metrics(const metrics_snapshot& baseline,
                                       const metrics_snapshot& candidate,
                                       const diff_options& options);
void render_diff(std::ostream& out, const diff_report& report);

/// Tolerance resolution, exposed for tests: exact > longest prefix >
/// default.
[[nodiscard]] double tolerance_for(const diff_options& options,
                                   std::string_view name);

// --- sdc audit ----------------------------------------------------------

/// Rollup of the integrity subsystem's `integrity.*` gauges: how many
/// silent corruptions were injected, how each was caught (quorum outvote,
/// audit re-probe, even-quorum stalemate), how many were corrected in
/// place, and -- the number the CI gate cares about -- how many escaped
/// into the served snapshot.
struct audit_report {
    /// False when the metrics artifact carries no `integrity.*` gauges at
    /// all (the defenses were off; there is nothing to audit).
    bool present = false;
    std::uint64_t injected = 0;
    std::uint64_t detected = 0;
    std::uint64_t outvoted = 0;
    std::uint64_t audit_caught = 0; ///< integrity.audit_mismatches
    std::uint64_t stalemates = 0;
    std::uint64_t corrected = 0;
    std::uint64_t escaped = 0;
    std::uint64_t audits = 0;
    std::uint64_t dissents = 0;
    std::uint64_t blacklisted_rigs = 0;
    std::uint64_t repaired_entries = 0;
    std::uint64_t replica_executions = 0;

    [[nodiscard]] bool clean() const { return escaped == 0; }
};

[[nodiscard]] audit_report build_audit_report(
    const metrics_snapshot& metrics);
void render_audit(std::ostream& out, const audit_report& report);

} // namespace gb::report

// Minimal hardened JSON reader for the observability artifacts.
//
// The emit side (trace/trace.cpp, trace/metrics.cpp) writes three JSON
// shapes -- Chrome trace_event, flat metrics, status snapshots -- and the
// fault injector deliberately corrupts logs, so the consume side has to
// assume every input byte is hostile.  This parser is a strict recursive
// descent over the full JSON grammar with a hard nesting cap; any
// malformed input yields a one-line diagnostic carrying the byte offset,
// never an exception or a crash.  It is a *reader*: there is no emitter
// here (producers format their own bytes deterministically).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gb::report {

/// One parsed JSON value.  A tagged struct rather than a variant keeps the
/// accessors boring and the error paths explicit.
class json_value {
public:
    enum class kind : std::uint8_t {
        null,
        boolean,
        number,
        string,
        array,
        object
    };

    kind type = kind::null;
    bool boolean = false;
    double number = 0.0;
    /// Set when the token was a plain integer that fits 64 bits: `number`
    /// alone rounds above 2^53, and counters (e.g. content hashes) need
    /// every bit.  `integer` holds the magnitude; `negative` its sign.
    bool integral = false;
    bool negative = false;
    std::uint64_t integer = 0;
    std::string text;
    std::vector<json_value> items; ///< array elements
    std::vector<std::pair<std::string, json_value>> members; ///< object

    /// Object member lookup (first match); null when absent or not an
    /// object.
    [[nodiscard]] const json_value* find(std::string_view key) const;

    // Typed accessors: nullopt when the value is not of the asked-for
    // shape (including numbers outside the integer range or non-integral).
    [[nodiscard]] std::optional<std::uint64_t> as_u64() const;
    [[nodiscard]] std::optional<std::int64_t> as_i64() const;
    [[nodiscard]] std::optional<double> as_number() const;
    [[nodiscard]] std::optional<std::string_view> as_string() const;

    [[nodiscard]] bool is_object() const { return type == kind::object; }
    [[nodiscard]] bool is_array() const { return type == kind::array; }
};

/// Parse outcome: either a value or a one-line diagnostic of the form
/// "byte <offset>: <reason>".  Exactly one of the two is meaningful.
struct json_parse_result {
    std::optional<json_value> value;
    std::string error;
};

/// Parse a complete JSON document.  Trailing non-whitespace, unterminated
/// strings, bad escapes, numbers that do not round-trip, nesting deeper
/// than an internal cap -- everything lands in `error`.
[[nodiscard]] json_parse_result parse_json(std::string_view input);

} // namespace gb::report

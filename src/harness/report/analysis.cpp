#include "harness/report/analysis.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <map>
#include <ostream>
#include <set>

#include "harness/campaign.hpp"
#include "harness/dram_campaign.hpp"
#include "util/table.hpp"

namespace gb::report {
namespace {

/// Shortest round-trip double formatting, matching the metrics emitter so
/// rendered values never disagree with the artifact bytes.
std::string format_value(double value) {
    char buffer[64];
    const auto [ptr, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (ec != std::errc{}) {
        return "?";
    }
    return std::string(buffer, ptr);
}

std::string format_cores(const std::vector<int>& cores) {
    std::string out;
    for (const int core : cores) {
        if (!out.empty()) {
            out += '+';
        }
        out += std::to_string(core);
    }
    return out.empty() ? "-" : out;
}

} // namespace

// --- trace model --------------------------------------------------------

std::uint64_t campaign_node::downtime_ticks() const {
    std::uint64_t total = 0;
    for (const task_node& task : tasks) {
        total += task.ticks - quantum_ticks;
    }
    return total;
}

std::uint64_t trace_model::total_task_ticks() const {
    std::uint64_t total = 0;
    for (const campaign_node& campaign : campaigns) {
        total += campaign.task_ticks;
    }
    return total;
}

std::optional<trace_model> build_trace_model(trace_artifact artifact,
                                             std::string& error) {
    trace_model model;
    model.source = std::move(artifact);
    // Campaign-control spans, in deterministic layout order.
    for (const trace_event* event : model.source.on_track(0)) {
        if (event->ph != trace_event::phase::complete) {
            error = "instant event on the campaign track";
            return std::nullopt;
        }
        campaign_node node;
        node.name = event->name;
        node.span_ticks = event->dur;
        const auto tasks = event->arg_u64("tasks");
        const auto first = event->arg_u64("first_index");
        if (!tasks || !first) {
            error = "campaign span '" + event->name +
                    "' lacks tasks/first_index args";
            return std::nullopt;
        }
        node.declared_tasks = *tasks;
        node.first_index = *first;
        node.declared_faults = event->arg_u64("faults").value_or(0);
        model.campaigns.push_back(std::move(node));
    }
    // Rig-track walk: each campaign owns the next `declared_tasks` task
    // spans; fault instants attach to the task span laid before them.
    const std::vector<const trace_event*> rig = model.source.on_track(1);
    std::size_t cursor = 0;
    for (campaign_node& campaign : model.campaigns) {
        task_node* current = nullptr;
        while (campaign.tasks.size() < campaign.declared_tasks ||
               (cursor < rig.size() &&
                rig[cursor]->ph == trace_event::phase::instant)) {
            if (cursor >= rig.size()) {
                error = "campaign '" + campaign.name + "' declares " +
                        std::to_string(campaign.declared_tasks) +
                        " tasks but the rig track ends after " +
                        std::to_string(campaign.tasks.size());
                return std::nullopt;
            }
            const trace_event* event = rig[cursor++];
            if (event->ph == trace_event::phase::instant) {
                if (current == nullptr) {
                    error = "fault instant before any task span";
                    return std::nullopt;
                }
                current->instants.push_back(event);
                continue;
            }
            if (event->name != "task") {
                error = "unexpected span '" + event->name +
                        "' on the rig track";
                return std::nullopt;
            }
            task_node task;
            const auto index = event->arg_u64("index");
            if (!index) {
                error = "task span without an index arg";
                return std::nullopt;
            }
            task.index = *index;
            task.ticks = event->dur;
            if (const auto bucket = event->arg_u64("bucket")) {
                task.bucket = static_cast<int>(*bucket);
            }
            task.faulted_attempts =
                event->arg_u64("faulted_attempts").value_or(0);
            const std::string* aborted = event->arg("aborted");
            task.aborted = aborted != nullptr && *aborted == "true";
            const std::string* replayed = event->arg("replayed");
            task.replayed = replayed != nullptr && *replayed == "true";
            campaign.task_ticks += task.ticks;
            campaign.tasks.push_back(std::move(task));
            current = &campaign.tasks.back();
        }
        if (!campaign.tasks.empty()) {
            campaign.quantum_ticks = std::numeric_limits<std::uint64_t>::max();
            for (const task_node& task : campaign.tasks) {
                campaign.quantum_ticks =
                    std::min(campaign.quantum_ticks, task.ticks);
            }
        }
    }
    if (cursor != rig.size()) {
        error = std::to_string(rig.size() - cursor) +
                " rig-track events beyond the declared campaigns";
        return std::nullopt;
    }
    model.supervisor_events = model.source.on_track(2);
    return model;
}

// --- summary ------------------------------------------------------------

namespace {

/// One (benchmark, cores, frequency) CPU rollup group.
struct cpu_group {
    std::uint64_t runs = 0;
    std::uint64_t ok = 0;
    std::uint64_t corrected = 0;
    std::uint64_t disruptive = 0;
    std::uint64_t watchdog_resets = 0;
    /// voltage (mV) -> had any disruptive run there.
    std::map<double, bool> voltages;
};

/// Per-temperature DRAM rollup group.
struct dram_group {
    std::uint64_t records = 0;
    std::uint64_t clean = 0;
    std::uint64_t contained = 0;
    std::uint64_t uncorrectable = 0;
    std::uint64_t aborted = 0;
    std::uint64_t weak_cells = 0;     ///< failing-cell observations, summed
    std::uint64_t max_scan_cells = 0; ///< worst single scan
    /// refresh period (ms) -> every record at it is clean/contained.
    std::map<double, bool> periods;
};

} // namespace

void render_summary(std::ostream& out, const journal_artifact& journal) {
    out << "journal: " << journal.lines << " line(s), " << journal.records()
        << " record(s), " << journal.skipped << " skipped";
    if (journal.truncated_tail) {
        out << ", truncated tail (live)";
    }
    out << "\n";
    if (!journal.cpu.completed.empty()) {
        std::map<std::tuple<std::string, std::string, double>, cpu_group>
            groups;
        for (const auto& [index, record] : journal.cpu.completed) {
            (void)index;
            cpu_group& group =
                groups[{record.benchmark, format_cores(record.cores),
                        record.frequency.value}];
            ++group.runs;
            const bool disruptive = is_disruption(record.outcome);
            if (record.outcome == run_outcome::ok) {
                ++group.ok;
            } else if (record.outcome == run_outcome::corrected_error) {
                ++group.corrected;
            }
            if (disruptive) {
                ++group.disruptive;
            }
            if (record.watchdog_reset) {
                ++group.watchdog_resets;
            }
            auto [at, inserted] =
                group.voltages.try_emplace(record.voltage.value, disruptive);
            if (!inserted) {
                at->second = at->second || disruptive;
            }
        }
        out << "\nCPU campaigns (" << journal.cpu.completed.size()
            << " run(s), " << journal.cpu.skipped << " skipped line(s))\n";
        text_table table({"benchmark", "cores", "f(MHz)", "runs", "ok", "ce",
                          "disrupt", "wdt", "safe Vmin(mV)"});
        for (const auto& [key, group] : groups) {
            const auto& [benchmark, cores, frequency] = key;
            // Safe Vmin: lowest swept voltage with no disruptive run.
            double vmin = 0.0;
            bool found = false;
            for (const auto& [voltage, disruptive] : group.voltages) {
                if (!disruptive) {
                    vmin = voltage;
                    found = true;
                    break;
                }
            }
            table.add_row({benchmark, cores, format_number(frequency, 0),
                           std::to_string(group.runs),
                           std::to_string(group.ok),
                           std::to_string(group.corrected),
                           std::to_string(group.disruptive),
                           std::to_string(group.watchdog_resets),
                           found ? format_number(vmin, 1) : "-"});
        }
        table.render(out);
    }
    if (!journal.dram.completed.empty()) {
        std::map<double, dram_group> groups;
        for (const auto& [index, record] : journal.dram.completed) {
            (void)index;
            dram_group& group = groups[record.temperature.value];
            ++group.records;
            const bool safe =
                record.outcome == dram_run_outcome::clean ||
                record.outcome == dram_run_outcome::contained;
            switch (record.outcome) {
            case dram_run_outcome::clean: ++group.clean; break;
            case dram_run_outcome::contained: ++group.contained; break;
            case dram_run_outcome::uncorrectable:
                ++group.uncorrectable;
                break;
            case dram_run_outcome::aborted_rig: ++group.aborted; break;
            }
            group.weak_cells += record.scan.failed_cells;
            group.max_scan_cells =
                std::max(group.max_scan_cells, record.scan.failed_cells);
            auto [at, inserted] =
                group.periods.try_emplace(record.refresh_period.value, safe);
            if (!inserted) {
                at->second = at->second && safe;
            }
        }
        out << "\nDRAM campaigns (" << journal.dram.completed.size()
            << " record(s), " << journal.dram.skipped
            << " skipped line(s))\n";
        text_table table({"temp(C)", "records", "clean", "ce", "ue",
                          "aborted", "weak cells", "worst scan",
                          "max safe tREF(ms)"});
        for (const auto& [temperature, group] : groups) {
            // Largest swept refresh period at which every record is
            // clean or contained; a missing measurement never certifies.
            double safe_period = 0.0;
            bool found = false;
            for (const auto& [period, safe] : group.periods) {
                if (safe && period > safe_period) {
                    safe_period = period;
                    found = true;
                }
            }
            table.add_row({format_number(temperature, 1),
                           std::to_string(group.records),
                           std::to_string(group.clean),
                           std::to_string(group.contained),
                           std::to_string(group.uncorrectable),
                           std::to_string(group.aborted),
                           std::to_string(group.weak_cells),
                           std::to_string(group.max_scan_cells),
                           found ? format_number(safe_period, 1) : "-"});
        }
        table.render(out);
    }
}

// --- critical path ------------------------------------------------------

void render_critical_path(std::ostream& out, const trace_model& model,
                          std::size_t top) {
    if (model.campaigns.empty()) {
        out << "critical-path: no campaign spans in the trace\n";
        return;
    }
    const std::uint64_t total = model.total_task_ticks();
    text_table campaigns({"campaign", "tasks", "task ticks", "downtime",
                          "faults", "share"});
    const campaign_node* dominant = &model.campaigns.front();
    for (const campaign_node& campaign : model.campaigns) {
        if (campaign.task_ticks > dominant->task_ticks) {
            dominant = &campaign;
        }
        campaigns.add_row(
            {campaign.name, std::to_string(campaign.tasks.size()),
             std::to_string(campaign.task_ticks),
             std::to_string(campaign.downtime_ticks()),
             std::to_string(campaign.declared_faults),
             total > 0 ? format_percent(
                             static_cast<double>(campaign.task_ticks) /
                             static_cast<double>(total))
                       : "-"});
    }
    campaigns.render(out);
    // The heaviest tasks of the dominant campaign are the virtual-time
    // critical path: every tick above the quantum is injected downtime.
    std::vector<const task_node*> ranked;
    ranked.reserve(dominant->tasks.size());
    for (const task_node& task : dominant->tasks) {
        ranked.push_back(&task);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const task_node* a, const task_node* b) {
                         return a->ticks > b->ticks;
                     });
    if (ranked.size() > top) {
        ranked.resize(top);
    }
    out << "\ncritical path of '" << dominant->name << "' (top "
        << ranked.size() << " of " << dominant->tasks.size()
        << " tasks, quantum " << dominant->quantum_ticks << " ticks)\n";
    text_table tasks(
        {"task", "ticks", "share", "attempts", "flags", "faults"});
    for (const task_node* task : ranked) {
        std::string flags;
        if (task->aborted) {
            flags += "aborted";
        }
        if (task->replayed) {
            flags += flags.empty() ? "replayed" : "+replayed";
        }
        std::string faults;
        for (const trace_event* instant : task->instants) {
            if (!faults.empty()) {
                faults += ',';
            }
            const std::string* kind = instant->arg("kind");
            faults += kind != nullptr ? *kind : instant->name;
        }
        tasks.add_row(
            {std::to_string(task->index), std::to_string(task->ticks),
             dominant->task_ticks > 0
                 ? format_percent(static_cast<double>(task->ticks) /
                                  static_cast<double>(dominant->task_ticks))
                 : "-",
             std::to_string(task->faulted_attempts + 1),
             flags.empty() ? "-" : flags, faults.empty() ? "-" : faults});
    }
    tasks.render(out);
}

// --- utilization --------------------------------------------------------

double utilization_report::efficiency() const {
    if (makespan == 0 || workers <= 0) {
        return 0.0;
    }
    return static_cast<double>(serial_ticks) /
           (static_cast<double>(workers) * static_cast<double>(makespan));
}

double utilization_report::speedup() const {
    if (makespan == 0) {
        return 0.0;
    }
    return static_cast<double>(serial_ticks) /
           static_cast<double>(makespan);
}

double utilization_report::imbalance() const {
    if (loads.empty() || serial_ticks == 0) {
        return 0.0;
    }
    std::uint64_t busiest = 0;
    for (const worker_load& load : loads) {
        busiest = std::max(busiest, load.busy_ticks);
    }
    const double mean = static_cast<double>(serial_ticks) /
                        static_cast<double>(loads.size());
    return mean > 0.0 ? static_cast<double>(busiest) / mean : 0.0;
}

utilization_report simulate_utilization(const trace_model& model,
                                        int workers) {
    // Campaigns run back to back (engine runs are sequential): a barrier
    // separates them.  The placement policy itself is the shared list
    // scheduler (harness/schedule.hpp).  Virtual time only --
    // deterministic.
    list_scheduler scheduler(workers);
    for (const campaign_node& campaign : model.campaigns) {
        for (const task_node& task : campaign.tasks) {
            scheduler.assign(task.ticks);
        }
        scheduler.barrier();
    }
    utilization_report report;
    report.workers = scheduler.workers();
    report.serial_ticks = scheduler.serial_ticks();
    report.makespan = scheduler.makespan();
    report.loads = scheduler.loads();
    return report;
}

void render_utilization(std::ostream& out,
                        const utilization_report& report) {
    out << "utilization: " << report.workers << " simulated worker(s), "
        << report.serial_ticks << " serial ticks, makespan "
        << report.makespan << " ticks\n";
    out << "speedup " << format_number(report.speedup(), 2)
        << "x, efficiency " << format_percent(report.efficiency())
        << ", imbalance " << format_number(report.imbalance(), 2)
        << "x\n";
    text_table table({"worker", "tasks", "busy ticks", "share"});
    for (std::size_t w = 0; w < report.loads.size(); ++w) {
        const worker_load& load = report.loads[w];
        table.add_row(
            {std::to_string(w), std::to_string(load.tasks),
             std::to_string(load.busy_ticks),
             report.serial_ticks > 0
                 ? format_percent(static_cast<double>(load.busy_ticks) /
                                  static_cast<double>(report.serial_ticks))
                 : "-"});
    }
    table.render(out);
}

// --- timeline -----------------------------------------------------------

namespace {

std::string format_args(const trace_event& event) {
    std::string out;
    for (const auto& [key, value] : event.args) {
        if (!out.empty()) {
            out += ' ';
        }
        out += key;
        out += '=';
        out += value;
    }
    return out;
}

} // namespace

void render_timeline(std::ostream& out, const trace_model& model,
                     const metrics_snapshot* metrics) {
    std::size_t fault_instants = 0;
    for (const campaign_node& campaign : model.campaigns) {
        for (const task_node& task : campaign.tasks) {
            fault_instants += task.instants.size();
        }
    }
    out << "timeline: " << model.campaigns.size() << " campaign(s), "
        << fault_instants << " fault instant(s), "
        << model.supervisor_events.size() << " supervisor event(s)\n";
    for (const campaign_node& campaign : model.campaigns) {
        out << "[campaign] " << campaign.name
            << " tasks=" << campaign.tasks.size()
            << " faults=" << campaign.declared_faults
            << " ticks=" << campaign.task_ticks << "\n";
        for (const task_node& task : campaign.tasks) {
            for (const trace_event* instant : task.instants) {
                out << "  [" << instant->category << "] task " << task.index
                    << " " << instant->name;
                const std::string args = format_args(*instant);
                if (!args.empty()) {
                    out << " " << args;
                }
                out << "\n";
            }
            if (task.aborted) {
                out << "  [engine] task " << task.index
                    << " aborted after "
                    << (task.faulted_attempts + 1) << " attempt(s)\n";
            }
        }
    }
    for (const trace_event* event : model.supervisor_events) {
        if (event->ph == trace_event::phase::complete) {
            out << "[supervisor] " << event->name;
        } else {
            out << "  [supervisor] " << event->name;
        }
        const std::string args = format_args(*event);
        if (!args.empty()) {
            out << " " << args;
        }
        out << "\n";
    }
    if (metrics != nullptr) {
        out << "\nhealth metrics\n";
        text_table table({"metric", "kind", "value"});
        for (const auto& [name, value] : metrics->counters) {
            table.add_row({name, "counter", std::to_string(value)});
        }
        for (const auto& [name, value] : metrics->gauges) {
            table.add_row({name, "gauge", format_value(value)});
        }
        for (const auto& [name, histogram] : metrics->histograms) {
            table.add_row({name, "histogram",
                           std::to_string(histogram.count) + " samples, sum " +
                               std::to_string(histogram.sum)});
        }
        table.render(out);
    }
}

// --- metrics diff -------------------------------------------------------

double tolerance_for(const diff_options& options, std::string_view name) {
    double best = options.default_tolerance;
    std::size_t best_length = 0;
    bool exact = false;
    for (const auto& [pattern, tolerance] : options.overrides) {
        if (pattern == name) {
            best = tolerance;
            exact = true;
        } else if (!exact && !pattern.empty() && pattern.back() == '*') {
            const std::string_view prefix =
                std::string_view(pattern).substr(0, pattern.size() - 1);
            if (name.substr(0, prefix.size()) == prefix &&
                prefix.size() >= best_length) {
                best = tolerance;
                best_length = prefix.size() + 1;
            }
        }
    }
    return best;
}

namespace {

struct flat_metric {
    std::string kind;
    double value = 0.0;
    /// 64-bit payload for integer metrics; doubles round above 2^53, so a
    /// counter (e.g. content.hash) must compare on the exact integer.
    std::uint64_t integer = 0;
    bool is_integer = false;

    [[nodiscard]] std::string text() const {
        return is_integer ? std::to_string(integer) : format_value(value);
    }
};

std::map<std::string, flat_metric> flatten(const metrics_snapshot& snapshot) {
    std::map<std::string, flat_metric> flat;
    const auto integer_metric = [](const char* kind, std::uint64_t value) {
        return flat_metric{kind, static_cast<double>(value), value, true};
    };
    for (const auto& [name, value] : snapshot.counters) {
        flat[name] = integer_metric("counter", value);
    }
    for (const auto& [name, value] : snapshot.gauges) {
        flat[name] = {"gauge", value, 0, false};
    }
    for (const auto& [name, histogram] : snapshot.histograms) {
        flat[name + ".count"] = integer_metric("histogram", histogram.count);
        flat[name + ".sum"] = integer_metric("histogram", histogram.sum);
    }
    return flat;
}

} // namespace

diff_report diff_metrics(const metrics_snapshot& baseline,
                         const metrics_snapshot& candidate,
                         const diff_options& options) {
    const std::map<std::string, flat_metric> base = flatten(baseline);
    const std::map<std::string, flat_metric> cand = flatten(candidate);
    diff_report report;
    std::set<std::string> names;
    for (const auto& [name, metric] : base) {
        (void)metric;
        names.insert(name);
    }
    for (const auto& [name, metric] : cand) {
        (void)metric;
        names.insert(name);
    }
    for (const std::string& name : names) {
        const auto in_base = base.find(name);
        const auto in_cand = cand.find(name);
        diff_entry entry;
        entry.name = name;
        entry.tolerance = tolerance_for(options, name);
        if (in_base == base.end()) {
            entry.kind = in_cand->second.kind;
            entry.candidate = in_cand->second.value;
            entry.candidate_text = in_cand->second.text();
            entry.status = diff_status::added;
            ++report.added;
        } else if (in_cand == cand.end()) {
            entry.kind = in_base->second.kind;
            entry.baseline = in_base->second.value;
            entry.baseline_text = in_base->second.text();
            entry.status = diff_status::missing;
            ++report.missing;
        } else {
            const flat_metric& before = in_base->second;
            const flat_metric& after = in_cand->second;
            entry.kind = before.kind;
            entry.baseline = before.value;
            entry.candidate = after.value;
            entry.baseline_text = before.text();
            entry.candidate_text = after.text();
            // Integer metrics get exact equality (a double merges values
            // above 2^53); the relative change itself may round, but a
            // rounded nonzero is still nonzero.
            const bool identical =
                before.is_integer && after.is_integer
                    ? before.integer == after.integer
                    : entry.candidate == entry.baseline;
            if (identical) {
                entry.relative = 0.0;
            } else if (entry.baseline == 0.0) {
                // A zero baseline admits only an exactly-zero candidate.
                entry.relative = std::numeric_limits<double>::infinity();
            } else {
                const double delta =
                    before.is_integer && after.is_integer
                        ? static_cast<double>(
                              before.integer > after.integer
                                  ? before.integer - after.integer
                                  : after.integer - before.integer)
                        : std::fabs(entry.candidate - entry.baseline);
                entry.relative =
                    std::max(delta / std::fabs(entry.baseline),
                             std::numeric_limits<double>::min());
            }
            if (entry.relative > entry.tolerance) {
                entry.status = diff_status::regression;
                ++report.regressions;
            }
        }
        report.entries.push_back(std::move(entry));
    }
    return report;
}

void render_diff(std::ostream& out, const diff_report& report) {
    text_table table({"metric", "kind", "baseline", "candidate", "rel",
                      "tol", "status"});
    for (const diff_entry& entry : report.entries) {
        std::string relative;
        if (entry.status == diff_status::added ||
            entry.status == diff_status::missing) {
            relative = "-";
        } else if (std::isinf(entry.relative)) {
            relative = "inf";
        } else {
            relative = format_percent(entry.relative, 2);
        }
        const char* status = "ok";
        switch (entry.status) {
        case diff_status::ok: status = "ok"; break;
        case diff_status::added: status = "added"; break;
        case diff_status::regression: status = "REGRESSION"; break;
        case diff_status::missing: status = "MISSING"; break;
        }
        table.add_row(
            {entry.name, entry.kind,
             entry.status == diff_status::added ? "-" : entry.baseline_text,
             entry.status == diff_status::missing ? "-"
                                                  : entry.candidate_text,
             relative, format_percent(entry.tolerance, 2), status});
    }
    table.render(out);
    out << "diff: " << report.entries.size() << " metric(s), "
        << report.regressions << " regression(s), " << report.missing
        << " missing, " << report.added << " added\n";
}

// --- sdc audit ----------------------------------------------------------

audit_report build_audit_report(const metrics_snapshot& metrics) {
    audit_report report;
    for (const auto& [name, value] : metrics.gauges) {
        if (std::string_view(name).substr(0, 10) == "integrity.") {
            report.present = true;
            break;
        }
    }
    if (!report.present) {
        return report;
    }
    // The emit side writes these gauges from 64-bit counters small enough
    // to round-trip a double exactly.
    const auto count = [&metrics](std::string_view name) {
        const double value = metrics.gauge_value(name);
        return value <= 0.0 ? 0ULL
                            : static_cast<std::uint64_t>(value + 0.5);
    };
    report.injected = count("integrity.sdc_injected");
    report.detected = count("integrity.sdc_detected");
    report.outvoted = count("integrity.sdc_outvoted");
    report.audit_caught = count("integrity.audit_mismatches");
    report.stalemates = count("integrity.quorum_stalemates");
    report.corrected = count("integrity.sdc_corrected");
    report.escaped = count("integrity.sdc_escaped");
    report.audits = count("integrity.audits");
    report.dissents = count("integrity.dissents");
    report.blacklisted_rigs = count("integrity.blacklisted_rigs");
    report.repaired_entries = count("integrity.repaired_entries");
    report.replica_executions = count("integrity.replica_executions");
    return report;
}

void render_audit(std::ostream& out, const audit_report& report) {
    out << "sdc audit: " << report.injected << " injected, "
        << report.detected << " detected (" << report.outvoted
        << " outvoted, " << report.audit_caught << " audit-caught, "
        << report.stalemates << " stalemates), " << report.corrected
        << " corrected, " << report.escaped << " escaped\n"
        << "defense: " << report.replica_executions
        << " replica executions, " << report.audits << " audits, "
        << report.dissents << " dissents, " << report.blacklisted_rigs
        << " blacklisted rigs, " << report.repaired_entries
        << " repaired entries\n";
    if (report.escaped > 0) {
        out << "VERDICT: ESCAPED -- " << report.escaped
            << " corruption(s) reached the served snapshot\n";
    } else {
        out << "verdict: clean -- every injected corruption was caught\n";
    }
}

} // namespace gb::report

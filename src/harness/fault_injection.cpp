#include "harness/fault_injection.hpp"

#include "harness/execution_engine.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gb {

namespace {

// Domain separators so the fault streams never alias the task-seed stream
// the engine hands to the tasks themselves (same base seed, different
// purpose).
constexpr std::uint64_t run_fault_domain = 0x7269672d66617574ULL;
constexpr std::uint64_t log_fault_domain = 0x6c6f672d66617574ULL;
constexpr std::uint64_t sensor_fault_domain = 0x7463702d66617574ULL;

} // namespace

std::string_view to_string(rig_fault fault) {
    switch (fault) {
    case rig_fault::none: return "none";
    case rig_fault::hang_until_watchdog: return "hang";
    case rig_fault::board_crash: return "crash";
    case rig_fault::power_switch_failure: return "power-switch";
    }
    return "?";
}

void fault_plan_config::validate() const {
    GB_EXPECTS(hang_rate >= 0.0 && hang_rate <= 1.0);
    GB_EXPECTS(crash_rate >= 0.0 && crash_rate <= 1.0);
    GB_EXPECTS(power_switch_rate >= 0.0 && power_switch_rate <= 1.0);
    GB_EXPECTS(hang_rate + crash_rate + power_switch_rate <= 1.0);
    GB_EXPECTS(log_corruption_rate >= 0.0 && log_corruption_rate <= 1.0);
    GB_EXPECTS(thermocouple_fault_rate >= 0.0 &&
               thermocouple_fault_rate <= 1.0);
    GB_EXPECTS(watchdog_timeout_s >= 0.0);
    GB_EXPECTS(reboot_s >= 0.0);
    GB_EXPECTS(power_cycle_retry_s >= 0.0);
}

fault_plan::fault_plan(fault_plan_config config) : config_(config) {
    config_.validate();
}

rig_fault fault_plan::draw(std::uint64_t task_index, int attempt) const {
    GB_EXPECTS(attempt >= 0);
    const std::uint64_t base =
        derive_task_seed(config_.seed ^ run_fault_domain, task_index);
    rng stream(derive_task_seed(base,
                                static_cast<std::uint64_t>(attempt) + 1));
    double u = stream.uniform();
    if (u < config_.hang_rate) {
        return rig_fault::hang_until_watchdog;
    }
    u -= config_.hang_rate;
    if (u < config_.crash_rate) {
        return rig_fault::board_crash;
    }
    u -= config_.crash_rate;
    if (u < config_.power_switch_rate) {
        return rig_fault::power_switch_failure;
    }
    return rig_fault::none;
}

bool fault_plan::corrupts_log(std::uint64_t task_index) const {
    if (config_.log_corruption_rate <= 0.0) {
        return false;
    }
    rng stream(derive_task_seed(config_.seed ^ log_fault_domain, task_index));
    return stream.bernoulli(config_.log_corruption_rate);
}

std::string fault_plan::corrupt_line(std::uint64_t task_index,
                                     std::string_view line) const {
    rng stream(derive_task_seed(config_.seed ^ log_fault_domain,
                                task_index) +
               1);
    // Cut into the first half, then always smear line noise over the tail:
    // the noise bytes contain no '=', so whatever field they land in (or
    // start) fails key=value parsing -- the remnant can never parse as a
    // (wrong) record, regardless of where the cut fell.
    const std::uint64_t cut =
        line.empty() ? 0 : stream.uniform_index(line.size() / 2 + 1);
    std::string mangled(line.substr(0, cut));
    mangled += "\x01#\x7f~";
    return mangled;
}

celsius fault_plan::thermocouple_offset(int dimm) const {
    GB_EXPECTS(dimm >= 0);
    if (config_.thermocouple_fault_rate <= 0.0) {
        return celsius{0.0};
    }
    rng stream(derive_task_seed(config_.seed ^ sensor_fault_domain,
                                static_cast<std::uint64_t>(dimm)));
    if (!stream.bernoulli(config_.thermocouple_fault_rate)) {
        return celsius{0.0};
    }
    return config_.thermocouple_offset;
}

double fault_plan::downtime_for(rig_fault fault) const {
    switch (fault) {
    case rig_fault::none: return 0.0;
    case rig_fault::hang_until_watchdog:
        return config_.watchdog_timeout_s + config_.reboot_s;
    case rig_fault::board_crash: return config_.reboot_s;
    case rig_fault::power_switch_failure:
        return config_.power_cycle_retry_s;
    }
    return 0.0;
}

fault_plan make_uniform_fault_plan(std::uint64_t seed, double fault_rate) {
    GB_EXPECTS(fault_rate >= 0.0 && fault_rate <= 1.0);
    fault_plan_config config;
    config.seed = seed;
    config.hang_rate = fault_rate / 3.0;
    config.crash_rate = fault_rate / 3.0;
    config.power_switch_rate = fault_rate / 3.0;
    config.log_corruption_rate = fault_rate;
    return fault_plan(config);
}

} // namespace gb

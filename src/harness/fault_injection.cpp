#include "harness/fault_injection.hpp"

#include <bit>
#include <charconv>
#include <cmath>

#include "harness/execution_engine.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gb {

namespace {

// Domain separators so the fault streams never alias the task-seed stream
// the engine hands to the tasks themselves (same base seed, different
// purpose).
constexpr std::uint64_t run_fault_domain = 0x7269672d66617574ULL;
constexpr std::uint64_t log_fault_domain = 0x6c6f672d66617574ULL;
constexpr std::uint64_t sensor_fault_domain = 0x7463702d66617574ULL;
constexpr std::uint64_t sdc_domain = 0x7364632d66617574ULL;

constexpr std::size_t sdc_site_count = 4;

} // namespace

std::string_view to_string(rig_fault fault) {
    switch (fault) {
    case rig_fault::none: return "none";
    case rig_fault::hang_until_watchdog: return "hang";
    case rig_fault::board_crash: return "crash";
    case rig_fault::power_switch_failure: return "power-switch";
    }
    return "?";
}

void fault_plan_config::validate() const {
    GB_EXPECTS(hang_rate >= 0.0 && hang_rate <= 1.0);
    GB_EXPECTS(crash_rate >= 0.0 && crash_rate <= 1.0);
    GB_EXPECTS(power_switch_rate >= 0.0 && power_switch_rate <= 1.0);
    GB_EXPECTS(hang_rate + crash_rate + power_switch_rate <= 1.0);
    GB_EXPECTS(log_corruption_rate >= 0.0 && log_corruption_rate <= 1.0);
    GB_EXPECTS(thermocouple_fault_rate >= 0.0 &&
               thermocouple_fault_rate <= 1.0);
    GB_EXPECTS(watchdog_timeout_s >= 0.0);
    GB_EXPECTS(reboot_s >= 0.0);
    GB_EXPECTS(power_cycle_retry_s >= 0.0);
}

fault_plan::fault_plan(fault_plan_config config) : config_(config) {
    config_.validate();
}

rig_fault fault_plan::draw(std::uint64_t task_index, int attempt) const {
    GB_EXPECTS(attempt >= 0);
    const std::uint64_t base =
        derive_task_seed(config_.seed ^ run_fault_domain, task_index);
    rng stream(derive_task_seed(base,
                                static_cast<std::uint64_t>(attempt) + 1));
    double u = stream.uniform();
    if (u < config_.hang_rate) {
        return rig_fault::hang_until_watchdog;
    }
    u -= config_.hang_rate;
    if (u < config_.crash_rate) {
        return rig_fault::board_crash;
    }
    u -= config_.crash_rate;
    if (u < config_.power_switch_rate) {
        return rig_fault::power_switch_failure;
    }
    return rig_fault::none;
}

bool fault_plan::corrupts_log(std::uint64_t task_index) const {
    if (config_.log_corruption_rate <= 0.0) {
        return false;
    }
    rng stream(derive_task_seed(config_.seed ^ log_fault_domain, task_index));
    return stream.bernoulli(config_.log_corruption_rate);
}

std::string fault_plan::corrupt_line(std::uint64_t task_index,
                                     std::string_view line) const {
    rng stream(derive_task_seed(config_.seed ^ log_fault_domain,
                                task_index) +
               1);
    // Cut into the first half, then always smear line noise over the tail:
    // the noise bytes contain no '=', so whatever field they land in (or
    // start) fails key=value parsing -- the remnant can never parse as a
    // (wrong) record, regardless of where the cut fell.
    const std::uint64_t cut =
        line.empty() ? 0 : stream.uniform_index(line.size() / 2 + 1);
    std::string mangled(line.substr(0, cut));
    mangled += "\x01#\x7f~";
    return mangled;
}

celsius fault_plan::thermocouple_offset(int dimm) const {
    GB_EXPECTS(dimm >= 0);
    if (config_.thermocouple_fault_rate <= 0.0) {
        return celsius{0.0};
    }
    rng stream(derive_task_seed(config_.seed ^ sensor_fault_domain,
                                static_cast<std::uint64_t>(dimm)));
    if (!stream.bernoulli(config_.thermocouple_fault_rate)) {
        return celsius{0.0};
    }
    return config_.thermocouple_offset;
}

double fault_plan::downtime_for(rig_fault fault) const {
    switch (fault) {
    case rig_fault::none: return 0.0;
    case rig_fault::hang_until_watchdog:
        return config_.watchdog_timeout_s + config_.reboot_s;
    case rig_fault::board_crash: return config_.reboot_s;
    case rig_fault::power_switch_failure:
        return config_.power_cycle_retry_s;
    }
    return 0.0;
}

fault_plan make_uniform_fault_plan(std::uint64_t seed, double fault_rate) {
    GB_EXPECTS(fault_rate >= 0.0 && fault_rate <= 1.0);
    fault_plan_config config;
    config.seed = seed;
    config.hang_rate = fault_rate / 3.0;
    config.crash_rate = fault_rate / 3.0;
    config.power_switch_rate = fault_rate / 3.0;
    config.log_corruption_rate = fault_rate;
    return fault_plan(config);
}

// --- silent data corruption ------------------------------------------------

std::string_view to_string(sdc_site site) {
    switch (site) {
    case sdc_site::vmin_flip: return "vmin_flip";
    case sdc_site::weak_drop: return "weak_drop";
    case sdc_site::weak_phantom: return "weak_phantom";
    case sdc_site::power_scale: return "power_scale";
    }
    return "?";
}

bool sdc_site_from_string(std::string_view text, sdc_site& site) {
    for (std::size_t i = 0; i < sdc_site_count; ++i) {
        const auto candidate = static_cast<sdc_site>(i);
        if (text == to_string(candidate)) {
            site = candidate;
            return true;
        }
    }
    return false;
}

sdc_plan::sdc_plan(sdc_plan_config config)
    : config_(std::move(config)),
      fired_flags_(config_.triggers.size(), false) {
    for (const sdc_trigger& trigger : config_.triggers) {
        GB_EXPECTS(trigger.at >= 1);
    }
}

std::optional<sdc_corruption> sdc_plan::on_execution() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t hit = ++opportunities_;
    for (std::size_t t = 0; t < config_.triggers.size(); ++t) {
        const sdc_trigger& trigger = config_.triggers[t];
        if (fired_flags_[t] || hit != trigger.at) {
            continue;
        }
        fired_flags_[t] = true;
        ++injected_;
        std::uint64_t param = trigger.param;
        if (param == sdc_trigger::param_auto) {
            param = derive_task_seed(config_.seed ^ sdc_domain, hit);
        }
        return sdc_corruption{trigger.site, param};
    }
    return std::nullopt;
}

std::uint64_t sdc_plan::injected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return injected_;
}

double sdc_plan::corrupt_vmin(double value_mv, std::uint64_t param) {
    GB_EXPECTS(std::isfinite(value_mv));
    // Binary64 layout: bits [0, 52) are the mantissa.  Flipping one of
    // them always produces a different, still-finite double.
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value_mv);
    return std::bit_cast<double>(bits ^ (1ULL << (param % 52)));
}

long long sdc_plan::corrupt_weak_cells(long long count, sdc_site site,
                                       std::uint64_t param) {
    const long long delta = 1 + static_cast<long long>(param % 3);
    return site == sdc_site::weak_drop ? count - delta : count + delta;
}

double sdc_plan::corrupt_power(double watts, std::uint64_t param) {
    GB_EXPECTS(std::isfinite(watts));
    const std::uint64_t permille = 1 + param % 100;
    const double factor =
        (param % 2 == 0) ? (1000.0 + static_cast<double>(permille)) / 1000.0
                         : (1000.0 - static_cast<double>(permille)) / 1000.0;
    return watts * factor;
}

bool parse_sdc_spec(std::string_view spec, sdc_plan_config& config,
                    std::string& error) {
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::size_t end =
            comma == std::string_view::npos ? spec.size() : comma;
        const std::string_view token = spec.substr(pos, end - pos);
        pos = end + 1;
        if (token.empty()) {
            if (comma == std::string_view::npos) {
                break;
            }
            error = "empty sdc trigger in spec '" + std::string(spec) + "'";
            return false;
        }
        const std::size_t at_sep = token.find('@');
        if (at_sep == std::string_view::npos || at_sep == 0) {
            error = "sdc trigger '" + std::string(token) +
                    "' wants site@at[/param]";
            return false;
        }
        sdc_trigger trigger;
        if (!sdc_site_from_string(token.substr(0, at_sep), trigger.site)) {
            error = "sdc trigger '" + std::string(token) +
                    "': unknown sdc site '" +
                    std::string(token.substr(0, at_sep)) + "'";
            return false;
        }
        std::string_view numbers = token.substr(at_sep + 1);
        std::string_view param_text;
        const std::size_t slash = numbers.find('/');
        if (slash != std::string_view::npos) {
            param_text = numbers.substr(slash + 1);
            numbers = numbers.substr(0, slash);
        }
        const auto parse_u64 = [](std::string_view text,
                                  std::uint64_t& out) {
            const auto [ptr, ec] = std::from_chars(
                text.data(), text.data() + text.size(), out);
            return ec == std::errc{} && ptr == text.data() + text.size();
        };
        if (!parse_u64(numbers, trigger.at) || trigger.at == 0) {
            error = "sdc trigger '" + std::string(token) +
                    "' wants a positive integer after '@'";
            return false;
        }
        if (!param_text.empty() &&
            !parse_u64(param_text, trigger.param)) {
            error = "sdc trigger '" + std::string(token) +
                    "' wants an integer parameter after '/'";
            return false;
        }
        config.triggers.push_back(trigger);
        if (comma == std::string_view::npos) {
            break;
        }
    }
    return true;
}

} // namespace gb

#include "harness/logfile.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace gb {

namespace {

constexpr std::string_view record_prefix = "run=";

std::string_view outcome_token(run_outcome outcome) {
    return to_string(outcome);
}

bool parse_outcome(std::string_view token, run_outcome& outcome) {
    for (const run_outcome candidate :
         {run_outcome::ok, run_outcome::corrected_error,
          run_outcome::uncorrectable_error,
          run_outcome::silent_data_corruption, run_outcome::crash,
          run_outcome::hang}) {
        if (token == to_string(candidate)) {
            outcome = candidate;
            return true;
        }
    }
    return false;
}

bool parse_double(std::string_view token, double& value) {
    const char* begin = token.data();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    return ec == std::errc{} && ptr == end;
}

bool parse_int(std::string_view token, int& value) {
    const char* begin = token.data();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    return ec == std::errc{} && ptr == end;
}

/// Split "key=value" around the first '='.
bool split_kv(std::string_view field, std::string_view& key,
              std::string_view& value) {
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
        return false;
    }
    key = field.substr(0, eq);
    value = field.substr(eq + 1);
    return true;
}

} // namespace

std::string to_log_line(const run_record& record) {
    std::ostringstream line;
    line << record_prefix << record.benchmark
         << " v=" << record.voltage.value << " f=" << record.frequency.value
         << " cores=";
    for (std::size_t i = 0; i < record.cores.size(); ++i) {
        line << (i > 0 ? "+" : "") << record.cores[i];
    }
    line << " rep=" << record.repetition
         << " outcome=" << outcome_token(record.outcome)
         << " margin=" << record.margin.value
         << " path=" << to_string(record.path)
         << " wdt=" << (record.watchdog_reset ? 1 : 0);
    return line.str();
}

bool parse_log_line(std::string_view line, run_record& record) {
    if (!line.starts_with(record_prefix)) {
        return false;
    }
    run_record parsed;
    bool have_outcome = false;
    bool have_voltage = false;
    bool have_benchmark = false;

    std::size_t position = 0;
    while (position < line.size()) {
        std::size_t space = line.find(' ', position);
        if (space == std::string_view::npos) {
            space = line.size();
        }
        const std::string_view field =
            line.substr(position, space - position);
        position = space + 1;
        if (field.empty()) {
            continue;
        }

        std::string_view key;
        std::string_view value;
        if (!split_kv(field, key, value)) {
            return false;
        }
        if (key == "run") {
            if (value.empty()) {
                return false;
            }
            parsed.benchmark = std::string(value);
            have_benchmark = true;
        } else if (key == "v") {
            double v = 0.0;
            if (!parse_double(value, v)) {
                return false;
            }
            parsed.voltage = millivolts{v};
            have_voltage = true;
        } else if (key == "f") {
            double f = 0.0;
            if (!parse_double(value, f)) {
                return false;
            }
            parsed.frequency = megahertz{f};
        } else if (key == "cores") {
            std::size_t start = 0;
            while (start <= value.size()) {
                std::size_t plus = value.find('+', start);
                if (plus == std::string_view::npos) {
                    plus = value.size();
                }
                int core = 0;
                if (!parse_int(value.substr(start, plus - start), core)) {
                    return false;
                }
                parsed.cores.push_back(core);
                start = plus + 1;
                if (plus == value.size()) {
                    break;
                }
            }
        } else if (key == "rep") {
            if (!parse_int(value, parsed.repetition)) {
                return false;
            }
        } else if (key == "outcome") {
            if (!parse_outcome(value, parsed.outcome)) {
                return false;
            }
            have_outcome = true;
        } else if (key == "margin") {
            double m = 0.0;
            if (!parse_double(value, m)) {
                return false;
            }
            parsed.margin = millivolts{m};
        } else if (key == "path") {
            if (value == to_string(failure_path::sram)) {
                parsed.path = failure_path::sram;
            } else if (value == to_string(failure_path::logic)) {
                parsed.path = failure_path::logic;
            } else {
                return false;
            }
        } else if (key == "wdt") {
            int flag = 0;
            if (!parse_int(value, flag)) {
                return false;
            }
            parsed.watchdog_reset = flag != 0;
        } else {
            return false; // unknown key: treat the line as corrupt
        }
    }

    if (!have_benchmark || !have_voltage || !have_outcome) {
        return false;
    }
    record = std::move(parsed);
    return true;
}

void write_raw_log(std::ostream& out, const campaign_result& result) {
    for (const run_record& record : result.records) {
        out << to_log_line(record) << '\n';
    }
}

std::vector<run_record> parse_raw_log(std::istream& in,
                                      std::size_t* skipped) {
    std::vector<run_record> records;
    std::size_t skipped_lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        run_record record;
        if (parse_log_line(line, record)) {
            records.push_back(std::move(record));
        } else if (!line.empty()) {
            ++skipped_lines;
        }
    }
    if (skipped != nullptr) {
        *skipped = skipped_lines;
    }
    return records;
}

} // namespace gb

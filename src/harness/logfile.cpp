#include "harness/logfile.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/contracts.hpp"

namespace gb {

namespace {

constexpr std::string_view record_prefix = "run=";
constexpr std::string_view dram_prefix = "dram=";

/// Shortest round-trip decimal form: parsing the result with from_chars
/// yields the exact same double, which is what makes journal resume
/// bit-identical to an uninterrupted run.
std::string format_double(double value) {
    std::array<char, 32> buffer{};
    const auto [ptr, ec] =
        std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
    GB_ASSERT(ec == std::errc{});
    return std::string(buffer.data(), ptr);
}

std::string_view outcome_token(run_outcome outcome) {
    return to_string(outcome);
}

bool parse_outcome(std::string_view token, run_outcome& outcome) {
    for (const run_outcome candidate :
         {run_outcome::ok, run_outcome::corrected_error,
          run_outcome::uncorrectable_error,
          run_outcome::silent_data_corruption, run_outcome::crash,
          run_outcome::hang, run_outcome::aborted_rig}) {
        if (token == to_string(candidate)) {
            outcome = candidate;
            return true;
        }
    }
    return false;
}

bool parse_dram_outcome(std::string_view token, dram_run_outcome& outcome) {
    for (const dram_run_outcome candidate :
         {dram_run_outcome::clean, dram_run_outcome::contained,
          dram_run_outcome::uncorrectable, dram_run_outcome::aborted_rig}) {
        if (token == to_string(candidate)) {
            outcome = candidate;
            return true;
        }
    }
    return false;
}

bool parse_pattern(std::string_view token, data_pattern& pattern) {
    for (const data_pattern candidate : all_data_patterns()) {
        if (token == to_string(candidate)) {
            pattern = candidate;
            return true;
        }
    }
    return false;
}

bool parse_double(std::string_view token, double& value) {
    const char* begin = token.data();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    // from_chars accepts "inf"/"nan" spellings; a corrupted journal line
    // must not smuggle a non-finite quantity into a record.
    return ec == std::errc{} && ptr == end && std::isfinite(value);
}

bool parse_int(std::string_view token, int& value) {
    const char* begin = token.data();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    return ec == std::errc{} && ptr == end;
}

bool parse_u64(std::string_view token, std::uint64_t& value) {
    const char* begin = token.data();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    return ec == std::errc{} && ptr == end;
}

bool parse_i64(std::string_view token, std::int64_t& value) {
    const char* begin = token.data();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    return ec == std::errc{} && ptr == end;
}

/// Split "key=value" around the first '='.
bool split_kv(std::string_view field, std::string_view& key,
              std::string_view& value) {
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
        return false;
    }
    key = field.substr(0, eq);
    value = field.substr(eq + 1);
    return true;
}

/// Iterate a line's space-separated fields; stops (returning false) on the
/// first field that fails `consume`.
template <typename Fn>
bool for_each_field(std::string_view line, Fn&& consume) {
    std::size_t position = 0;
    while (position < line.size()) {
        std::size_t space = line.find(' ', position);
        if (space == std::string_view::npos) {
            space = line.size();
        }
        const std::string_view field =
            line.substr(position, space - position);
        position = space + 1;
        if (field.empty()) {
            continue;
        }
        std::string_view key;
        std::string_view value;
        if (!split_kv(field, key, value) || !consume(key, value)) {
            return false;
        }
    }
    return true;
}

} // namespace

std::string to_log_line(const run_record& record) {
    std::string line;
    line += record_prefix;
    line += record.benchmark;
    line += " v=" + format_double(record.voltage.value);
    line += " f=" + format_double(record.frequency.value);
    line += " cores=";
    for (std::size_t i = 0; i < record.cores.size(); ++i) {
        line += (i > 0 ? "+" : "") + std::to_string(record.cores[i]);
    }
    line += " rep=" + std::to_string(record.repetition);
    line += " outcome=";
    line += outcome_token(record.outcome);
    line += " margin=" + format_double(record.margin.value);
    line += " path=";
    line += to_string(record.path);
    line += " wdt=";
    line += record.watchdog_reset ? '1' : '0';
    return line;
}

bool parse_log_line(std::string_view line, run_record& record) {
    if (!line.starts_with(record_prefix)) {
        return false;
    }
    run_record parsed;
    bool have_outcome = false;
    bool have_voltage = false;
    bool have_benchmark = false;
    // wdt is the line's last field; requiring it means a mid-line
    // truncation can never parse as a (wrong) record with defaulted
    // trailing fields -- same reason the DRAM format keeps outcome last.
    bool have_wdt = false;

    const bool well_formed = for_each_field(
        line, [&](std::string_view key, std::string_view value) {
            if (key == "run") {
                if (value.empty()) {
                    return false;
                }
                parsed.benchmark = std::string(value);
                have_benchmark = true;
            } else if (key == "v") {
                double v = 0.0;
                if (!parse_double(value, v)) {
                    return false;
                }
                parsed.voltage = millivolts{v};
                have_voltage = true;
            } else if (key == "f") {
                double f = 0.0;
                if (!parse_double(value, f)) {
                    return false;
                }
                parsed.frequency = megahertz{f};
            } else if (key == "cores") {
                std::size_t start = 0;
                while (start <= value.size()) {
                    std::size_t plus = value.find('+', start);
                    if (plus == std::string_view::npos) {
                        plus = value.size();
                    }
                    int core = 0;
                    if (!parse_int(value.substr(start, plus - start),
                                   core)) {
                        return false;
                    }
                    parsed.cores.push_back(core);
                    start = plus + 1;
                    if (plus == value.size()) {
                        break;
                    }
                }
            } else if (key == "rep") {
                if (!parse_int(value, parsed.repetition)) {
                    return false;
                }
            } else if (key == "outcome") {
                if (!parse_outcome(value, parsed.outcome)) {
                    return false;
                }
                have_outcome = true;
            } else if (key == "margin") {
                double m = 0.0;
                if (!parse_double(value, m)) {
                    return false;
                }
                parsed.margin = millivolts{m};
            } else if (key == "path") {
                if (value == to_string(failure_path::sram)) {
                    parsed.path = failure_path::sram;
                } else if (value == to_string(failure_path::logic)) {
                    parsed.path = failure_path::logic;
                } else {
                    return false;
                }
            } else if (key == "wdt") {
                int flag = 0;
                if (!parse_int(value, flag)) {
                    return false;
                }
                parsed.watchdog_reset = flag != 0;
                have_wdt = true;
            } else {
                return false; // unknown key: treat the line as corrupt
            }
            return true;
        });

    if (!well_formed || !have_benchmark || !have_voltage || !have_outcome ||
        !have_wdt) {
        return false;
    }
    record = std::move(parsed);
    return true;
}

std::string to_log_line(const dram_run_record& record) {
    // The outcome field stays last so any mid-line truncation is rejected
    // by the mandatory-field check rather than parsing as a wrong record.
    std::string line;
    line += dram_prefix;
    line += to_string(record.pattern);
    line += " t=" + format_double(record.temperature.value);
    line += " p=" + format_double(record.refresh_period.value);
    line += " rep=" + std::to_string(record.repetition);
    line += " fail=" + std::to_string(record.scan.failed_cells);
    line += " words=" + std::to_string(record.scan.affected_words);
    line += " ce=" + std::to_string(record.scan.ce_words);
    line += " ue=" + std::to_string(record.scan.ue_words);
    line += " sdc=" + std::to_string(record.scan.sdc_words);
    line += " bits=" + std::to_string(record.scan.scanned_bits);
    line += " banks=";
    for (std::size_t b = 0; b < record.scan.per_bank_failures.size(); ++b) {
        line += (b > 0 ? "+" : "") +
                std::to_string(record.scan.per_bank_failures[b]);
    }
    line += " regdev=" + format_double(record.regulation_deviation_c);
    line += " outcome=";
    line += to_string(record.outcome);
    return line;
}

bool parse_log_line(std::string_view line, dram_run_record& record) {
    if (!line.starts_with(dram_prefix)) {
        return false;
    }
    dram_run_record parsed;
    bool have_pattern = false;
    bool have_temperature = false;
    bool have_outcome = false;

    const bool well_formed = for_each_field(
        line, [&](std::string_view key, std::string_view value) {
            if (key == "dram") {
                if (!parse_pattern(value, parsed.pattern)) {
                    return false;
                }
                have_pattern = true;
            } else if (key == "t") {
                double t = 0.0;
                if (!parse_double(value, t)) {
                    return false;
                }
                parsed.temperature = celsius{t};
                have_temperature = true;
            } else if (key == "p") {
                double p = 0.0;
                if (!parse_double(value, p)) {
                    return false;
                }
                parsed.refresh_period = milliseconds{p};
            } else if (key == "rep") {
                if (!parse_int(value, parsed.repetition)) {
                    return false;
                }
            } else if (key == "fail") {
                if (!parse_u64(value, parsed.scan.failed_cells)) {
                    return false;
                }
            } else if (key == "words") {
                if (!parse_u64(value, parsed.scan.affected_words)) {
                    return false;
                }
            } else if (key == "ce") {
                if (!parse_u64(value, parsed.scan.ce_words)) {
                    return false;
                }
            } else if (key == "ue") {
                if (!parse_u64(value, parsed.scan.ue_words)) {
                    return false;
                }
            } else if (key == "sdc") {
                if (!parse_u64(value, parsed.scan.sdc_words)) {
                    return false;
                }
            } else if (key == "bits") {
                if (!parse_i64(value, parsed.scan.scanned_bits)) {
                    return false;
                }
            } else if (key == "banks") {
                std::size_t start = 0;
                std::size_t bank = 0;
                while (start <= value.size()) {
                    std::size_t plus = value.find('+', start);
                    if (plus == std::string_view::npos) {
                        plus = value.size();
                    }
                    if (bank >= parsed.scan.per_bank_failures.size()) {
                        return false;
                    }
                    if (!parse_u64(value.substr(start, plus - start),
                                   parsed.scan.per_bank_failures[bank])) {
                        return false;
                    }
                    ++bank;
                    start = plus + 1;
                    if (plus == value.size()) {
                        break;
                    }
                }
                if (bank != parsed.scan.per_bank_failures.size()) {
                    return false;
                }
            } else if (key == "regdev") {
                if (!parse_double(value,
                                  parsed.regulation_deviation_c)) {
                    return false;
                }
            } else if (key == "outcome") {
                if (!parse_dram_outcome(value, parsed.outcome)) {
                    return false;
                }
                have_outcome = true;
            } else {
                return false; // unknown key: treat the line as corrupt
            }
            return true;
        });

    if (!well_formed || !have_pattern || !have_temperature ||
        !have_outcome) {
        return false;
    }
    record = std::move(parsed);
    return true;
}

void write_raw_log(std::ostream& out, const campaign_result& result) {
    for (const run_record& record : result.records) {
        out << to_log_line(record) << '\n';
    }
}

void write_raw_log(std::ostream& out, const dram_campaign_result& result) {
    for (const dram_run_record& record : result.records) {
        out << to_log_line(record) << '\n';
    }
}

std::vector<run_record> parse_raw_log(std::istream& in,
                                      std::size_t* skipped) {
    std::vector<run_record> records;
    std::size_t skipped_lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        run_record record;
        if (parse_log_line(line, record)) {
            records.push_back(std::move(record));
        } else if (!line.empty()) {
            ++skipped_lines;
        }
    }
    if (skipped != nullptr) {
        *skipped = skipped_lines;
    }
    return records;
}

std::vector<dram_run_record> parse_dram_raw_log(std::istream& in,
                                                std::size_t* skipped) {
    std::vector<dram_run_record> records;
    std::size_t skipped_lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        dram_run_record record;
        if (parse_log_line(line, record)) {
            records.push_back(std::move(record));
        } else if (!line.empty()) {
            ++skipped_lines;
        }
    }
    if (skipped != nullptr) {
        *skipped = skipped_lines;
    }
    return records;
}

} // namespace gb

// Execution phase of the characterization framework: runs campaigns against
// a chip model, emulating the watchdog/reset path of the real rig (a crashed
// or hung run trips the watchdog monitor, the board is power-cycled, and the
// campaign continues with the next run).
//
// Also provides the two search procedures the paper's results are built on:
//   * find_vmin: descend the supply in fixed steps, running N repetitions at
//     each point; the safe Vmin is the lowest voltage at which every
//     repetition completes without disruption (ECC-corrected errors do not
//     disrupt).
//   * profile caching: kernels are executed once per (kernel, frequency) and
//     the traces reused across the campaign's thousands of evaluations.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chip/chip_model.hpp"
#include "harness/campaign.hpp"
#include "isa/kernel.hpp"
#include "isa/pipeline.hpp"
#include "util/rng.hpp"

namespace gb {

/// A multi-program assignment: which kernel runs on which core.
struct program_assignment {
    int core = 0;
    const kernel* program = nullptr;
};

class characterization_framework {
public:
    characterization_framework(const chip_model& chip, std::uint64_t seed);

    /// Execute a full campaign of one kernel.
    [[nodiscard]] campaign_result run_campaign(const campaign_spec& spec,
                                               const kernel& program);

    /// One run of a heterogeneous assignment (e.g. the Fig 5 8-benchmark
    /// mix) at a setup; per-core frequency comes from `frequencies[pmd]`.
    [[nodiscard]] run_evaluation run_mix(
        const std::vector<program_assignment>& programs,
        millivolts voltage, const std::array<megahertz, 4>& pmd_frequency);

    /// Safe Vmin search for a kernel on given cores at one frequency.
    [[nodiscard]] millivolts find_vmin(const kernel& program,
                                       const std::vector<int>& cores,
                                       megahertz frequency, int repetitions,
                                       millivolts step = millivolts{5.0});

    /// Vmin analysis (deterministic, no repetition noise) of a mix.
    [[nodiscard]] vmin_analysis analyze_mix(
        const std::vector<program_assignment>& programs,
        const std::array<megahertz, 4>& pmd_frequency);

    /// Cached execution profile of a kernel at a frequency.
    [[nodiscard]] const execution_profile& profile_of(const kernel& program,
                                                      megahertz frequency);

    [[nodiscard]] std::uint64_t watchdog_resets() const {
        return watchdog_resets_;
    }
    [[nodiscard]] const chip_model& chip() const { return chip_; }

private:
    [[nodiscard]] std::vector<core_assignment> make_assignments(
        const std::vector<program_assignment>& programs,
        const std::array<megahertz, 4>& pmd_frequency);

    const chip_model& chip_;
    rng rng_;
    std::uint64_t next_phase_seed_ = 1;
    std::uint64_t watchdog_resets_ = 0;
    /// Keyed by (kernel name, frequency in MHz); profiles are immutable once
    /// created so references stay valid for the framework's lifetime.
    std::map<std::pair<std::string, long>,
             std::unique_ptr<execution_profile>>
        profiles_;
};

} // namespace gb

// Execution phase of the characterization framework: runs campaigns against
// a chip model, emulating the watchdog/reset path of the real rig (a crashed
// or hung run trips the watchdog monitor, the board is power-cycled, and the
// campaign continues with the next run).
//
// Campaigns and Vmin searches enumerate their sweep grids into flat task
// lists and run on the deterministic parallel execution engine
// (execution_engine.hpp): every (setup, repetition) cell draws its noise
// from a task-local RNG seeded from (framework seed, benchmark, cell
// index), so results are bitwise identical for any worker count.
//
// Also provides the two search procedures the paper's results are built on:
//   * find_vmin: descend the supply in fixed steps, running N repetitions at
//     each point; the safe Vmin is the lowest voltage at which every
//     repetition completes without disruption (ECC-corrected errors do not
//     disrupt).
//   * profile caching: kernels are executed once per (kernel, frequency) and
//     the traces reused across the campaign's thousands of evaluations.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "chip/chip_model.hpp"
#include "harness/campaign.hpp"
#include "harness/execution_engine.hpp"
#include "isa/kernel.hpp"
#include "isa/pipeline.hpp"
#include "util/rng.hpp"

namespace gb {

class campaign_journal;
class fault_plan;

/// A multi-program assignment: which kernel runs on which core.
struct program_assignment {
    int core = 0;
    const kernel* program = nullptr;
};

/// Rig I/O for a CPU campaign: optional deterministic fault injection and
/// crash-safe journaling of completed run records (journal.hpp).
struct campaign_io {
    const fault_plan* faults = nullptr;
    campaign_journal* journal = nullptr;
    int retry_budget = 3;
    double backoff_base_s = 0.0;
    /// Deterministic observability sinks, forwarded to the execution
    /// engine (trace/trace.hpp); null disables.
    tracer* trace = nullptr;
    metrics_registry* metrics = nullptr;
    /// Deterministic time-series sink, forwarded to the execution engine
    /// (timeseries/timeseries.hpp); null disables.
    timeline_recorder* timeline = nullptr;
    /// Live-status heartbeat file, forwarded to the execution engine
    /// (status.hpp); empty disables.
    std::string status_path;
};

class characterization_framework {
public:
    characterization_framework(const chip_model& chip, std::uint64_t seed);

    /// Execute a full campaign of one kernel.  The (setup x repetition)
    /// grid runs on `spec.workers` engine workers; record order matches the
    /// serial nested-loop order regardless of thread count.
    [[nodiscard]] campaign_result run_campaign(const campaign_spec& spec,
                                               const kernel& program);
    /// Same, with rig faults injected and/or records journaled.  A task
    /// whose rig retry budget is exhausted records run_outcome::aborted_rig
    /// (the campaign never throws for injected faults).
    [[nodiscard]] campaign_result run_campaign(const campaign_spec& spec,
                                               const kernel& program,
                                               const campaign_io& io);

    /// Resume a killed campaign from its journal: completed task indices
    /// are restored from `journal_in` (corrupt lines skipped and re-run)
    /// and only the remainder executes.  With the same framework seed and
    /// spec, records and CSV are bitwise identical to the uninterrupted
    /// campaign at any worker count.
    [[nodiscard]] campaign_result resume_campaign(const campaign_spec& spec,
                                                  const kernel& program,
                                                  std::istream& journal_in,
                                                  const campaign_io& io = {});

    /// One run of a heterogeneous assignment (e.g. the Fig 5 8-benchmark
    /// mix) at a setup; per-core frequency comes from `frequencies[pmd]`.
    [[nodiscard]] run_evaluation run_mix(
        const std::vector<program_assignment>& programs,
        millivolts voltage, const std::array<megahertz, 4>& pmd_frequency);

    /// Safe Vmin search for a kernel on given cores at one frequency.  The
    /// voltage ladder is evaluated in fixed-size speculative chunks of
    /// engine tasks; each (voltage, repetition) cell is independently
    /// seeded, so the measured Vmin is identical for any worker count.
    [[nodiscard]] millivolts find_vmin(const kernel& program,
                                       const std::vector<int>& cores,
                                       megahertz frequency, int repetitions,
                                       millivolts step = millivolts{5.0},
                                       int workers = 0);

    /// Vmin analysis (deterministic, no repetition noise) of a mix.
    [[nodiscard]] vmin_analysis analyze_mix(
        const std::vector<program_assignment>& programs,
        const std::array<megahertz, 4>& pmd_frequency);

    /// Cached execution profile of a kernel at a frequency.  Safe to call
    /// concurrently: the cache is a read-mostly map with per-entry
    /// single-initialization (one thread profiles, the rest wait).
    [[nodiscard]] const execution_profile& profile_of(const kernel& program,
                                                      megahertz frequency);

    [[nodiscard]] std::uint64_t watchdog_resets() const {
        return watchdog_resets_;
    }
    [[nodiscard]] const chip_model& chip() const { return chip_; }

private:
    /// A profile slot is created under the map lock, then initialized
    /// exactly once outside it; the entry address is stable for the
    /// framework's lifetime so returned references stay valid.
    struct profile_entry {
        std::once_flag once;
        std::unique_ptr<execution_profile> profile;
    };

    [[nodiscard]] std::vector<core_assignment> make_assignments(
        const std::vector<program_assignment>& programs,
        const std::array<megahertz, 4>& pmd_frequency);

    [[nodiscard]] campaign_result run_campaign_impl(
        const campaign_spec& spec, const kernel& program,
        const campaign_io& io,
        const std::map<std::size_t, run_record>* restored);

    const chip_model& chip_;
    std::uint64_t seed_;
    rng rng_;
    std::uint64_t next_phase_seed_ = 1;
    std::uint64_t watchdog_resets_ = 0;
    /// Keyed by (kernel name, frequency in MHz); profiles are immutable once
    /// created so references stay valid for the framework's lifetime.
    std::shared_mutex profiles_mutex_;
    std::map<std::pair<std::string, long>, std::unique_ptr<profile_entry>>
        profiles_;
};

} // namespace gb

// Deterministic rig-fault model for the characterization framework.
//
// The paper's rig is hostile: boards hang until the watchdog monitor
// power-cycles them, crash mid-run, sometimes fail to come back when the
// power switch is actuated, and stream raw-log lines over a serial link
// that a dying machine truncates or garbles.  A `fault_plan` reproduces
// all of that *deterministically*: every decision is derived with
// splitmix64 from (plan seed, task index, attempt), so a faulty campaign
// is exactly as reproducible as a healthy one -- identical for any worker
// count, and replayable for debugging by re-running with the same seed.
//
// The execution engine consumes the plan per task attempt (hang / crash /
// power-switch faults trigger bounded retry with exponential backoff, then
// an `aborted_rig` outcome); the campaign journal consumes it per completed
// record (log-corruption faults mangle the journal line the way a dying
// UART does); the DRAM campaign runner consumes it per DIMM (thermocouple
// mounting faults routed into the thermal testbed's existing hook).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/units.hpp"

namespace gb {

/// What the rig does to one task attempt.
enum class rig_fault : std::uint8_t {
    none,                ///< the run executes and reports normally
    hang_until_watchdog, ///< board wedges; watchdog fires, board reboots
    board_crash,         ///< board dies mid-run; results of the run are lost
    power_switch_failure ///< actuation fails; board never starts the run
};

[[nodiscard]] std::string_view to_string(rig_fault fault);

struct fault_plan_config {
    /// Root of every per-(task, attempt) fault decision.  Campaigns pass
    /// their base seed so faulty runs reproduce with the campaign.
    std::uint64_t seed = 0;

    /// Per-attempt probability of each run fault; their sum must stay
    /// within [0, 1].
    double hang_rate = 0.0;
    double crash_rate = 0.0;
    double power_switch_rate = 0.0;

    /// Per-completed-task probability that the record's raw-log line is
    /// truncated/garbled in the journal (noticed only at parse time, like
    /// on the real rig: the run itself is unaffected).
    double log_corruption_rate = 0.0;

    /// Per-DIMM probability of a thermocouple mounting fault, and the
    /// sensor offset such a fault applies (routed into
    /// thermal_testbed::inject_thermocouple_fault by the DRAM runner).
    double thermocouple_fault_rate = 0.0;
    celsius thermocouple_offset{-6.0};

    /// Simulated rig recovery times, charged to
    /// execution_stats::rig_downtime_s (no real sleeping).
    double watchdog_timeout_s = 10.0; ///< hang detection latency
    double reboot_s = 30.0;           ///< power-cycle + boot after hang/crash
    double power_cycle_retry_s = 5.0; ///< re-actuating a stuck power switch

    void validate() const;
};

class fault_plan {
public:
    explicit fault_plan(fault_plan_config config);

    /// Fault injected into attempt `attempt` of task `task_index`.
    /// Deterministic: depends only on (seed, task_index, attempt).
    [[nodiscard]] rig_fault draw(std::uint64_t task_index,
                                 int attempt) const;

    /// Whether the completed task's journal line gets mangled.
    [[nodiscard]] bool corrupts_log(std::uint64_t task_index) const;

    /// Deterministically mangle a raw-log line the way the dying serial
    /// link does: truncate into the first half of the line and smear
    /// garbage over the tail.  The result never parses as a well-formed
    /// record, so the tolerant parser skips it instead of resurrecting a
    /// wrong one.
    [[nodiscard]] std::string corrupt_line(std::uint64_t task_index,
                                           std::string_view line) const;

    /// Thermocouple mounting-fault offset for a DIMM; 0 C means healthy.
    [[nodiscard]] celsius thermocouple_offset(int dimm) const;

    /// Simulated seconds the rig loses recovering from one fault.
    [[nodiscard]] double downtime_for(rig_fault fault) const;

    [[nodiscard]] const fault_plan_config& config() const { return config_; }

private:
    fault_plan_config config_;
};

/// Convenience plan: `fault_rate` split evenly across the three run faults,
/// with the same rate of journal-line corruption.
[[nodiscard]] fault_plan make_uniform_fault_plan(std::uint64_t seed,
                                                 double fault_rate);

} // namespace gb

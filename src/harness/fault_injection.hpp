// Deterministic rig-fault model for the characterization framework.
//
// The paper's rig is hostile: boards hang until the watchdog monitor
// power-cycles them, crash mid-run, sometimes fail to come back when the
// power switch is actuated, and stream raw-log lines over a serial link
// that a dying machine truncates or garbles.  A `fault_plan` reproduces
// all of that *deterministically*: every decision is derived with
// splitmix64 from (plan seed, task index, attempt), so a faulty campaign
// is exactly as reproducible as a healthy one -- identical for any worker
// count, and replayable for debugging by re-running with the same seed.
//
// The execution engine consumes the plan per task attempt (hang / crash /
// power-switch faults trigger bounded retry with exponential backoff, then
// an `aborted_rig` outcome); the campaign journal consumes it per completed
// record (log-corruption faults mangle the journal line the way a dying
// UART does); the DRAM campaign runner consumes it per DIMM (thermocouple
// mounting faults routed into the thermal testbed's existing hook).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace gb {

/// What the rig does to one task attempt.
enum class rig_fault : std::uint8_t {
    none,                ///< the run executes and reports normally
    hang_until_watchdog, ///< board wedges; watchdog fires, board reboots
    board_crash,         ///< board dies mid-run; results of the run are lost
    power_switch_failure ///< actuation fails; board never starts the run
};

[[nodiscard]] std::string_view to_string(rig_fault fault);

struct fault_plan_config {
    /// Root of every per-(task, attempt) fault decision.  Campaigns pass
    /// their base seed so faulty runs reproduce with the campaign.
    std::uint64_t seed = 0;

    /// Per-attempt probability of each run fault; their sum must stay
    /// within [0, 1].
    double hang_rate = 0.0;
    double crash_rate = 0.0;
    double power_switch_rate = 0.0;

    /// Per-completed-task probability that the record's raw-log line is
    /// truncated/garbled in the journal (noticed only at parse time, like
    /// on the real rig: the run itself is unaffected).
    double log_corruption_rate = 0.0;

    /// Per-DIMM probability of a thermocouple mounting fault, and the
    /// sensor offset such a fault applies (routed into
    /// thermal_testbed::inject_thermocouple_fault by the DRAM runner).
    double thermocouple_fault_rate = 0.0;
    celsius thermocouple_offset{-6.0};

    /// Simulated rig recovery times, charged to
    /// execution_stats::rig_downtime_s (no real sleeping).
    double watchdog_timeout_s = 10.0; ///< hang detection latency
    double reboot_s = 30.0;           ///< power-cycle + boot after hang/crash
    double power_cycle_retry_s = 5.0; ///< re-actuating a stuck power switch

    void validate() const;
};

class fault_plan {
public:
    explicit fault_plan(fault_plan_config config);

    /// Fault injected into attempt `attempt` of task `task_index`.
    /// Deterministic: depends only on (seed, task_index, attempt).
    [[nodiscard]] rig_fault draw(std::uint64_t task_index,
                                 int attempt) const;

    /// Whether the completed task's journal line gets mangled.
    [[nodiscard]] bool corrupts_log(std::uint64_t task_index) const;

    /// Deterministically mangle a raw-log line the way the dying serial
    /// link does: truncate into the first half of the line and smear
    /// garbage over the tail.  The result never parses as a well-formed
    /// record, so the tolerant parser skips it instead of resurrecting a
    /// wrong one.
    [[nodiscard]] std::string corrupt_line(std::uint64_t task_index,
                                           std::string_view line) const;

    /// Thermocouple mounting-fault offset for a DIMM; 0 C means healthy.
    [[nodiscard]] celsius thermocouple_offset(int dimm) const;

    /// Simulated seconds the rig loses recovering from one fault.
    [[nodiscard]] double downtime_for(rig_fault fault) const;

    [[nodiscard]] const fault_plan_config& config() const { return config_; }

private:
    fault_plan_config config_;
};

/// Convenience plan: `fault_rate` split evenly across the three run faults,
/// with the same rate of journal-line corruption.
[[nodiscard]] fault_plan make_uniform_fault_plan(std::uint64_t seed,
                                                 double fault_rate);

// ---------------------------------------------------------------------------
// Silent data corruption (SDC)
//
// The rig faults above are *loud*: a hang trips the watchdog, a crash
// loses the run, a mangled journal line fails to parse.  The paper's
// scarier failure mode is silent -- a rig operating below Vmin or past
// tREFP returns a plausible-but-wrong measurement with no fault signal at
// all (the Scrooge-Attack observation).  An `sdc_plan` injects exactly
// that: a one-shot corruption of a completed probe's *values*, drawn with
// the same (seed, site, hit) purity as fault_plan/chaos_plan so an SDC
// campaign reproduces bitwise at any worker or shard count.  The defense
// lives in harness/integrity + fleet/service (quorum voting, chain-hashed
// journal, audit sampling); this type only supplies the attack.

/// What a Byzantine rig silently falsifies in one probe result.
enum class sdc_site : std::uint8_t {
    vmin_flip,    ///< one mantissa bit of the Vmin requirement flipped
    weak_drop,    ///< weak/erroneous cell count under-reported
    weak_phantom, ///< weak/erroneous cell count over-reported
    power_scale,  ///< power reading scaled by a few permille
};

[[nodiscard]] std::string_view to_string(sdc_site site);
[[nodiscard]] bool sdc_site_from_string(std::string_view text,
                                        sdc_site& site);

/// One armed corruption.  Each trigger fires at most once per plan, on the
/// `at`-th execution opportunity (1-based, counted across all sites).
struct sdc_trigger {
    sdc_site site = sdc_site::vmin_flip;
    std::uint64_t at = 1;
    /// Site-specific corruption parameter (bit index, cell delta, permille
    /// scale).  `param_auto` derives one from the plan seed and hit.
    static constexpr std::uint64_t param_auto = ~0ULL;
    std::uint64_t param = param_auto;
};

struct sdc_plan_config {
    /// Root of the deterministic parameter derivation.
    std::uint64_t seed = 0;
    std::vector<sdc_trigger> triggers;
};

/// A corruption decision: falsify the value at `site` with `param`.
struct sdc_corruption {
    sdc_site site = sdc_site::vmin_flip;
    std::uint64_t param = 0;
};

class sdc_plan {
public:
    explicit sdc_plan(sdc_plan_config config);

    /// One execution opportunity (a replica run, an audit re-probe, a
    /// repair re-execution).  Engaged when an armed trigger's `at` equals
    /// this opportunity's 1-based index; consumed triggers never re-fire.
    /// Thread-safe, but deterministic callers draw at serial points only.
    [[nodiscard]] std::optional<sdc_corruption> on_execution();

    /// Corruptions handed out so far.
    [[nodiscard]] std::uint64_t injected() const;

    [[nodiscard]] const sdc_plan_config& config() const { return config_; }

    // Pure scalar appliers, usable by any result type without this header
    // knowing the fleet's probe_result.  Each is guaranteed to *change*
    // the value (an SDC that corrupts into the truth is no test) and to
    // keep it finite.

    /// Flip mantissa bit `param % 52` of a finite double (IEEE-754 binary64:
    /// mantissa flips never touch the exponent or sign, so the value stays
    /// finite and changes by a bounded relative amount).
    [[nodiscard]] static double corrupt_vmin(double value_mv,
                                             std::uint64_t param);
    /// Drop (weak_drop) or invent (weak_phantom) `1 + param % 3` cells.
    /// No clamping: under-reporting an empty count goes negative rather
    /// than silently corrupting into the truth.
    [[nodiscard]] static long long corrupt_weak_cells(long long count,
                                                      sdc_site site,
                                                      std::uint64_t param);
    /// Scale a power reading by `(1000 ± (1 + param % 100)) / 1000` --
    /// a few permille, the size of a miscalibrated shunt.
    [[nodiscard]] static double corrupt_power(double watts,
                                              std::uint64_t param);

private:
    sdc_plan_config config_;
    mutable std::mutex mutex_;
    std::vector<bool> fired_flags_;
    std::uint64_t opportunities_ = 0;
    std::uint64_t injected_ = 0;
};

/// Parse a CLI SDC spec: comma-separated `site@at[/param]` triggers, e.g.
/// `vmin_flip@5,power_scale@12/37`.  Same grammar and diagnostics contract
/// as parse_chaos_spec: false with the offending token quoted in `error`.
[[nodiscard]] bool parse_sdc_spec(std::string_view spec,
                                  sdc_plan_config& config,
                                  std::string& error);

} // namespace gb

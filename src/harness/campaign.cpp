#include "harness/campaign.hpp"

#include <ostream>
#include <sstream>

#include "util/csv.hpp"

namespace gb {

std::uint64_t classification_summary::total() const {
    return ok + corrected + uncorrectable + sdc + crash + hang + aborted;
}

std::uint64_t classification_summary::disruptions() const {
    return uncorrectable + sdc + crash + hang + aborted;
}

namespace {

void count_outcome(classification_summary& summary, run_outcome outcome) {
    switch (outcome) {
    case run_outcome::ok: ++summary.ok; break;
    case run_outcome::corrected_error: ++summary.corrected; break;
    case run_outcome::uncorrectable_error: ++summary.uncorrectable; break;
    case run_outcome::silent_data_corruption: ++summary.sdc; break;
    case run_outcome::crash: ++summary.crash; break;
    case run_outcome::hang: ++summary.hang; break;
    case run_outcome::aborted_rig: ++summary.aborted; break;
    }
}

} // namespace

classification_summary campaign_result::summarize() const {
    classification_summary summary;
    for (const run_record& record : records) {
        count_outcome(summary, record.outcome);
    }
    return summary;
}

classification_summary campaign_result::summarize_at(millivolts v) const {
    classification_summary summary;
    for (const run_record& record : records) {
        if (record.voltage == v) {
            count_outcome(summary, record.outcome);
        }
    }
    return summary;
}

void write_campaign_csv(std::ostream& out, const campaign_result& result) {
    csv_writer writer(out, {"benchmark", "voltage_mv", "frequency_mhz",
                            "cores", "repetition", "outcome", "margin_mv",
                            "failure_path", "watchdog_reset"});
    for (const run_record& record : result.records) {
        std::ostringstream cores;
        for (std::size_t i = 0; i < record.cores.size(); ++i) {
            cores << (i > 0 ? "+" : "") << record.cores[i];
        }
        writer.write_row({record.benchmark,
                          csv_number(record.voltage.value, 0),
                          csv_number(record.frequency.value, 0), cores.str(),
                          std::to_string(record.repetition),
                          std::string(to_string(record.outcome)),
                          csv_number(record.margin.value, 1),
                          std::string(to_string(record.path)),
                          record.watchdog_reset ? "1" : "0"});
    }
}

} // namespace gb

#include "harness/timeseries/timeseries.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <ostream>

#include "harness/timeseries/alerts.hpp"
#include "util/contracts.hpp"

namespace gb {

namespace {

/// Shortest round-trip double: the journal/metrics wire convention, so
/// replayed values compare bit-equal.
std::string format_double(double value) {
    std::array<char, 32> buffer{};
    const auto [ptr, ec] =
        std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
    GB_ENSURES(ec == std::errc{});
    return std::string(buffer.data(), ptr);
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

/// Default evicted-histogram ladder: decades of milli-units, covering
/// health counters (units) through Vmin series (~10^6 milli-mV).
std::vector<std::uint64_t> default_evict_bounds() {
    return {1,       10,        100,        1000,
            10000,   100000,    1000000,    10000000};
}

/// Milli-unit scaling for the evicted histogram: integer buckets keep the
/// downsampling exactly associative.  Negative values clamp to zero (the
/// ladder is one-sided; series that go negative keep full fidelity in the
/// ring and min/max).
std::uint64_t milli_units(double value) {
    if (!(value > 0.0)) {
        return 0;
    }
    const double scaled = std::round(value * 1000.0);
    if (scaled >= 18446744073709549568.0) { // 2^64 rounded down a ulp
        return ~0ULL;
    }
    return static_cast<std::uint64_t>(scaled);
}

void fold_evicted(histogram_snapshot& histogram, double value) {
    const std::uint64_t scaled = milli_units(value);
    std::size_t bucket = histogram.bounds.size(); // overflow by default
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
        if (scaled <= histogram.bounds[i]) {
            bucket = i;
            break;
        }
    }
    histogram.counts[bucket] += 1;
    histogram.count += 1;
    histogram.sum += scaled;
}

} // namespace

std::vector<ts_sample> series_snapshot::tail(std::size_t window) const {
    const std::size_t n = std::min(window, samples.size());
    return {samples.end() - static_cast<std::ptrdiff_t>(n), samples.end()};
}

timeline_recorder::timeline_recorder(timeseries_config config)
    : config_(std::move(config)) {
    GB_EXPECTS(config_.capacity > 0);
    if (config_.evict_bounds.empty()) {
        config_.evict_bounds = default_evict_bounds();
    }
    for (std::size_t i = 1; i < config_.evict_bounds.size(); ++i) {
        GB_EXPECTS(config_.evict_bounds[i - 1] < config_.evict_bounds[i]);
    }
}

std::uint64_t timeline_recorder::advance() { return ++next_tick_; }

void timeline_recorder::observe_tick(std::uint64_t tick) {
    next_tick_ = std::max(next_tick_, tick);
}

void timeline_recorder::append(std::string_view series, std::uint64_t tick,
                               double value) {
    GB_EXPECTS(!series.empty());
    GB_EXPECTS(series.find(' ') == std::string_view::npos);
    auto it = series_.find(series);
    if (it == series_.end()) {
        series_data fresh;
        fresh.evicted.bounds = config_.evict_bounds;
        fresh.evicted.counts.assign(config_.evict_bounds.size() + 1, 0);
        it = series_.emplace(std::string(series), std::move(fresh)).first;
    }
    series_data& data = it->second;
    if (data.count == 0) {
        data.min = value;
        data.max = value;
    } else {
        data.min = std::min(data.min, value);
        data.max = std::max(data.max, value);
    }
    data.last = value;
    ++data.count;
    ++samples_;
    if (data.ring.size() == config_.capacity) {
        fold_evicted(data.evicted, data.ring.front().value);
        data.ring.pop_front();
    }
    data.ring.push_back({tick, value});
    observe_tick(tick);
}

std::vector<series_snapshot> timeline_recorder::snapshot() const {
    std::vector<series_snapshot> out;
    out.reserve(series_.size());
    for (const auto& [name, data] : series_) {
        series_snapshot view;
        view.name = name;
        view.samples.assign(data.ring.begin(), data.ring.end());
        view.count = data.count;
        view.min = data.min;
        view.max = data.max;
        view.last = data.last;
        view.evicted = data.evicted;
        out.push_back(std::move(view));
    }
    return out; // std::map iteration is already name-sorted
}

void write_timeline_json(std::ostream& out, const timeline_recorder& recorder,
                         const alert_engine* alerts) {
    const std::vector<series_snapshot> series = recorder.snapshot();
    out << "{\n  \"series\": {";
    for (std::size_t i = 0; i < series.size(); ++i) {
        const series_snapshot& s = series[i];
        out << (i > 0 ? "," : "") << "\n    \"" << json_escape(s.name)
            << "\": {\"count\": " << s.count
            << ", \"min\": " << format_double(s.min)
            << ", \"max\": " << format_double(s.max)
            << ", \"last\": " << format_double(s.last) << ", \"samples\": [";
        for (std::size_t j = 0; j < s.samples.size(); ++j) {
            out << (j > 0 ? "," : "") << '[' << s.samples[j].tick << ','
                << format_double(s.samples[j].value) << ']';
        }
        out << "], \"evicted\": {\"bounds\": [";
        for (std::size_t j = 0; j < s.evicted.bounds.size(); ++j) {
            out << (j > 0 ? "," : "") << s.evicted.bounds[j];
        }
        out << "], \"counts\": [";
        for (std::size_t j = 0; j < s.evicted.counts.size(); ++j) {
            out << (j > 0 ? "," : "") << s.evicted.counts[j];
        }
        out << "], \"count\": " << s.evicted.count
            << ", \"sum\": " << s.evicted.sum << "}}";
    }
    out << (series.empty() ? "" : "\n  ") << "},\n  \"alerts\": {\"rules\": "
        << (alerts != nullptr ? alerts->rules().size() : 0)
        << ", \"firing\": [";
    if (alerts != nullptr) {
        const std::vector<std::string> firing = alerts->firing();
        for (std::size_t i = 0; i < firing.size(); ++i) {
            out << (i > 0 ? "," : "") << '"' << json_escape(firing[i]) << '"';
        }
    }
    out << "], \"events\": [";
    if (alerts != nullptr) {
        const auto& events = alerts->events();
        for (std::size_t i = 0; i < events.size(); ++i) {
            const alert_event& event = events[i];
            out << (i > 0 ? "," : "") << "\n    {\"tick\": " << event.tick
                << ", \"rule\": \"" << json_escape(event.rule)
                << "\", \"series\": \"" << json_escape(event.series)
                << "\", \"state\": \""
                << (event.firing ? "firing" : "resolved")
                << "\", \"value\": " << format_double(event.value) << '}';
        }
        if (!events.empty()) {
            out << "\n  ";
        }
    }
    out << "]}\n}\n";
}

} // namespace gb

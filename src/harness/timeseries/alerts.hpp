// Rule-driven alert engine over the deterministic time-series layer.
//
// Related work argues guardband characterization must be *continuous*
// (Papadimitriou et al.) because safe margins move with long-running
// operating conditions (Nascimento et al.).  This module closes that loop:
// small declarative rules watch the recorder's series -- per-cohort Vmin,
// `health.*`, `integrity.*`, cache hit-rate, degraded-cohort counts -- and
// fire deterministic alert events that ride the fleet journal and the
// `timeline.json` artifact.
//
// Rule spec grammar (one rule per line, '#' comments, blank lines
// ignored):
//
//   alert <name> <series> above <value>
//   alert <name> <series> below <value>
//   alert <name> <series> delta <value> window <N>
//   alert <name> <series> slope <value> window <N>
//
// `<series>` is an exact series name or a '*'-terminated prefix wildcard
// (`vmin.*`).  `above`/`below` compare the latest sample (fires when
// last >= / <= value).  `delta` measures last - first over the trailing
// window; `slope` is the least-squares slope over the trailing window
// (value per sample step).  Both fire when the signed measure reaches the
// threshold: measure >= value for value >= 0, measure <= value for
// value < 0 -- so `delta 5 window 4` alerts on a rise and `delta -5
// window 4` on a drop.  Parse errors carry path:line diagnostics and the
// CLI maps them to exit 2.
//
// Evaluation is a pure function of the series content plus the previous
// firing set, and both inputs replay from the journal, so a restarted
// daemon's alert state converges bitwise with an uninterrupted run's.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "harness/timeseries/timeseries.hpp"

namespace gb {

struct alert_rule {
    enum class op_kind : std::uint8_t { above, below, delta, slope };

    std::string name;
    std::string series; ///< exact name or '*'-terminated prefix
    op_kind op = op_kind::above;
    double threshold = 0.0;
    std::size_t window = 0; ///< delta/slope only (>= 2)

    /// True when `series_name` is watched by this rule.
    [[nodiscard]] bool matches(std::string_view series_name) const;
};

[[nodiscard]] std::string_view to_string(alert_rule::op_kind op);

/// Parse a rule spec.  On failure returns nullopt with a one-line
/// `<path>:<line>: <message>` diagnostic in `error`.
[[nodiscard]] std::optional<std::vector<alert_rule>> parse_alert_rules(
    std::string_view text, std::string_view path, std::string& error);

/// Read and parse a rule-spec file.
[[nodiscard]] std::optional<std::vector<alert_rule>> load_alert_rules_file(
    const std::string& path, std::string& error);

/// One firing/resolved transition of a (rule, series) pair.
struct alert_event {
    std::uint64_t tick = 0;
    std::string rule;
    std::string series;
    bool firing = false; ///< false = resolved
    double value = 0.0;  ///< the measure at the transition
};

/// A stateless evaluation result: a (rule, series) pair currently over
/// threshold, with its measure.
struct alert_match {
    const alert_rule* rule = nullptr;
    std::string series;
    double value = 0.0;
};

/// Evaluate rules over a name-sorted series view with no transition
/// state -- the `gbreport alerts` engine.  Matches come back in (rule
/// order, series order): deterministic for deterministic inputs.
[[nodiscard]] std::vector<alert_match> evaluate_alert_rules(
    std::span<const alert_rule> rules,
    const std::vector<series_snapshot>& series);

class alert_engine {
public:
    explicit alert_engine(std::vector<alert_rule> rules = {});

    [[nodiscard]] const std::vector<alert_rule>& rules() const {
        return rules_;
    }

    /// Evaluate every rule over the series view at `tick`; transitions
    /// against the previous firing set are appended to the event history
    /// and returned.  Serial call sites only.
    std::vector<alert_event> evaluate(
        const std::vector<series_snapshot>& series, std::uint64_t tick);

    /// Warm replay of a journaled event: restores firing state and event
    /// history without evaluating.
    void replay(const alert_event& event);

    /// Currently-firing pairs as sorted unique "rule:series" labels.
    [[nodiscard]] std::vector<std::string> firing() const;
    [[nodiscard]] std::size_t firing_count() const { return firing_.size(); }
    /// Every transition observed (or replayed), in order.
    [[nodiscard]] const std::vector<alert_event>& events() const {
        return events_;
    }

private:
    std::vector<alert_rule> rules_;
    /// Firing keys "rule\x1fseries", kept sorted.
    std::vector<std::string> firing_;
    std::vector<alert_event> events_;
};

} // namespace gb

#include "harness/timeseries/alerts.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "util/contracts.hpp"

namespace gb {

namespace {

constexpr char firing_key_sep = '\x1f';

std::string firing_key(std::string_view rule, std::string_view series) {
    std::string key(rule);
    key += firing_key_sep;
    key += series;
    return key;
}

/// Split one spec line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view line) {
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t')) {
            ++pos;
        }
        std::size_t end = pos;
        while (end < line.size() && line[end] != ' ' && line[end] != '\t') {
            ++end;
        }
        if (end > pos) {
            tokens.push_back(line.substr(pos, end - pos));
        }
        pos = end;
    }
    return tokens;
}

bool parse_number(std::string_view text, double& out) {
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_window(std::string_view text, std::size_t& out) {
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size() ||
        value < 2) {
        return false;
    }
    out = static_cast<std::size_t>(value);
    return true;
}

/// The signed-threshold convention shared by delta and slope: a
/// non-negative threshold watches for rises, a negative one for drops.
bool over_threshold(double measure, double threshold) {
    return threshold >= 0.0 ? measure >= threshold : measure <= threshold;
}

/// Least-squares slope of the window's values against sample index
/// 0..n-1 (value per sample step).  n >= 2.
double window_slope(std::span<const ts_sample> window) {
    const auto n = static_cast<double>(window.size());
    const double x_mean = (n - 1.0) / 2.0;
    double y_mean = 0.0;
    for (const ts_sample& sample : window) {
        y_mean += sample.value;
    }
    y_mean /= n;
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < window.size(); ++i) {
        const double dx = static_cast<double>(i) - x_mean;
        num += dx * (window[i].value - y_mean);
        den += dx * dx;
    }
    return num / den;
}

/// Evaluate one rule against one matching series.  False when the series
/// holds too few samples for the rule's window.
bool measure_rule(const alert_rule& rule, const series_snapshot& series,
                  double& measure) {
    if (series.samples.empty()) {
        return false;
    }
    switch (rule.op) {
    case alert_rule::op_kind::above:
    case alert_rule::op_kind::below:
        measure = series.last;
        return true;
    case alert_rule::op_kind::delta: {
        if (series.samples.size() < rule.window) {
            return false;
        }
        const std::vector<ts_sample> window = series.tail(rule.window);
        measure = window.back().value - window.front().value;
        return true;
    }
    case alert_rule::op_kind::slope: {
        if (series.samples.size() < rule.window) {
            return false;
        }
        const std::vector<ts_sample> window = series.tail(rule.window);
        measure = window_slope(window);
        return true;
    }
    }
    return false;
}

bool rule_fires(const alert_rule& rule, double measure) {
    switch (rule.op) {
    case alert_rule::op_kind::above:
        return measure >= rule.threshold;
    case alert_rule::op_kind::below:
        return measure <= rule.threshold;
    case alert_rule::op_kind::delta:
    case alert_rule::op_kind::slope:
        return over_threshold(measure, rule.threshold);
    }
    return false;
}

} // namespace

bool alert_rule::matches(std::string_view series_name) const {
    if (!series.empty() && series.back() == '*') {
        const std::string_view prefix =
            std::string_view(series).substr(0, series.size() - 1);
        return series_name.substr(0, prefix.size()) == prefix;
    }
    return series_name == series;
}

std::string_view to_string(alert_rule::op_kind op) {
    switch (op) {
    case alert_rule::op_kind::above:
        return "above";
    case alert_rule::op_kind::below:
        return "below";
    case alert_rule::op_kind::delta:
        return "delta";
    case alert_rule::op_kind::slope:
        return "slope";
    }
    return "?";
}

std::optional<std::vector<alert_rule>> parse_alert_rules(
    std::string_view text, std::string_view path, std::string& error) {
    const auto fail = [&](std::size_t line, std::string_view message) {
        error = std::string(path) + ":" + std::to_string(line) + ": " +
                std::string(message);
        return std::nullopt;
    };
    std::vector<alert_rule> rules;
    std::size_t line_number = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string_view line = text.substr(
            pos, eol == std::string_view::npos ? text.size() - pos
                                               : eol - pos);
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        ++line_number;
        const std::size_t comment = line.find('#');
        const std::vector<std::string_view> tokens = tokenize(
            comment == std::string_view::npos ? line
                                              : line.substr(0, comment));
        if (tokens.empty()) {
            continue;
        }
        if (tokens[0] != "alert") {
            return fail(line_number, "expected 'alert', got '" +
                                         std::string(tokens[0]) + "'");
        }
        if (tokens.size() < 5) {
            return fail(line_number,
                        "alert wants: alert <name> <series> "
                        "above|below|delta|slope <value> [window <N>]");
        }
        alert_rule rule;
        rule.name = std::string(tokens[1]);
        rule.series = std::string(tokens[2]);
        const std::string_view op = tokens[3];
        if (op == "above") {
            rule.op = alert_rule::op_kind::above;
        } else if (op == "below") {
            rule.op = alert_rule::op_kind::below;
        } else if (op == "delta") {
            rule.op = alert_rule::op_kind::delta;
        } else if (op == "slope") {
            rule.op = alert_rule::op_kind::slope;
        } else {
            return fail(line_number, "unknown comparator '" +
                                         std::string(op) +
                                         "' (above|below|delta|slope)");
        }
        if (!parse_number(tokens[4], rule.threshold)) {
            return fail(line_number, "threshold '" + std::string(tokens[4]) +
                                         "' is not a number");
        }
        const bool windowed = rule.op == alert_rule::op_kind::delta ||
                              rule.op == alert_rule::op_kind::slope;
        if (windowed) {
            if (tokens.size() != 7 || tokens[5] != "window") {
                return fail(line_number,
                            std::string(to_string(rule.op)) +
                                " wants 'window <N>' after the threshold");
            }
            if (!parse_window(tokens[6], rule.window)) {
                return fail(line_number, "window '" + std::string(tokens[6]) +
                                             "' wants an integer >= 2");
            }
        } else if (tokens.size() != 5) {
            return fail(line_number, "trailing tokens after '" +
                                         std::string(tokens[4]) + "'");
        }
        rules.push_back(std::move(rule));
    }
    return rules;
}

std::optional<std::vector<alert_rule>> load_alert_rules_file(
    const std::string& path, std::string& error) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        error = path + ": cannot open file";
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_alert_rules(std::move(buffer).str(), path, error);
}

std::vector<alert_match> evaluate_alert_rules(
    std::span<const alert_rule> rules,
    const std::vector<series_snapshot>& series) {
    std::vector<alert_match> matches;
    for (const alert_rule& rule : rules) {
        for (const series_snapshot& view : series) {
            if (!rule.matches(view.name)) {
                continue;
            }
            double measure = 0.0;
            if (measure_rule(rule, view, measure) &&
                rule_fires(rule, measure)) {
                matches.push_back({&rule, view.name, measure});
            }
        }
    }
    return matches;
}

alert_engine::alert_engine(std::vector<alert_rule> rules)
    : rules_(std::move(rules)) {}

std::vector<alert_event> alert_engine::evaluate(
    const std::vector<series_snapshot>& series, std::uint64_t tick) {
    // Walk every (rule, matching series) pair -- not just the firing
    // ones -- so resolved transitions are observed too.
    std::vector<alert_event> transitions;
    for (const alert_rule& rule : rules_) {
        for (const series_snapshot& view : series) {
            if (!rule.matches(view.name)) {
                continue;
            }
            double measure = 0.0;
            const bool fires = measure_rule(rule, view, measure) &&
                               rule_fires(rule, measure);
            const std::string key = firing_key(rule.name, view.name);
            const auto it =
                std::lower_bound(firing_.begin(), firing_.end(), key);
            const bool was_firing = it != firing_.end() && *it == key;
            if (fires == was_firing) {
                continue;
            }
            if (fires) {
                firing_.insert(it, key);
            } else {
                firing_.erase(it);
            }
            alert_event event;
            event.tick = tick;
            event.rule = rule.name;
            event.series = view.name;
            event.firing = fires;
            event.value = measure;
            transitions.push_back(event);
            events_.push_back(std::move(event));
        }
    }
    return transitions;
}

void alert_engine::replay(const alert_event& event) {
    const std::string key = firing_key(event.rule, event.series);
    const auto it = std::lower_bound(firing_.begin(), firing_.end(), key);
    const bool was_firing = it != firing_.end() && *it == key;
    if (event.firing && !was_firing) {
        firing_.insert(it, key);
    } else if (!event.firing && was_firing) {
        firing_.erase(it);
    }
    events_.push_back(event);
}

std::vector<std::string> alert_engine::firing() const {
    std::vector<std::string> labels;
    labels.reserve(firing_.size());
    for (const std::string& key : firing_) {
        std::string label = key;
        const std::size_t sep = label.find(firing_key_sep);
        GB_ASSERT(sep != std::string::npos);
        label[sep] = ':';
        labels.push_back(std::move(label));
    }
    return labels;
}

} // namespace gb

// Deterministic time-series engine: the time axis of the observability
// stack (produce: trace/metrics, consume: report/gbreport, and now
// *watch*: series, drift, alerts).
//
// A `timeline_recorder` holds named series of (virtual tick, value)
// samples.  The same discipline as the tracer and metrics registry
// applies: a sample must be a pure function of campaign content, never of
// scheduling, so appends happen at *serial points only* -- engine
// progress deciles (post-run, derived from per-task records in index
// order), supervisor epoch boundaries, and the fleet service's
// end-of-campaign observatory block.  The virtual clock is a plain
// monotonic counter advanced at those serial points; no wall time ever
// reaches an exported byte, so `write_timeline_json` output is bitwise
// identical at any GB_JOBS or shard count.
//
// Retention is a fixed-capacity ring per series.  Evicted samples are not
// dropped: each folds into a fixed-bucket histogram (the metrics
// registry's `histogram_snapshot` shape, integer milli-unit buckets), so
// downsampling is exactly associative -- replaying any prefix of appends
// reproduces the same ring and the same evicted buckets, which is what
// lets a restarted fleet daemon warm its timeline from the journal and
// converge byte-for-byte with a run that never crashed.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "harness/trace/metrics.hpp"

namespace gb {

class alert_engine;

/// One retained sample: virtual tick and value.
struct ts_sample {
    std::uint64_t tick = 0;
    double value = 0.0;
};

struct timeseries_config {
    /// Ring capacity per series; older samples downsample into the
    /// evicted histogram.
    std::size_t capacity = 32;
    /// Inclusive upper bounds (strictly increasing) of the evicted-sample
    /// histogram, in milli-units of the sample value; one overflow bucket
    /// follows.  Empty selects the default decade ladder.
    std::vector<std::uint64_t> evict_bounds;
};

/// Deterministic view of one series: the retained ring plus summary and
/// the evicted-sample histogram.
struct series_snapshot {
    std::string name;
    std::vector<ts_sample> samples; ///< oldest to newest
    std::uint64_t count = 0;        ///< total appended, evicted included
    double min = 0.0;
    double max = 0.0;
    double last = 0.0;
    histogram_snapshot evicted;

    /// The trailing `window` retained samples (all of them when the ring
    /// holds fewer).
    [[nodiscard]] std::vector<ts_sample> tail(std::size_t window) const;
};

class timeline_recorder {
public:
    explicit timeline_recorder(timeseries_config config = {});

    /// Claim the next virtual tick (1-based, monotonic).  Serial call
    /// sites only.
    std::uint64_t advance();

    /// Keep the virtual clock ahead of a replayed tick (journal warm):
    /// after observing tick T, advance() returns at least T + 1.
    void observe_tick(std::uint64_t tick);

    /// Append one sample; registers the series on first use.  Serial call
    /// sites only.  Series names must be non-empty and space-free (they
    /// ride single-line wire formats).
    void append(std::string_view series, std::uint64_t tick, double value);

    [[nodiscard]] std::size_t series_count() const { return series_.size(); }
    /// Total samples ever appended across all series.
    [[nodiscard]] std::uint64_t sample_count() const { return samples_; }
    [[nodiscard]] std::uint64_t next_tick() const { return next_tick_ + 1; }
    [[nodiscard]] const timeseries_config& config() const { return config_; }

    /// Name-sorted deterministic view of every series.
    [[nodiscard]] std::vector<series_snapshot> snapshot() const;

private:
    struct series_data {
        std::deque<ts_sample> ring;
        std::uint64_t count = 0;
        double min = 0.0;
        double max = 0.0;
        double last = 0.0;
        histogram_snapshot evicted;
    };

    timeseries_config config_;
    std::map<std::string, series_data, std::less<>> series_;
    std::uint64_t next_tick_ = 0; ///< last tick handed out or observed
    std::uint64_t samples_ = 0;
};

/// The timeline artifact (`timeline.json`): name-sorted series with
/// their retained samples, summaries and evicted histograms, plus the
/// alert section (rule count, sorted firing list, events in append
/// order).  Pure function of recorder + engine state, so the bytes are
/// bitwise identical at any GB_JOBS/shard count.  `alerts` may be null
/// (the section renders empty).
void write_timeline_json(std::ostream& out, const timeline_recorder& recorder,
                         const alert_engine* alerts = nullptr);

} // namespace gb

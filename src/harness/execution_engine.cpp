#include "harness/execution_engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string_view>
#include <thread>

#include "harness/fault_injection.hpp"
#include "harness/status.hpp"
#include "harness/timeseries/timeseries.hpp"
#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace gb {

namespace {

/// Outcome buckets the histogram can hold; covers run_outcome (7) and
/// dram_run_outcome (4) with room to spare.
constexpr int max_buckets = 8;

/// Virtual duration charged to every task attempt that reaches the task
/// function.  Traces use virtual ticks, not wall time, so the rendered
/// widths are a function of content (faults stretch a task by their
/// simulated downtime in milliseconds), never of scheduling.
constexpr std::uint64_t task_quantum_ticks = 100;

/// Metric handles the engine registers once per run (serial point).
struct engine_metric_handles {
    counter_handle tasks_completed;
    counter_handle retries;
    counter_handle aborted_rig;
    counter_handle watchdog_timeouts;
    counter_handle board_crashes;
    counter_handle power_switch_failures;
    counter_handle replayed_tasks;
    histogram_handle task_ticks;
    histogram_handle queue_depth;
    gauge_handle downtime_ms;
};

/// Per-task observability slot for the timeline: written exclusively by
/// the worker that owns the task index, read serially after the pool
/// drains, so no synchronization is needed and the decile walk sees the
/// same values at any worker count.
struct task_record {
    std::uint32_t retries = 0;
    std::uint64_t downtime_ms = 0;
};

const char* fault_name(rig_fault fault) {
    switch (fault) {
    case rig_fault::hang_until_watchdog: return "hang_until_watchdog";
    case rig_fault::board_crash: return "board_crash";
    case rig_fault::power_switch_failure: return "power_switch_failure";
    case rig_fault::none: break;
    }
    return "none";
}

} // namespace

double execution_stats::runs_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(tasks) / wall_seconds
                              : 0.0;
}

double execution_stats::worker_utilization() const {
    if (tasks_per_worker.empty()) {
        return 1.0;
    }
    std::uint64_t max_tasks = 0;
    std::uint64_t total = 0;
    for (const std::uint64_t n : tasks_per_worker) {
        max_tasks = std::max(max_tasks, n);
        total += n;
    }
    if (max_tasks == 0) {
        return 1.0;
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(tasks_per_worker.size());
    return mean / static_cast<double>(max_tasks);
}

std::uint64_t execution_stats::injected_faults() const {
    return watchdog_timeouts + board_crashes + power_switch_failures;
}

void execution_stats::merge(const execution_stats& other) {
    tasks += other.tasks;
    workers = std::max(workers, other.workers);
    wall_seconds += other.wall_seconds;
    if (outcome_histogram.size() < other.outcome_histogram.size()) {
        outcome_histogram.resize(other.outcome_histogram.size());
    }
    for (std::size_t i = 0; i < other.outcome_histogram.size(); ++i) {
        outcome_histogram[i] += other.outcome_histogram[i];
    }
    if (tasks_per_worker.size() < other.tasks_per_worker.size()) {
        tasks_per_worker.resize(other.tasks_per_worker.size());
    }
    for (std::size_t i = 0; i < other.tasks_per_worker.size(); ++i) {
        tasks_per_worker[i] += other.tasks_per_worker[i];
    }
    retries += other.retries;
    aborted_rig += other.aborted_rig;
    watchdog_timeouts += other.watchdog_timeouts;
    board_crashes += other.board_crashes;
    power_switch_failures += other.power_switch_failures;
    corrupted_log_lines += other.corrupted_log_lines;
    replayed_tasks += other.replayed_tasks;
    rig_downtime_s += other.rig_downtime_s;
}

std::uint64_t derive_task_seed(std::uint64_t base_seed,
                               std::uint64_t task_index) {
    // Decorrelate base and index with one golden-ratio step each before the
    // final mix, so (base, i) and (base + 1, i - 1) share no structure.
    std::uint64_t s = base_seed;
    std::uint64_t mixed = splitmix64(s);
    s = mixed ^ (task_index + 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}

int resolve_worker_count(int requested) {
    if (requested <= 0) {
        if (const char* env = std::getenv("GB_JOBS")) {
            const std::string_view text(env);
            int parsed = 0;
            const auto [ptr, ec] = std::from_chars(
                text.data(), text.data() + text.size(), parsed);
            if (ec == std::errc{} && ptr == text.data() + text.size() &&
                parsed > 0) {
                requested = parsed;
            } else {
                log_warn("ignoring GB_JOBS='", text,
                         "' (want a positive integer); falling back to ",
                         "hardware_concurrency");
            }
        }
    }
    if (requested <= 0) {
        requested = static_cast<int>(std::thread::hardware_concurrency());
    }
    return std::clamp(requested, 1, 256);
}

execution_engine::execution_engine(execution_options options)
    : options_(std::move(options)),
      workers_(resolve_worker_count(options_.workers)) {
    GB_EXPECTS(options_.retry_budget >= 1);
    GB_EXPECTS(options_.backoff_base_s >= 0.0);
}

execution_stats execution_engine::run(std::size_t task_count,
                                      const task_fn& task,
                                      std::size_t first_index) const {
    GB_EXPECTS(task != nullptr);

    execution_stats stats;
    stats.tasks = task_count;
    stats.outcome_histogram.assign(max_buckets, 0);
    if (task_count == 0) {
        stats.workers = 0;
        if (!options_.status_path.empty()) {
            campaign_status status;
            status.campaign = options_.campaign;
            publish_status(options_.status_path, status);
        }
        return stats;
    }
    const int pool = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(workers_), task_count));
    stats.workers = pool;
    stats.tasks_per_worker.assign(static_cast<std::size_t>(pool), 0);

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::array<std::atomic<std::uint64_t>, max_buckets> histogram{};
    std::atomic<bool> cancelled{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    // Fault/retry accounting: atomics keep the totals deterministic (each
    // injected fault is keyed to its (index, attempt), not to scheduling);
    // downtime accumulates in integer microseconds so even the floating
    // total is order-independent.
    const fault_plan* faults = options_.faults;
    const int budget = options_.retry_budget;
    std::atomic<std::uint64_t> n_retries{0};
    std::atomic<std::uint64_t> n_aborted{0};
    std::atomic<std::uint64_t> n_hangs{0};
    std::atomic<std::uint64_t> n_crashes{0};
    std::atomic<std::uint64_t> n_switch{0};
    std::atomic<std::uint64_t> n_replayed{0};
    std::atomic<std::uint64_t> downtime_us{0};

    // Live-status heartbeat: workers publish a snapshot when they cross a
    // progress decile.  The publish itself is serialized by try_lock (a
    // busy writer just skips -- the next decile republishes), and every
    // field a live snapshot carries is either a racy-but-monotonic counter
    // read or explicitly marked scheduling-dependent in the schema.
    const bool heartbeat = !options_.status_path.empty();
    std::vector<std::atomic<std::int64_t>> current_task(
        heartbeat ? static_cast<std::size_t>(pool) : 0);
    for (auto& slot : current_task) {
        slot.store(-1, std::memory_order_relaxed);
    }
    // Timeline slots: one per task, owned by the executing worker, walked
    // serially after the join.
    timeline_recorder* timeline = options_.timeline;
    std::vector<task_record> task_records(
        timeline != nullptr ? task_count : 0);

    std::mutex status_mutex;
    const auto start = std::chrono::steady_clock::now();
    const auto publish_live = [&] {
        campaign_status status;
        status.campaign = options_.campaign;
        status.running = true;
        status.tasks_total = task_count;
        status.tasks_done = done.load(std::memory_order_relaxed);
        status.retries = n_retries.load(std::memory_order_relaxed);
        status.injected_faults =
            n_hangs.load(std::memory_order_relaxed) +
            n_crashes.load(std::memory_order_relaxed) +
            n_switch.load(std::memory_order_relaxed);
        status.aborted_rig = n_aborted.load(std::memory_order_relaxed);
        status.replayed = n_replayed.load(std::memory_order_relaxed);
        status.rig_downtime_ms =
            downtime_us.load(std::memory_order_relaxed) / 1000;
        status.workers = pool;
        status.worker_task.reserve(current_task.size());
        for (const auto& slot : current_task) {
            status.worker_task.push_back(
                slot.load(std::memory_order_relaxed));
        }
        status.wall_elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        publish_status(options_.status_path, status);
    };
    if (heartbeat) {
        publish_live();
    }

    // Tracing/metrics: one phase per engine run (allocated here, a serial
    // point) keys every event this run emits; worker w records into shard
    // 1 + w so recording stays lock-free.  Nothing recorded may depend on
    // the worker count -- the exported bytes are part of the determinism
    // contract.
    tracer* trace = nullptr;
    metrics_registry* metrics = nullptr;
    std::uint32_t phase = 0;
    engine_metric_handles mh;
    if constexpr (trace_compiled_in) {
        trace = options_.trace;
        metrics = options_.metrics;
        if (trace != nullptr) {
            GB_EXPECTS(trace->shard_count() >
                       static_cast<std::size_t>(pool));
            phase = trace->allocate_phase();
        }
        if (metrics != nullptr) {
            GB_EXPECTS(metrics->shard_count() >
                       static_cast<std::size_t>(pool));
            mh.tasks_completed = metrics->counter("engine.tasks_completed");
            mh.retries = metrics->counter("engine.retries");
            mh.aborted_rig = metrics->counter("engine.aborted_rig");
            mh.watchdog_timeouts =
                metrics->counter("engine.watchdog_timeouts");
            mh.board_crashes = metrics->counter("engine.board_crashes");
            mh.power_switch_failures =
                metrics->counter("engine.power_switch_failures");
            mh.replayed_tasks = metrics->counter("engine.replayed_tasks");
            mh.task_ticks = metrics->histogram(
                "engine.task_ticks",
                {task_quantum_ticks, 2 * task_quantum_ticks, 1000, 10000,
                 100000, 1000000});
            mh.queue_depth = metrics->histogram(
                "engine.queue_depth", {1, 8, 64, 512, 4096, 32768});
            mh.downtime_ms = metrics->gauge("engine.rig_downtime_ms");
        }
    }

    // Progress is logged when a worker crosses a decile of the task count;
    // the lines go through the (thread-safe) log layer at debug level so
    // default-level campaign output stays byte-identical across worker
    // counts.
    const std::size_t progress_stride =
        std::max<std::size_t>(1, task_count / 10);

    const auto worker_loop = [&](int worker) {
        std::uint64_t executed = 0;
        while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= task_count) {
                break;
            }
            task_context ctx;
            ctx.index = first_index + i;
            ctx.seed = derive_task_seed(options_.base_seed, ctx.index);
            ctx.worker = worker;
            if (heartbeat) {
                current_task[static_cast<std::size_t>(worker)].store(
                    static_cast<std::int64_t>(ctx.index),
                    std::memory_order_relaxed);
            }
            // Shard 0 is reserved for serial code; worker w owns 1 + w.
            const std::size_t shard = static_cast<std::size_t>(worker) + 1;
            // Virtual task duration: the quantum plus any simulated rig
            // downtime (in ms ticks) this task's faulted attempts cost.
            std::uint64_t task_ticks = task_quantum_ticks;
            std::uint64_t task_downtime_ms = 0;
            if (options_.already_complete &&
                options_.already_complete(ctx.index)) {
                ctx.replayed = true;
                n_replayed.fetch_add(1, std::memory_order_relaxed);
                if constexpr (trace_compiled_in) {
                    if (metrics != nullptr) {
                        metrics->add(shard, mh.replayed_tasks);
                    }
                }
            } else if (faults != nullptr) {
                // The rig-fault path: draw per attempt, retry within the
                // budget, give up into an aborted task.  Faulted attempts
                // never reach the task function -- the board died before
                // reporting -- so campaign side effects (journal lines)
                // happen exactly once per task.
                int attempt = 0;
                for (; attempt < budget; ++attempt) {
                    const rig_fault fault = faults->draw(ctx.index, attempt);
                    if (fault == rig_fault::none) {
                        break;
                    }
                    switch (fault) {
                    case rig_fault::hang_until_watchdog:
                        n_hangs.fetch_add(1, std::memory_order_relaxed);
                        break;
                    case rig_fault::board_crash:
                        n_crashes.fetch_add(1, std::memory_order_relaxed);
                        break;
                    case rig_fault::power_switch_failure:
                        n_switch.fetch_add(1, std::memory_order_relaxed);
                        break;
                    case rig_fault::none: break;
                    }
                    const std::uint64_t fault_us =
                        static_cast<std::uint64_t>(
                            std::llround(faults->downtime_for(fault) * 1e6));
                    downtime_us.fetch_add(fault_us,
                                          std::memory_order_relaxed);
                    task_downtime_ms += fault_us / 1000;
                    if constexpr (trace_compiled_in) {
                        task_ticks += fault_us / 1000;
                        if (metrics != nullptr) {
                            metrics->add(
                                shard,
                                fault == rig_fault::hang_until_watchdog
                                    ? mh.watchdog_timeouts
                                : fault == rig_fault::board_crash
                                    ? mh.board_crashes
                                    : mh.power_switch_failures);
                        }
                        if (trace != nullptr) {
                            trace_span event;
                            event.name = "rig_fault";
                            event.category = "fault";
                            event.at = trace_point{
                                track_rig, phase, ctx.index,
                                static_cast<std::uint32_t>(attempt) + 1};
                            event.instant = true;
                            event.args.emplace_back("kind",
                                                    fault_name(fault));
                            event.args.emplace_back(
                                "attempt", std::to_string(attempt));
                            trace->record(shard, std::move(event));
                        }
                    }
                    if (attempt + 1 < budget) {
                        n_retries.fetch_add(1, std::memory_order_relaxed);
                        if constexpr (trace_compiled_in) {
                            if (metrics != nullptr) {
                                metrics->add(shard, mh.retries);
                            }
                        }
                        if (options_.backoff_base_s > 0.0) {
                            std::this_thread::sleep_for(
                                std::chrono::duration<double>(
                                    options_.backoff_base_s *
                                    static_cast<double>(1ULL << attempt)));
                        }
                    } else {
                        n_aborted.fetch_add(1, std::memory_order_relaxed);
                        if constexpr (trace_compiled_in) {
                            if (metrics != nullptr) {
                                metrics->add(shard, mh.aborted_rig);
                            }
                        }
                        log_debug("task ", ctx.index,
                                  ": retry budget exhausted (", budget,
                                  " attempts), recording aborted_rig");
                    }
                }
                ctx.attempt = attempt;
                ctx.aborted = attempt == budget;
            }
            if (timeline != nullptr) {
                task_record& record = task_records[i];
                record.retries = static_cast<std::uint32_t>(
                    ctx.aborted ? budget - 1 : ctx.attempt);
                record.downtime_ms = task_downtime_ms;
            }
            int bucket = -1;
            try {
                bucket = task(ctx);
                if (bucket >= 0) {
                    GB_EXPECTS(bucket < max_buckets);
                    histogram[static_cast<std::size_t>(bucket)].fetch_add(
                        1, std::memory_order_relaxed);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
                cancelled.store(true, std::memory_order_relaxed);
                break;
            }
            if constexpr (trace_compiled_in) {
                if (metrics != nullptr) {
                    metrics->add(shard, mh.tasks_completed);
                    metrics->observe(shard, mh.task_ticks, task_ticks);
                    metrics->observe(shard, mh.queue_depth, i);
                }
                if (trace != nullptr) {
                    trace_span span;
                    span.name = "task";
                    span.category = "engine";
                    span.at = trace_point{track_rig, phase, ctx.index, 0};
                    span.duration_ticks = task_ticks;
                    span.args.emplace_back("index",
                                           std::to_string(ctx.index));
                    span.args.emplace_back("bucket",
                                           std::to_string(bucket));
                    if (ctx.attempt > 0 || ctx.aborted) {
                        span.args.emplace_back(
                            "faulted_attempts", std::to_string(ctx.attempt));
                    }
                    if (ctx.aborted) {
                        span.args.emplace_back("aborted", "true");
                    }
                    if (ctx.replayed) {
                        span.args.emplace_back("replayed", "true");
                    }
                    trace->record(shard, std::move(span));
                }
            }
            ++executed;
            const std::size_t completed =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (heartbeat && completed % progress_stride == 0 &&
                completed < task_count) {
                // Skip when another worker is mid-publish: heartbeats are
                // best-effort and the next decile refreshes the file.
                if (status_mutex.try_lock()) {
                    publish_live();
                    status_mutex.unlock();
                }
            }
            if (!options_.campaign.empty() &&
                completed % progress_stride == 0 && completed < task_count) {
                std::string buckets;
                for (const auto& b : histogram) {
                    buckets += buckets.empty() ? "" : "/";
                    buckets += std::to_string(
                        b.load(std::memory_order_relaxed));
                }
                log_debug("campaign ", options_.campaign, ": ", completed,
                          "/", task_count, " tasks, outcomes ", buckets);
            }
        }
        if (heartbeat) {
            current_task[static_cast<std::size_t>(worker)].store(
                -1, std::memory_order_relaxed);
        }
        stats.tasks_per_worker[static_cast<std::size_t>(worker)] = executed;
    };

    if (pool == 1) {
        worker_loop(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(pool));
        for (int w = 0; w < pool; ++w) {
            threads.emplace_back(worker_loop, w);
        }
        for (std::thread& t : threads) {
            t.join();
        }
    }
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    for (std::size_t b = 0; b < histogram.size(); ++b) {
        stats.outcome_histogram[b] =
            histogram[b].load(std::memory_order_relaxed);
    }
    stats.retries = n_retries.load(std::memory_order_relaxed);
    stats.aborted_rig = n_aborted.load(std::memory_order_relaxed);
    stats.watchdog_timeouts = n_hangs.load(std::memory_order_relaxed);
    stats.board_crashes = n_crashes.load(std::memory_order_relaxed);
    stats.power_switch_failures = n_switch.load(std::memory_order_relaxed);
    stats.replayed_tasks = n_replayed.load(std::memory_order_relaxed);
    stats.rig_downtime_s =
        static_cast<double>(downtime_us.load(std::memory_order_relaxed)) /
        1e6;

    if (timeline != nullptr) {
        // Serial decile walk over the index-ordered task records: the
        // cumulative values at each boundary depend only on campaign
        // content, never on which worker ran which task.  Boundaries that
        // repeat for tiny task counts are appended once.
        std::uint64_t cumulative_retries = 0;
        std::uint64_t cumulative_downtime_ms = 0;
        std::size_t walked = 0;
        std::size_t previous_boundary = 0;
        for (int decile = 1; decile <= 10; ++decile) {
            const std::size_t boundary =
                task_count * static_cast<std::size_t>(decile) / 10;
            if (boundary == previous_boundary) {
                continue;
            }
            for (; walked < boundary; ++walked) {
                cumulative_retries += task_records[walked].retries;
                cumulative_downtime_ms += task_records[walked].downtime_ms;
            }
            const std::uint64_t tick = timeline->advance();
            timeline->append("engine.progress", tick,
                             static_cast<double>(boundary));
            timeline->append("engine.retries", tick,
                             static_cast<double>(cumulative_retries));
            timeline->append("engine.downtime_ms", tick,
                             static_cast<double>(cumulative_downtime_ms));
            previous_boundary = boundary;
        }
    }

    if constexpr (trace_compiled_in) {
        const std::uint64_t downtime_ms =
            downtime_us.load(std::memory_order_relaxed) / 1000;
        if (trace != nullptr) {
            // One campaign-control span covering the whole run.  Its width
            // is the deterministic virtual total, never wall time, and it
            // deliberately carries no worker-count information.
            trace_span span;
            span.name =
                options_.campaign.empty() ? "engine.run" : options_.campaign;
            span.category = "campaign";
            span.at = trace_point{track_campaign, phase, first_index, 0};
            span.duration_ticks =
                task_count * task_quantum_ticks + downtime_ms;
            span.args.emplace_back("tasks", std::to_string(task_count));
            span.args.emplace_back("first_index",
                                   std::to_string(first_index));
            span.args.emplace_back("faults",
                                   std::to_string(stats.injected_faults()));
            trace->record(0, std::move(span));
        }
        if (metrics != nullptr) {
            metrics->set(0, mh.downtime_ms, phase,
                         static_cast<double>(downtime_ms));
        }
    }

    if (heartbeat) {
        // Final snapshot: deterministic fields only, no `live` object.
        // Every value below is keyed to campaign content, so the file is
        // byte-identical at any worker count.
        campaign_status status;
        status.campaign = options_.campaign;
        status.running = false;
        status.tasks_total = task_count;
        status.tasks_done = done.load(std::memory_order_relaxed);
        status.retries = stats.retries;
        status.injected_faults = stats.injected_faults();
        status.aborted_rig = stats.aborted_rig;
        status.replayed = stats.replayed_tasks;
        status.rig_downtime_ms =
            downtime_us.load(std::memory_order_relaxed) / 1000;
        publish_status(options_.status_path, status);
    }

    if (first_error) {
        std::rethrow_exception(first_error);
    }
    if (!options_.campaign.empty()) {
        log_info("campaign ", options_.campaign, ": ", task_count,
                 " tasks on ", pool, " workers in ", stats.wall_seconds,
                 " s (", stats.runs_per_second(), " runs/s, utilization ",
                 stats.worker_utilization(), ")");
        if (stats.injected_faults() > 0) {
            log_info("campaign ", options_.campaign, ": rig faults ",
                     stats.injected_faults(), " (", stats.watchdog_timeouts,
                     " hang/", stats.board_crashes, " crash/",
                     stats.power_switch_failures, " power-switch), ",
                     stats.retries, " retries, ", stats.aborted_rig,
                     " aborted, ", stats.rig_downtime_s,
                     " s simulated downtime");
        }
    }
    return stats;
}

} // namespace gb

// Crash-safe, append-only campaign journal.
//
// The paper's rig streams raw per-run log lines off-board as they complete,
// so "a crashed board or a killed campaign loses at most the in-flight
// run".  This module is that property for our campaign runners: every
// completed task's record is serialized in the logfile wire format behind a
// `task=<index>` routing prefix, appended under a mutex and flushed
// line-by-line.  A killed campaign leaves a journal whose replay (through
// the tolerant logfile parsers -- corrupted or truncated lines are simply
// skipped and their tasks re-run) tells the resume path exactly which task
// indices are done; the engine re-runs only the remainder, and because
// doubles round-trip exactly, the resumed records and CSV are bitwise
// identical to an uninterrupted run at any worker count.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "harness/campaign.hpp"
#include "harness/dram_campaign.hpp"

namespace gb {

class fault_plan;
class chaos_plan;

/// Thread-safe append sink for one campaign's journal lines.
class campaign_journal {
public:
    /// Append to a file (created if missing, existing lines kept -- the
    /// resume path reads them first and keeps appending to the same file).
    explicit campaign_journal(const std::string& path);
    /// Append to a caller-owned stream (tests, off-board pipes).
    explicit campaign_journal(std::ostream& sink);

    /// Arm the journal-append kill-point (chaos.hpp): an append that
    /// trips the plan's byte threshold writes only the torn prefix of
    /// its line -- no trailing newline -- flushes, and dies.  Null
    /// disarms.
    void set_chaos(chaos_plan* chaos);

    /// Append `task=<index> <line>` and flush.  When a fault plan with a
    /// log-corruption fault for this task is given, the written line is
    /// deterministically mangled instead (the record stays intact in
    /// memory; only the journal loses it, like a dying UART).
    void append(std::size_t task_index, std::string_view line,
                const fault_plan* faults = nullptr);

    [[nodiscard]] std::uint64_t appended() const;
    [[nodiscard]] std::uint64_t corrupted() const;
    /// Cumulative payload bytes written through this journal object
    /// (the chaos plan's `journal_append` thresholds count these).
    [[nodiscard]] std::uint64_t bytes_written() const;

private:
    std::ofstream file_;
    std::ostream* sink_;
    chaos_plan* chaos_ = nullptr;
    mutable std::mutex mutex_;
    std::uint64_t appended_ = 0;
    std::uint64_t corrupted_ = 0;
    std::uint64_t bytes_written_ = 0;
};

/// Split a journal line into its task index and record payload.  Returns
/// false for lines without a well-formed `task=<index> ` prefix.
[[nodiscard]] bool parse_journal_prefix(std::string_view line,
                                        std::size_t& task_index,
                                        std::string_view& payload);

/// Replay of a (possibly truncated, possibly corrupted) journal: the
/// records recovered per task index, last write winning.  `skipped` counts
/// lines that were not recoverable records.
///
/// Live-tailed files: the writer appends whole lines ending in '\n', so a
/// final line without a trailing newline is a record still being written
/// (the fleet daemon ingests journals mid-append).  Such a tail is never
/// parsed -- even if its bytes happen to form a valid record, more bytes
/// may follow -- and is reported via `truncated_tail` instead of being
/// counted as skipped corruption.
struct cpu_journal_replay {
    std::map<std::size_t, run_record> completed;
    std::size_t skipped = 0;
    bool truncated_tail = false;
};
[[nodiscard]] cpu_journal_replay replay_cpu_journal(std::istream& in);

struct dram_journal_replay {
    std::map<std::size_t, dram_run_record> completed;
    std::size_t skipped = 0;
    bool truncated_tail = false;
};
[[nodiscard]] dram_journal_replay replay_dram_journal(std::istream& in);

} // namespace gb

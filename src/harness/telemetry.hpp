// Structured health telemetry for supervised exploitation runs.
//
// The characterization side (campaigns) accounts every *run* via
// execution_stats; the exploitation side needs the same discipline per
// *epoch*: once a deployment undervolts and relaxes refresh, every epoch
// must end in exactly one disposition -- committed, sentinel-checked,
// replayed after a watchdog abort, aborted outright, or pinned at nominal
// by a quarantine -- so that reported savings are net of resilience cost
// and no lost work goes unaccounted.  `health_telemetry::balanced()` is
// the invariant the supervisor maintains and the examples assert.
#pragma once

#include <cstdint>
#include <string_view>

namespace gb {

class metrics_registry;

/// How one supervised epoch ended.  Exactly one disposition per epoch.
enum class epoch_disposition : std::uint8_t {
    committed,  ///< ran at the supervised point, work kept
    sentinel,   ///< committed with a duplicated golden-checksum run
    replayed,   ///< watchdog abort, replayed and committed at a safer point
    aborted,    ///< watchdog abort and the replay was lost too
    quarantined ///< operating point quarantined; ran pinned at nominal
};

[[nodiscard]] std::string_view to_string(epoch_disposition disposition);

/// Counters a supervised run exports.  Epoch counts are exact (the
/// accounting invariant below); energy overheads are in mean-watts summed
/// over epochs (divide by epochs for the per-epoch cost fed to savings).
struct health_telemetry {
    std::uint64_t epochs = 0; ///< logical epochs scheduled

    // Dispositions (sum equals `epochs`).
    std::uint64_t committed = 0;
    std::uint64_t sentinel_epochs = 0;
    std::uint64_t replayed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t quarantined_epochs = 0;

    // Detection and recovery events.
    std::uint64_t detected_sdc = 0;   ///< caught by a sentinel epoch
    std::uint64_t undetected_sdc = 0; ///< ground truth: silent epochs missed
    std::uint64_t dram_ce_bursts = 0; ///< CE-burst scans fed to breakers
    std::uint64_t breaker_trips = 0;
    std::uint64_t watchdog_aborts = 0; ///< hangs converted to aborted epochs
    /// Sum over epochs of concurrently quarantined operating points.
    std::uint64_t quarantine_occupancy = 0;
    std::uint64_t degraded_epochs = 0; ///< epochs run above the desired point

    // Energy cost of resilience, to be charged against reported savings.
    double sentinel_overhead_w_epochs = 0.0;    ///< duplicated compute
    double degradation_overhead_w_epochs = 0.0; ///< staged back-off + replays

    /// Record one epoch's disposition (increments `epochs` too).
    void account(epoch_disposition disposition);

    [[nodiscard]] std::uint64_t accounted() const {
        return committed + sentinel_epochs + replayed + aborted +
               quarantined_epochs;
    }
    /// The zero-unaccounted-epochs invariant.
    [[nodiscard]] bool balanced() const { return accounted() == epochs; }

    /// Mean resilience overhead per epoch in watts.
    [[nodiscard]] double mean_overhead_w() const;

    /// Accumulate another run's telemetry (multi-phase deployments).
    void merge(const health_telemetry& other);

    /// Export every counter as an order-keyed `health.*` gauge (serial
    /// call sites only; later `order` values win at merge, so publish with
    /// the epoch index and the final state survives).  Compiled out with
    /// the rest of the trace layer.
    void publish(metrics_registry& metrics, std::size_t shard,
                 std::uint64_t order) const;
};

} // namespace gb

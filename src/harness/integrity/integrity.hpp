// Integrity primitives against silent data corruption (SDC).
//
// The chaos harness (harness/chaos) covers *crashes*: torn writes, killed
// warms, missing renames.  This module covers the quieter threat the
// paper's guardband exploitation actually runs into -- a Byzantine rig
// that returns plausible-but-wrong measurements with no fault signal
// (fault_injection.hpp's sdc_plan reproduces it deterministically).  The
// defenses composed here by fleet/service:
//
//   * chain hash    -- every journal record folds the previous record's
//                      chain value into its own FNV-1a hash, so any
//                      in-place edit (not just a torn tail) breaks every
//                      subsequent link and is caught on warm;
//   * rig model     -- a deterministic content-pure assignment of probe
//                      replicas onto disjoint simulated rigs, so N-modular
//                      redundant execution has somewhere to disagree;
//   * quorum vote   -- majority-of-N admission with dissenter reporting;
//   * reputation    -- a per-rig dissent ledger with a blacklist
//                      threshold, the fleet-level analogue of the
//                      supervisor's per-(PMD, workload-class) error-burst
//                      circuit breakers (src/core/supervisor.hpp): repeat
//                      dissenters get quarantined and their sole-sourced
//                      results re-executed.
//
// Everything here is a pure function of campaign content and integrity
// configuration -- never of worker counts, shards or wall time -- so the
// defended journal and snapshot stay bitwise-deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gb {

// --- hash chain ------------------------------------------------------------

/// FNV-1a offset basis; the chain value of the empty journal.
inline constexpr std::uint64_t chain_basis = 14695981039346656037ULL;

/// Chain value after appending `payload`: FNV-1a over the previous chain
/// value's 8 little-endian bytes followed by the payload bytes.  An
/// in-place corruption of any earlier record changes every later link.
[[nodiscard]] std::uint64_t chain_next(std::uint64_t prev,
                                       std::string_view payload);

/// The chain value as it appears on the journal wire: 16 lowercase hex
/// digits, zero padded.
[[nodiscard]] std::string format_chain(std::uint64_t chain);

// --- rig model -------------------------------------------------------------

/// Simulated rig that executes replica `replica` of the probe with content
/// id `content`.  Content-pure (splitmix64 over a domain-separated seed),
/// and disjoint across replicas: replica r lands on base + r (mod rigs),
/// so a quorum of N ≤ rigs never asks one rig to vote twice.
[[nodiscard]] std::uint64_t rig_for(std::uint64_t seed,
                                    std::uint64_t content, int replica,
                                    std::uint64_t rigs);

// --- quorum vote -----------------------------------------------------------

/// Outcome of a majority vote over replica results.
struct quorum_tally {
    /// True when some value holds a strict majority.
    bool decided = false;
    /// Index of the winning replica (smallest index inside the winning
    /// equivalence class); meaningful only when decided.
    std::size_t winner = 0;
    /// Replicas outside the winning class (empty when undecided: with no
    /// majority nobody can be blamed).
    std::vector<std::size_t> dissenters;
};

/// Majority vote over `replicas` results compared by `same(i, j)` (an
/// equivalence).  Deterministic: classes are built in index order and the
/// winner is the first class to reach the best count.
template <typename Same>
[[nodiscard]] quorum_tally vote(std::size_t replicas, Same&& same) {
    quorum_tally tally;
    if (replicas == 0) {
        return tally;
    }
    std::vector<std::size_t> leader(replicas, 0);
    std::vector<std::size_t> count(replicas, 0);
    for (std::size_t i = 0; i < replicas; ++i) {
        leader[i] = i;
        for (std::size_t j = 0; j < i; ++j) {
            if (leader[j] == j && same(i, j)) {
                leader[i] = j;
                break;
            }
        }
        ++count[leader[i]];
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < replicas; ++i) {
        if (count[i] > count[best]) {
            best = i;
        }
    }
    if (count[best] * 2 > replicas) {
        tally.decided = true;
        tally.winner = best;
        for (std::size_t i = 0; i < replicas; ++i) {
            if (leader[i] != best) {
                tally.dissenters.push_back(i);
            }
        }
    }
    return tally;
}

// --- rig reputation --------------------------------------------------------

struct rig_reputation_config {
    /// Dissents before a rig is blacklisted (its sole-sourced history gets
    /// re-executed).  Mirrors the supervisor breaker's trip score.
    std::uint64_t blacklist_threshold = 2;
};

/// Per-rig dissent ledger.  Deterministic: state is a pure fold of the
/// recorded dissents in call order (fleet/service records them serially in
/// journal commit order).
class rig_reputation {
public:
    rig_reputation() = default;
    explicit rig_reputation(rig_reputation_config config);

    /// Record one outvoted dissent by `rig`.  True when this dissent just
    /// pushed the rig over the blacklist threshold (the caller owes a
    /// repair sweep of the rig's sole-sourced results).
    bool record_dissent(std::uint64_t rig);

    [[nodiscard]] bool blacklisted(std::uint64_t rig) const;
    [[nodiscard]] std::uint64_t dissents() const { return dissents_; }
    [[nodiscard]] std::uint64_t blacklisted_count() const {
        return blacklisted_;
    }
    [[nodiscard]] const rig_reputation_config& config() const {
        return config_;
    }

private:
    rig_reputation_config config_;
    std::map<std::uint64_t, std::uint64_t> dissent_counts_;
    std::uint64_t dissents_ = 0;
    std::uint64_t blacklisted_ = 0;
};

} // namespace gb

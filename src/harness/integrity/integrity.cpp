#include "harness/integrity/integrity.hpp"

#include <cstdio>

#include "harness/execution_engine.hpp"
#include "util/contracts.hpp"

namespace gb {

namespace {

constexpr std::uint64_t fnv_prime = 1099511628211ULL;

// Domain separator so rig assignment never aliases the fault, chaos or
// task-seed streams derived from the same campaign seed.
constexpr std::uint64_t rig_domain = 0x7269672d61736e74ULL;

std::uint64_t fnv1a_byte(std::uint64_t hash, unsigned char byte) {
    return (hash ^ byte) * fnv_prime;
}

} // namespace

std::uint64_t chain_next(std::uint64_t prev, std::string_view payload) {
    std::uint64_t hash = chain_basis;
    for (int shift = 0; shift < 64; shift += 8) {
        hash = fnv1a_byte(hash,
                          static_cast<unsigned char>(prev >> shift));
    }
    for (const char c : payload) {
        hash = fnv1a_byte(hash, static_cast<unsigned char>(c));
    }
    return hash;
}

std::string format_chain(std::uint64_t chain) {
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(chain));
    return std::string(buffer);
}

std::uint64_t rig_for(std::uint64_t seed, std::uint64_t content,
                      int replica, std::uint64_t rigs) {
    GB_EXPECTS(rigs >= 1);
    GB_EXPECTS(replica >= 0);
    const std::uint64_t base =
        derive_task_seed(seed ^ rig_domain, content);
    return (base + static_cast<std::uint64_t>(replica)) % rigs;
}

rig_reputation::rig_reputation(rig_reputation_config config)
    : config_(config) {
    GB_EXPECTS(config_.blacklist_threshold >= 1);
}

bool rig_reputation::record_dissent(std::uint64_t rig) {
    ++dissents_;
    const std::uint64_t count = ++dissent_counts_[rig];
    if (count == config_.blacklist_threshold) {
        ++blacklisted_;
        return true;
    }
    return false;
}

bool rig_reputation::blacklisted(std::uint64_t rig) const {
    const auto it = dissent_counts_.find(rig);
    return it != dissent_counts_.end() &&
           it->second >= config_.blacklist_threshold;
}

} // namespace gb

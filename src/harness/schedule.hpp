// Deterministic list scheduling, shared by the report simulation and the
// fleet campaign service.
//
// `gbreport utilization` answers "where would a K-worker campaign lose
// time" by replaying recorded task durations through a list scheduler; the
// fleet service answers "which shard runs which cohort probe" with the
// same policy over estimated probe costs.  Both must agree exactly -- the
// simulation is the service's planning oracle -- so the scheduler lives
// here as one shared module and a property test pins the equivalence.
//
// Policy (unchanged from the original report simulation): tasks are issued
// in index order to the earliest-finishing worker, ties to the lowest
// worker id.  Everything is virtual ticks; nothing reads a clock, so a
// schedule is a pure function of (durations, worker count).
#pragma once

#include <cstdint>
#include <vector>

namespace gb {

/// Per-worker accumulated load of a schedule.
struct worker_load {
    std::uint64_t busy_ticks = 0;
    std::uint64_t tasks = 0;
};

/// One task's placement: which worker runs it and when (virtual ticks).
struct scheduled_task {
    int worker = 0;
    std::uint64_t start_ticks = 0;
    std::uint64_t finish_ticks = 0;
};

/// Incremental list scheduler.  `assign` places the next task; `barrier`
/// aligns every worker to the current makespan (campaigns run back to
/// back: no task of the next campaign starts before the previous one
/// fully drains, exactly like sequential engine runs).
class list_scheduler {
public:
    /// `workers` is clamped to >= 1.
    explicit list_scheduler(int workers);

    /// Place the next task on the earliest-finishing worker (ties to the
    /// lowest id) and account its load.
    scheduled_task assign(std::uint64_t duration_ticks);

    /// Campaign boundary: every worker's next start is the makespan so
    /// far.
    void barrier();

    [[nodiscard]] int workers() const {
        return static_cast<int>(finish_.size());
    }
    /// Finish time of the latest-finishing worker.
    [[nodiscard]] std::uint64_t makespan() const;
    /// Sum of all assigned durations.
    [[nodiscard]] std::uint64_t serial_ticks() const { return serial_; }
    [[nodiscard]] const std::vector<worker_load>& loads() const {
        return loads_;
    }

private:
    std::vector<std::uint64_t> finish_;
    std::vector<worker_load> loads_;
    std::uint64_t serial_ = 0;
};

/// One-shot schedule of a whole task list (a single campaign, no
/// barriers).  `assignment[i]` is task i's placement.
struct schedule_result {
    int workers = 1;
    std::uint64_t serial_ticks = 0;
    std::uint64_t makespan = 0;
    std::vector<scheduled_task> assignment;
    std::vector<worker_load> loads;
};

[[nodiscard]] schedule_result list_schedule(
    const std::vector<std::uint64_t>& duration_ticks, int workers);

} // namespace gb

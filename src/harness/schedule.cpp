#include "harness/schedule.hpp"

#include <algorithm>

namespace gb {

list_scheduler::list_scheduler(int workers) {
    const auto count = static_cast<std::size_t>(std::max(1, workers));
    finish_.assign(count, 0);
    loads_.assign(count, {});
}

scheduled_task list_scheduler::assign(std::uint64_t duration_ticks) {
    std::size_t pick = 0;
    for (std::size_t w = 1; w < finish_.size(); ++w) {
        if (finish_[w] < finish_[pick]) {
            pick = w;
        }
    }
    scheduled_task task;
    task.worker = static_cast<int>(pick);
    task.start_ticks = finish_[pick];
    finish_[pick] += duration_ticks;
    task.finish_ticks = finish_[pick];
    loads_[pick].busy_ticks += duration_ticks;
    ++loads_[pick].tasks;
    serial_ += duration_ticks;
    return task;
}

void list_scheduler::barrier() {
    const std::uint64_t now = makespan();
    std::fill(finish_.begin(), finish_.end(), now);
}

std::uint64_t list_scheduler::makespan() const {
    std::uint64_t latest = 0;
    for (const std::uint64_t f : finish_) {
        latest = std::max(latest, f);
    }
    return latest;
}

schedule_result list_schedule(
    const std::vector<std::uint64_t>& duration_ticks, int workers) {
    list_scheduler scheduler(workers);
    schedule_result result;
    result.workers = scheduler.workers();
    result.assignment.reserve(duration_ticks.size());
    for (const std::uint64_t ticks : duration_ticks) {
        result.assignment.push_back(scheduler.assign(ticks));
    }
    result.serial_ticks = scheduler.serial_ticks();
    result.makespan = scheduler.makespan();
    result.loads = scheduler.loads();
    return result;
}

} // namespace gb

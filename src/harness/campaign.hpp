// Campaign specification and result records for the automated
// characterization framework (paper Fig 2).
//
// A *setup* is one (voltage, frequency, cores) configuration; a *run* is one
// execution of a benchmark under a setup; a *campaign* is the set of runs of
// one benchmark across setups and repetitions.  The parsing phase classifies
// every run (OK / CE / UE / SDC / crash / hang) and renders the final CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "chip/chip_model.hpp"
#include "harness/execution_engine.hpp"
#include "util/units.hpp"

namespace gb {

/// One characterization configuration.
struct characterization_setup {
    millivolts voltage{980.0};
    megahertz frequency = nominal_core_frequency;
    std::vector<int> cores{0};
};

/// A benchmark plus the setups to sweep and the repetition count (the paper
/// repeats every undervolting experiment ten times).
struct campaign_spec {
    std::string benchmark;
    std::vector<characterization_setup> setups;
    int repetitions = 10;
    /// Worker threads for the execution engine (0: GB_JOBS env var, then
    /// hardware_concurrency).  Results are identical for any value.
    int workers = 0;
};

/// Everything logged about one run.
struct run_record {
    std::string benchmark;
    millivolts voltage{0.0};
    megahertz frequency{0.0};
    std::vector<int> cores;
    int repetition = 0;
    run_outcome outcome = run_outcome::ok;
    millivolts margin{0.0};
    failure_path path = failure_path::logic;
    bool watchdog_reset = false;
};

/// Outcome histogram of a set of runs.
struct classification_summary {
    std::uint64_t ok = 0;
    std::uint64_t corrected = 0;
    std::uint64_t uncorrectable = 0;
    std::uint64_t sdc = 0;
    std::uint64_t crash = 0;
    std::uint64_t hang = 0;
    /// Rig retry budget exhausted: no measurement for these runs.
    std::uint64_t aborted = 0;

    [[nodiscard]] std::uint64_t total() const;
    [[nodiscard]] std::uint64_t disruptions() const;
};

struct campaign_result {
    campaign_spec spec;
    std::vector<run_record> records;
    std::uint64_t watchdog_resets = 0;
    /// Engine observability for the campaign's task sweep (timing fields
    /// are scheduling-dependent; records above are not).
    execution_stats stats;

    [[nodiscard]] classification_summary summarize() const;
    /// Summary restricted to one supply voltage.
    [[nodiscard]] classification_summary summarize_at(millivolts v) const;
};

/// Parsing phase: render records as the framework's final CSV.
void write_campaign_csv(std::ostream& out, const campaign_result& result);

} // namespace gb

#include "harness/status.hpp"

#include <charconv>
#include <cstdio>
#include <system_error>

#include "harness/trace/trace.hpp"

namespace gb {

namespace {

std::string format_seconds(double value) {
    char buffer[64];
    const auto [ptr, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (ec != std::errc{}) {
        return "0";
    }
    return std::string(buffer, ptr);
}

} // namespace

std::string write_status_json(const campaign_status& status) {
    std::string out = "{\"campaign\":\"";
    out += json_escape(status.campaign);
    out += "\",\"running\":";
    out += status.running ? "true" : "false";
    const auto field = [&out](const char* name, std::uint64_t value) {
        out += ",\"";
        out += name;
        out += "\":";
        out += std::to_string(value);
    };
    field("tasks_total", status.tasks_total);
    field("tasks_done", status.tasks_done);
    field("retries", status.retries);
    field("injected_faults", status.injected_faults);
    field("aborted_rig", status.aborted_rig);
    field("replayed", status.replayed);
    field("rig_downtime_ms", status.rig_downtime_ms);
    if (status.running) {
        out += ",\"live\":{\"workers\":";
        out += std::to_string(status.workers);
        out += ",\"worker_task\":[";
        for (std::size_t w = 0; w < status.worker_task.size(); ++w) {
            if (w > 0) {
                out += ',';
            }
            out += std::to_string(status.worker_task[w]);
        }
        out += "],\"wall_elapsed_s\":";
        out += format_seconds(status.wall_elapsed_s);
        out += "}";
    }
    out += "}\n";
    return out;
}

bool publish_status(const std::string& path, const campaign_status& status) {
    // Write-temp-then-rename: rename(2) is atomic on POSIX, so a reader
    // polling `path` sees either the previous snapshot or this one, never
    // a prefix.  One fixed temp name suffices -- a status file has exactly
    // one writer (the engine publishes under a mutex).
    const std::string temp = path + ".tmp";
    const std::string body = write_status_json(status);
    std::FILE* file = std::fopen(temp.c_str(), "wb");
    if (file == nullptr) {
        return false;
    }
    const bool written =
        std::fwrite(body.data(), 1, body.size(), file) == body.size();
    const bool closed = std::fclose(file) == 0;
    if (!written || !closed) {
        std::remove(temp.c_str());
        return false;
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

} // namespace gb

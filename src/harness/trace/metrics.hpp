// Deterministic metrics registry: counters, gauges and fixed-bucket
// histograms with lock-free per-worker shards.
//
// The same discipline as the tracer (trace.hpp): a metric value must be a
// pure function of the campaign's deterministic content, never of
// scheduling.  Three mechanisms make the merged snapshot order-independent:
//
//   * counters and histogram bucket counts are unsigned integers, so
//     cross-shard summation is exactly associative and commutative (the
//     property tests/harness_trace_test.cpp exercises);
//   * histogram *sums* are integer ticks too -- no floating accumulation
//     order to leak scheduling;
//   * gauges carry an explicit order key (task or epoch index); the merge
//     keeps the value with the largest key, so "last write wins" means
//     last in *deterministic* order, not last in wall time.
//
// Registration (name -> dense id) happens at serial points only; updates
// are wait-free writes into the calling worker's shard.  Building with
// -DGB_TRACE=OFF compiles call sites guarded by `trace_compiled_in` out
// entirely.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gb {

struct counter_handle {
    std::uint32_t id = 0;
};
struct gauge_handle {
    std::uint32_t id = 0;
};
struct histogram_handle {
    std::uint32_t id = 0;
};

/// Merged view of one histogram.  `bounds` are inclusive upper bounds of
/// the first N buckets; one overflow bucket follows, so
/// counts.size() == bounds.size() + 1.
struct histogram_snapshot {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
};

/// Exact (integer) merge; associative and commutative.  Both operands
/// must share bounds.
[[nodiscard]] histogram_snapshot merge(const histogram_snapshot& a,
                                       const histogram_snapshot& b);

/// Deterministic merged view of a registry, sorted by metric name.
struct metrics_snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, histogram_snapshot>> histograms;

    /// Value lookups for tests and reports (0 / empty when absent).
    [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
    [[nodiscard]] double gauge_value(std::string_view name) const;
    [[nodiscard]] const histogram_snapshot* histogram_named(
        std::string_view name) const;
};

class metrics_registry {
public:
    /// Default shard budget covers the engine's worker cap (256) plus the
    /// serial shard 0.
    explicit metrics_registry(std::size_t shards = 257);

    // --- registration: serial call sites only, idempotent by name -------
    [[nodiscard]] counter_handle counter(std::string_view name);
    [[nodiscard]] gauge_handle gauge(std::string_view name);
    /// `bounds` must be strictly increasing; re-registering a histogram
    /// name requires identical bounds.
    [[nodiscard]] histogram_handle histogram(
        std::string_view name, std::vector<std::uint64_t> bounds);

    // --- updates: wait-free, shard owned by the calling thread ----------
    void add(std::size_t shard, counter_handle handle,
             std::uint64_t delta = 1);
    void set(std::size_t shard, gauge_handle handle, std::uint64_t order,
             double value);
    void observe(std::size_t shard, histogram_handle handle,
                 std::uint64_t value);

    /// Merge every shard into a name-sorted snapshot (serial call sites
    /// only).  Deterministic for deterministic producers.
    [[nodiscard]] metrics_snapshot snapshot() const;

    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

private:
    struct gauge_cell {
        bool set = false;
        std::uint64_t order = 0;
        double value = 0.0;
    };
    struct histogram_cell {
        std::vector<std::uint64_t> counts;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
    };
    /// Cache-line aligned: each shard is written by exactly one thread.
    struct alignas(64) metric_shard {
        std::vector<std::uint64_t> counters;
        std::vector<gauge_cell> gauges;
        std::vector<histogram_cell> histograms;
    };
    struct histogram_def {
        std::string name;
        std::vector<std::uint64_t> bounds;
    };

    std::vector<std::string> counter_names_;
    std::vector<std::string> gauge_names_;
    std::vector<histogram_def> histogram_defs_;
    std::vector<metric_shard> shards_;
};

/// Flat metrics JSON: one object with name-sorted "counters", "gauges"
/// and "histograms" sections.  Gauges use shortest round-trip formatting,
/// everything else is integral, so the bytes are deterministic.
void write_metrics_json(std::ostream& out, const metrics_snapshot& snapshot);
void write_metrics_json(std::ostream& out, const metrics_registry& registry);

/// Prometheus text exposition (version 0.0.4) of a snapshot, so external
/// scrapers can consume live fleet state.  Metric names are prefixed
/// `gb_` with every non-[a-zA-Z0-9_:] character mapped to '_'; histograms
/// render cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
/// Same determinism contract as the JSON writer: snapshot in, bytes out.
void write_prometheus_text(std::ostream& out,
                           const metrics_snapshot& snapshot);
void write_prometheus_text(std::ostream& out,
                           const metrics_registry& registry);

} // namespace gb

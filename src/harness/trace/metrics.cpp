#include "harness/trace/metrics.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <ostream>

#include "harness/trace/trace.hpp"
#include "util/contracts.hpp"

namespace gb {

namespace {

/// Shortest round-trip double, the same convention the journal wire
/// format uses: deterministic bytes, exact value.
std::string format_double(double value) {
    std::array<char, 32> buffer{};
    const auto [ptr, ec] =
        std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
    GB_ENSURES(ec == std::errc{});
    return std::string(buffer.data(), ptr);
}

std::uint32_t find_or_append(std::vector<std::string>& names,
                             std::string_view name) {
    for (std::uint32_t i = 0; i < names.size(); ++i) {
        if (names[i] == name) {
            return i;
        }
    }
    names.emplace_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
}

} // namespace

histogram_snapshot merge(const histogram_snapshot& a,
                         const histogram_snapshot& b) {
    if (a.counts.empty()) {
        return b;
    }
    if (b.counts.empty()) {
        return a;
    }
    GB_EXPECTS(a.bounds == b.bounds);
    histogram_snapshot out = a;
    for (std::size_t i = 0; i < out.counts.size(); ++i) {
        out.counts[i] += b.counts[i];
    }
    out.count += b.count;
    out.sum += b.sum;
    return out;
}

std::uint64_t metrics_snapshot::counter_value(std::string_view name) const {
    for (const auto& [n, v] : counters) {
        if (n == name) {
            return v;
        }
    }
    return 0;
}

double metrics_snapshot::gauge_value(std::string_view name) const {
    for (const auto& [n, v] : gauges) {
        if (n == name) {
            return v;
        }
    }
    return 0.0;
}

const histogram_snapshot* metrics_snapshot::histogram_named(
    std::string_view name) const {
    for (const auto& [n, v] : histograms) {
        if (n == name) {
            return &v;
        }
    }
    return nullptr;
}

metrics_registry::metrics_registry(std::size_t shards) : shards_(shards) {
    GB_EXPECTS(shards >= 1);
}

counter_handle metrics_registry::counter(std::string_view name) {
    return counter_handle{find_or_append(counter_names_, name)};
}

gauge_handle metrics_registry::gauge(std::string_view name) {
    return gauge_handle{find_or_append(gauge_names_, name)};
}

histogram_handle metrics_registry::histogram(
    std::string_view name, std::vector<std::uint64_t> bounds) {
    GB_EXPECTS(!bounds.empty());
    GB_EXPECTS(std::is_sorted(bounds.begin(), bounds.end()));
    GB_EXPECTS(std::adjacent_find(bounds.begin(), bounds.end()) ==
               bounds.end());
    for (std::uint32_t i = 0; i < histogram_defs_.size(); ++i) {
        if (histogram_defs_[i].name == name) {
            GB_EXPECTS(histogram_defs_[i].bounds == bounds);
            return histogram_handle{i};
        }
    }
    histogram_defs_.push_back(histogram_def{std::string(name),
                                            std::move(bounds)});
    return histogram_handle{
        static_cast<std::uint32_t>(histogram_defs_.size() - 1)};
}

void metrics_registry::add(std::size_t shard, counter_handle handle,
                           std::uint64_t delta) {
    GB_EXPECTS(shard < shards_.size());
    auto& counters = shards_[shard].counters;
    if (handle.id >= counters.size()) {
        // Registration is serial, so the global size is stable while
        // workers update; growing the private shard lazily is safe.
        counters.resize(counter_names_.size(), 0);
    }
    counters[handle.id] += delta;
}

void metrics_registry::set(std::size_t shard, gauge_handle handle,
                           std::uint64_t order, double value) {
    GB_EXPECTS(shard < shards_.size());
    auto& gauges = shards_[shard].gauges;
    if (handle.id >= gauges.size()) {
        gauges.resize(gauge_names_.size());
    }
    gauge_cell& cell = gauges[handle.id];
    if (!cell.set || order >= cell.order) {
        cell.set = true;
        cell.order = order;
        cell.value = value;
    }
}

void metrics_registry::observe(std::size_t shard, histogram_handle handle,
                               std::uint64_t value) {
    GB_EXPECTS(shard < shards_.size());
    auto& histograms = shards_[shard].histograms;
    if (handle.id >= histograms.size()) {
        histograms.resize(histogram_defs_.size());
    }
    histogram_cell& cell = histograms[handle.id];
    const std::vector<std::uint64_t>& bounds =
        histogram_defs_[handle.id].bounds;
    if (cell.counts.empty()) {
        cell.counts.assign(bounds.size() + 1, 0);
    }
    // Bounds are inclusive upper limits; values above the last bound land
    // in the overflow bucket.
    const std::size_t index = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin());
    ++cell.counts[index];
    ++cell.count;
    cell.sum += value;
}

metrics_snapshot metrics_registry::snapshot() const {
    metrics_snapshot out;
    out.counters.reserve(counter_names_.size());
    for (std::uint32_t id = 0; id < counter_names_.size(); ++id) {
        std::uint64_t total = 0;
        for (const metric_shard& shard : shards_) {
            if (id < shard.counters.size()) {
                total += shard.counters[id];
            }
        }
        out.counters.emplace_back(counter_names_[id], total);
    }
    out.gauges.reserve(gauge_names_.size());
    for (std::uint32_t id = 0; id < gauge_names_.size(); ++id) {
        gauge_cell best;
        for (const metric_shard& shard : shards_) {
            if (id < shard.gauges.size() && shard.gauges[id].set &&
                (!best.set || shard.gauges[id].order >= best.order)) {
                best = shard.gauges[id];
            }
        }
        if (best.set) {
            out.gauges.emplace_back(gauge_names_[id], best.value);
        }
    }
    out.histograms.reserve(histogram_defs_.size());
    for (std::uint32_t id = 0; id < histogram_defs_.size(); ++id) {
        histogram_snapshot merged;
        merged.bounds = histogram_defs_[id].bounds;
        merged.counts.assign(merged.bounds.size() + 1, 0);
        for (const metric_shard& shard : shards_) {
            if (id < shard.histograms.size() &&
                !shard.histograms[id].counts.empty()) {
                const histogram_cell& cell = shard.histograms[id];
                for (std::size_t b = 0; b < merged.counts.size(); ++b) {
                    merged.counts[b] += cell.counts[b];
                }
                merged.count += cell.count;
                merged.sum += cell.sum;
            }
        }
        out.histograms.emplace_back(histogram_defs_[id].name, merged);
    }
    const auto by_name = [](const auto& a, const auto& b) {
        return a.first < b.first;
    };
    std::sort(out.counters.begin(), out.counters.end(), by_name);
    std::sort(out.gauges.begin(), out.gauges.end(), by_name);
    std::sort(out.histograms.begin(), out.histograms.end(), by_name);
    return out;
}

void write_metrics_json(std::ostream& out,
                        const metrics_snapshot& snapshot) {
    out << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        out << (i > 0 ? "," : "") << "\n    \""
            << json_escape(snapshot.counters[i].first)
            << "\": " << snapshot.counters[i].second;
    }
    out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        out << (i > 0 ? "," : "") << "\n    \""
            << json_escape(snapshot.gauges[i].first)
            << "\": " << format_double(snapshot.gauges[i].second);
    }
    out << (snapshot.gauges.empty() ? "" : "\n  ")
        << "},\n  \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const histogram_snapshot& h = snapshot.histograms[i].second;
        out << (i > 0 ? "," : "") << "\n    \""
            << json_escape(snapshot.histograms[i].first)
            << "\": {\"bounds\": [";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            out << (b > 0 ? "," : "") << h.bounds[b];
        }
        out << "], \"counts\": [";
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            out << (b > 0 ? "," : "") << h.counts[b];
        }
        out << "], \"count\": " << h.count << ", \"sum\": " << h.sum << "}";
    }
    out << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

void write_metrics_json(std::ostream& out,
                        const metrics_registry& registry) {
    write_metrics_json(out, registry.snapshot());
}

namespace {

/// `gb_` prefix plus the exposition charset: anything outside
/// [a-zA-Z0-9_:] maps to '_' (dots foremost -- `fleet.cache_hits`
/// becomes `gb_fleet_cache_hits`).
std::string prometheus_name(std::string_view name) {
    std::string out = "gb_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

void write_prometheus_text(std::ostream& out,
                           const metrics_snapshot& snapshot) {
    for (const auto& [name, value] : snapshot.counters) {
        const std::string exposed = prometheus_name(name);
        out << "# TYPE " << exposed << " counter\n"
            << exposed << ' ' << value << '\n';
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const std::string exposed = prometheus_name(name);
        out << "# TYPE " << exposed << " gauge\n"
            << exposed << ' ' << format_double(value) << '\n';
    }
    for (const auto& [name, histogram] : snapshot.histograms) {
        const std::string exposed = prometheus_name(name);
        out << "# TYPE " << exposed << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
            cumulative += histogram.counts[b];
            out << exposed << "_bucket{le=\"" << histogram.bounds[b]
                << "\"} " << cumulative << '\n';
        }
        cumulative += histogram.counts.empty() ? 0 : histogram.counts.back();
        out << exposed << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
            << exposed << "_sum " << histogram.sum << '\n'
            << exposed << "_count " << histogram.count << '\n';
    }
}

void write_prometheus_text(std::ostream& out,
                           const metrics_registry& registry) {
    write_prometheus_text(out, registry.snapshot());
}

} // namespace gb

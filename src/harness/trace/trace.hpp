// Deterministic span tracing for the campaign/supervisor stack.
//
// The repo's core invariant is bitwise-identical output at any GB_JOBS, and
// that invariant extends to observability: a trace that changed with the
// worker count could never be a regression surface.  So nothing here reads
// a wall clock.  Every event carries a *deterministic ordering key*
//
//     (track, phase, major, minor)
//
// where `track` is the subsystem lane (campaign control, rig tasks,
// supervisor epochs), `phase` is allocated serially per engine run /
// supervisor attachment, `major` is the task or epoch index, and `minor`
// sequences events inside one scope.  Event times are *virtual ticks*
// local to the (phase, major) slot; the Chrome exporter lays slots out
// end-to-end per track, so the rendered timeline shows tasks in submission
// order regardless of which worker actually ran them.
//
// Recording is lock-free: the tracer owns a fixed array of per-worker
// shards (worker w appends only to shard w, serial code uses shard 0), and
// the export merges all shards with a stable sort on the ordering key.
// Because neither the key nor the tick values depend on scheduling, the
// exported JSON is byte-identical at any worker count -- the property the
// golden-trace tests pin down.
//
// Compile-time kill switch: building with -DGB_TRACE=OFF defines
// GB_TRACE_DISABLED, `trace_compiled_in` becomes false, and every call
// site guarded by `if constexpr (trace_compiled_in)` compiles to nothing
// (0% overhead, measured by bench/micro_perf.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace gb {

#ifdef GB_TRACE_DISABLED
inline constexpr bool trace_compiled_in = false;
#else
inline constexpr bool trace_compiled_in = true;
#endif

/// Well-known tracks (Chrome `tid` lanes).  Keep these stable: golden
/// traces encode them.
inline constexpr std::uint32_t track_campaign = 0;   ///< campaign control
inline constexpr std::uint32_t track_rig = 1;        ///< engine task scopes
inline constexpr std::uint32_t track_supervisor = 2; ///< supervisor epochs

/// Deterministic ordering key of one event.  Events sort by
/// (track, phase, major, minor); ties are impossible by construction when
/// producers sequence `minor` within a scope.
struct trace_point {
    std::uint32_t track = 0;
    std::uint32_t phase = 0;
    std::uint64_t major = 0;
    std::uint32_t minor = 0;
};

/// One completed span (or instant event, when `instant` is set).  Times
/// are virtual ticks relative to the event's (phase, major) slot; the
/// exporter assigns absolute timestamps deterministically.
struct trace_span {
    std::string name;
    std::string category;
    trace_point at;
    std::uint64_t start_ticks = 0;
    std::uint64_t duration_ticks = 0;
    bool instant = false;
    /// Pre-formatted key/value pairs (producers format deterministically).
    std::vector<std::pair<std::string, std::string>> args;
};

/// Span recorder with fixed lock-free shards.  Shard s may only be
/// appended to by one thread at a time (the engine maps worker w to shard
/// w; serial code uses shard 0).  Phases are allocated at serial points
/// (engine run start, supervisor attachment), so their order -- and with
/// it the merged event order -- is program order, not scheduling order.
class tracer {
public:
    /// Default shard budget covers the engine's worker cap (256) plus the
    /// serial shard 0.
    explicit tracer(std::size_t shards = 257);

    /// Allocate the next phase id (serial call sites only).
    [[nodiscard]] std::uint32_t allocate_phase();

    /// Append a span to `shard`.  Lock-free; the caller owns the shard.
    void record(std::size_t shard, trace_span span);

    /// Name a track in the exported trace (serial call sites only).
    void name_track(std::uint32_t track, std::string name);

    /// All recorded spans merged across shards in deterministic
    /// (track, phase, major, minor) order.
    [[nodiscard]] std::vector<trace_span> ordered_spans() const;

    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::string>>&
    track_names() const {
        return track_names_;
    }

    /// Drop all recorded spans, keep track names (serial call sites only).
    void clear();

private:
    /// Cache-line aligned so concurrent appends on neighbouring shards do
    /// not false-share.
    struct alignas(64) trace_shard {
        std::vector<trace_span> spans;
    };

    std::vector<trace_shard> shards_;
    std::vector<std::pair<std::uint32_t, std::string>> track_names_;
    std::uint32_t next_phase_ = 0;
};

/// Chrome trace_event JSON (open with chrome://tracing or Perfetto).
/// Slots are laid out end-to-end per track in key order, so the output is
/// a pure function of the recorded spans -- byte-identical at any worker
/// count for a deterministic producer.
void write_chrome_trace(std::ostream& out, const tracer& trace);

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
[[nodiscard]] std::string json_escape(std::string_view text);

} // namespace gb

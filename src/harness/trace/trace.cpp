#include "harness/trace/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>

#include "util/contracts.hpp"

namespace gb {

tracer::tracer(std::size_t shards) : shards_(shards) {
    GB_EXPECTS(shards >= 1);
}

std::uint32_t tracer::allocate_phase() { return next_phase_++; }

void tracer::record(std::size_t shard, trace_span span) {
    GB_EXPECTS(shard < shards_.size());
    shards_[shard].spans.push_back(std::move(span));
}

void tracer::name_track(std::uint32_t track, std::string name) {
    for (auto& [id, existing] : track_names_) {
        if (id == track) {
            existing = std::move(name);
            return;
        }
    }
    track_names_.emplace_back(track, std::move(name));
}

std::size_t tracer::size() const {
    std::size_t total = 0;
    for (const trace_shard& shard : shards_) {
        total += shard.spans.size();
    }
    return total;
}

void tracer::clear() {
    for (trace_shard& shard : shards_) {
        shard.spans.clear();
    }
}

std::vector<trace_span> tracer::ordered_spans() const {
    std::vector<trace_span> merged;
    merged.reserve(size());
    for (const trace_shard& shard : shards_) {
        merged.insert(merged.end(), shard.spans.begin(), shard.spans.end());
    }
    // The ordering key is deterministic per event; which shard an event
    // landed in is not.  A (non-stable) sort on the full key makes the
    // merged order a pure function of the recorded set as long as
    // producers never emit two events with identical keys -- ties fall
    // back to name so even a sloppy producer stays deterministic.
    std::sort(merged.begin(), merged.end(),
              [](const trace_span& a, const trace_span& b) {
                  return std::tie(a.at.track, a.at.phase, a.at.major,
                                  a.at.minor, a.start_ticks, a.name) <
                         std::tie(b.at.track, b.at.phase, b.at.major,
                                  b.at.minor, b.start_ticks, b.name);
              });
    return merged;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void write_args(std::ostream& out, const trace_span& span) {
    out << "\"args\":{";
    for (std::size_t i = 0; i < span.args.size(); ++i) {
        out << (i > 0 ? "," : "") << '"' << json_escape(span.args[i].first)
            << "\":\"" << json_escape(span.args[i].second) << '"';
    }
    out << '}';
}

} // namespace

void write_chrome_trace(std::ostream& out, const tracer& trace) {
    const std::vector<trace_span> spans = trace.ordered_spans();

    // Slot layout: within one track, every (phase, major) scope gets a
    // slot as wide as its own extent (at least one tick), and slots are
    // laid end-to-end in key order.  Timestamps therefore depend only on
    // the recorded spans, never on scheduling.
    struct slot_key {
        std::uint32_t track;
        std::uint32_t phase;
        std::uint64_t major;
        bool operator<(const slot_key& other) const {
            return std::tie(track, phase, major) <
                   std::tie(other.track, other.phase, other.major);
        }
    };
    std::map<slot_key, std::uint64_t> extent;
    for (const trace_span& span : spans) {
        std::uint64_t& width =
            extent[slot_key{span.at.track, span.at.phase, span.at.major}];
        width = std::max(
            {width, span.start_ticks + span.duration_ticks, std::uint64_t{1}});
    }
    std::map<slot_key, std::uint64_t> base;
    std::map<std::uint32_t, std::uint64_t> cursor;
    for (const auto& [key, width] : extent) {
        std::uint64_t& track_cursor = cursor[key.track];
        base[key] = track_cursor;
        track_cursor += width;
    }

    out << "{\"traceEvents\":[";
    bool first = true;
    const auto comma = [&] {
        if (!first) {
            out << ",";
        }
        first = false;
        out << "\n";
    };
    // Track-name metadata first, in track order: explicit name_track
    // entries win, tracks that only appear in spans get a default name.
    std::map<std::uint32_t, std::string> names;
    for (const trace_span& span : spans) {
        names.try_emplace(span.at.track,
                          span.at.track == track_campaign ? "campaign"
                          : span.at.track == track_rig    ? "rig"
                          : span.at.track == track_supervisor
                              ? "supervisor"
                              : "track " + std::to_string(span.at.track));
    }
    for (const auto& [track, name] : trace.track_names()) {
        names[track] = name;
    }
    for (const auto& [track, name] : names) {
        comma();
        out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << json_escape(name) << "\"}}";
    }
    for (const trace_span& span : spans) {
        const std::uint64_t ts =
            base[slot_key{span.at.track, span.at.phase, span.at.major}] +
            span.start_ticks;
        comma();
        out << "{\"ph\":\"" << (span.instant ? 'i' : 'X')
            << "\",\"pid\":0,\"tid\":" << span.at.track << ",\"ts\":" << ts;
        if (!span.instant) {
            out << ",\"dur\":" << span.duration_ticks;
        } else {
            out << ",\"s\":\"t\"";
        }
        out << ",\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
            << json_escape(span.category.empty() ? "gb" : span.category)
            << "\",";
        write_args(out, span);
        out << '}';
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

} // namespace gb

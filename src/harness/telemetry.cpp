#include "harness/telemetry.hpp"

namespace gb {

std::string_view to_string(epoch_disposition disposition) {
    switch (disposition) {
    case epoch_disposition::committed: return "committed";
    case epoch_disposition::sentinel: return "sentinel";
    case epoch_disposition::replayed: return "replayed";
    case epoch_disposition::aborted: return "aborted";
    case epoch_disposition::quarantined: return "quarantined";
    }
    return "?";
}

void health_telemetry::account(epoch_disposition disposition) {
    ++epochs;
    switch (disposition) {
    case epoch_disposition::committed: ++committed; break;
    case epoch_disposition::sentinel: ++sentinel_epochs; break;
    case epoch_disposition::replayed: ++replayed; break;
    case epoch_disposition::aborted: ++aborted; break;
    case epoch_disposition::quarantined: ++quarantined_epochs; break;
    }
}

double health_telemetry::mean_overhead_w() const {
    return epochs == 0 ? 0.0
                       : (sentinel_overhead_w_epochs +
                          degradation_overhead_w_epochs) /
                             static_cast<double>(epochs);
}

void health_telemetry::merge(const health_telemetry& other) {
    epochs += other.epochs;
    committed += other.committed;
    sentinel_epochs += other.sentinel_epochs;
    replayed += other.replayed;
    aborted += other.aborted;
    quarantined_epochs += other.quarantined_epochs;
    detected_sdc += other.detected_sdc;
    undetected_sdc += other.undetected_sdc;
    dram_ce_bursts += other.dram_ce_bursts;
    breaker_trips += other.breaker_trips;
    watchdog_aborts += other.watchdog_aborts;
    quarantine_occupancy += other.quarantine_occupancy;
    degraded_epochs += other.degraded_epochs;
    sentinel_overhead_w_epochs += other.sentinel_overhead_w_epochs;
    degradation_overhead_w_epochs += other.degradation_overhead_w_epochs;
}

} // namespace gb

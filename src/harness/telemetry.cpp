#include "harness/telemetry.hpp"

#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"

namespace gb {

std::string_view to_string(epoch_disposition disposition) {
    switch (disposition) {
    case epoch_disposition::committed: return "committed";
    case epoch_disposition::sentinel: return "sentinel";
    case epoch_disposition::replayed: return "replayed";
    case epoch_disposition::aborted: return "aborted";
    case epoch_disposition::quarantined: return "quarantined";
    }
    return "?";
}

void health_telemetry::account(epoch_disposition disposition) {
    ++epochs;
    switch (disposition) {
    case epoch_disposition::committed: ++committed; break;
    case epoch_disposition::sentinel: ++sentinel_epochs; break;
    case epoch_disposition::replayed: ++replayed; break;
    case epoch_disposition::aborted: ++aborted; break;
    case epoch_disposition::quarantined: ++quarantined_epochs; break;
    }
}

double health_telemetry::mean_overhead_w() const {
    return epochs == 0 ? 0.0
                       : (sentinel_overhead_w_epochs +
                          degradation_overhead_w_epochs) /
                             static_cast<double>(epochs);
}

void health_telemetry::merge(const health_telemetry& other) {
    epochs += other.epochs;
    committed += other.committed;
    sentinel_epochs += other.sentinel_epochs;
    replayed += other.replayed;
    aborted += other.aborted;
    quarantined_epochs += other.quarantined_epochs;
    detected_sdc += other.detected_sdc;
    undetected_sdc += other.undetected_sdc;
    dram_ce_bursts += other.dram_ce_bursts;
    breaker_trips += other.breaker_trips;
    watchdog_aborts += other.watchdog_aborts;
    quarantine_occupancy += other.quarantine_occupancy;
    degraded_epochs += other.degraded_epochs;
    sentinel_overhead_w_epochs += other.sentinel_overhead_w_epochs;
    degradation_overhead_w_epochs += other.degradation_overhead_w_epochs;
}

void health_telemetry::publish(metrics_registry& metrics, std::size_t shard,
                               std::uint64_t order) const {
    if constexpr (!trace_compiled_in) {
        return;
    }
    const auto put = [&](const char* name, double value) {
        metrics.set(shard, metrics.gauge(name), order, value);
    };
    put("health.epochs", static_cast<double>(epochs));
    put("health.committed", static_cast<double>(committed));
    put("health.sentinel_epochs", static_cast<double>(sentinel_epochs));
    put("health.replayed", static_cast<double>(replayed));
    put("health.aborted", static_cast<double>(aborted));
    put("health.quarantined_epochs",
        static_cast<double>(quarantined_epochs));
    put("health.detected_sdc", static_cast<double>(detected_sdc));
    put("health.undetected_sdc", static_cast<double>(undetected_sdc));
    put("health.dram_ce_bursts", static_cast<double>(dram_ce_bursts));
    put("health.breaker_trips", static_cast<double>(breaker_trips));
    put("health.watchdog_aborts", static_cast<double>(watchdog_aborts));
    put("health.quarantine_occupancy",
        static_cast<double>(quarantine_occupancy));
    put("health.degraded_epochs", static_cast<double>(degraded_epochs));
    put("health.sentinel_overhead_w_epochs", sentinel_overhead_w_epochs);
    put("health.degradation_overhead_w_epochs",
        degradation_overhead_w_epochs);
}

} // namespace gb

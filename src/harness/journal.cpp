#include "harness/journal.hpp"

#include <charconv>
#include <istream>
#include <ostream>

#include "harness/chaos/chaos.hpp"
#include "harness/fault_injection.hpp"
#include "harness/logfile.hpp"
#include "util/contracts.hpp"

namespace gb {

namespace {

constexpr std::string_view task_prefix = "task=";

} // namespace

campaign_journal::campaign_journal(const std::string& path)
    : file_(path, std::ios::out | std::ios::app), sink_(&file_) {
    GB_EXPECTS(file_.is_open());
}

campaign_journal::campaign_journal(std::ostream& sink) : sink_(&sink) {}

void campaign_journal::set_chaos(chaos_plan* chaos) {
    std::lock_guard<std::mutex> lock(mutex_);
    chaos_ = chaos;
}

void campaign_journal::append(std::size_t task_index, std::string_view line,
                              const fault_plan* faults) {
    std::string full;
    full += task_prefix;
    full += std::to_string(task_index);
    full += ' ';
    full += line;
    const bool corrupt =
        faults != nullptr && faults->corrupts_log(task_index);
    if (corrupt) {
        full = faults->corrupt_line(task_index, full);
    }
    full += '\n';
    std::lock_guard<std::mutex> lock(mutex_);
    if (chaos_ != nullptr) {
        if (const auto tear =
                chaos_->on_journal_append(bytes_written_, full.size())) {
            // Torn write: a prefix of the line reaches disk, the trailing
            // newline never does, and the "process" dies mid-append.  The
            // warm path detects the newline-less tail and self-heals by
            // truncating it.
            *sink_ << std::string_view(full).substr(
                0, static_cast<std::size_t>(tear->keep));
            sink_->flush();
            chaos_->kill(tear->site);
        }
    }
    *sink_ << full;
    sink_->flush(); // the journal's whole point: survive a kill -9
    bytes_written_ += full.size();
    ++appended_;
    if (corrupt) {
        ++corrupted_;
    }
}

std::uint64_t campaign_journal::appended() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return appended_;
}

std::uint64_t campaign_journal::corrupted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return corrupted_;
}

std::uint64_t campaign_journal::bytes_written() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_written_;
}

bool parse_journal_prefix(std::string_view line, std::size_t& task_index,
                          std::string_view& payload) {
    if (!line.starts_with(task_prefix)) {
        return false;
    }
    const std::string_view rest = line.substr(task_prefix.size());
    const std::size_t space = rest.find(' ');
    if (space == std::string_view::npos || space == 0) {
        return false;
    }
    const std::string_view index_token = rest.substr(0, space);
    std::size_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(index_token.data(),
                        index_token.data() + index_token.size(), parsed);
    if (ec != std::errc{} ||
        ptr != index_token.data() + index_token.size()) {
        return false;
    }
    task_index = parsed;
    payload = rest.substr(space + 1);
    return true;
}

cpu_journal_replay replay_cpu_journal(std::istream& in) {
    cpu_journal_replay replay;
    std::string line;
    while (std::getline(in, line)) {
        if (in.eof()) {
            // The line had no trailing newline: a live writer may still be
            // mid-append, so the bytes are a partial record, not
            // corruption.  Never parse them (a prefix of a record can
            // itself look like a record).
            replay.truncated_tail = !line.empty();
            break;
        }
        if (line.empty()) {
            continue;
        }
        std::size_t index = 0;
        std::string_view payload;
        run_record record;
        if (parse_journal_prefix(line, index, payload) &&
            parse_log_line(payload, record)) {
            replay.completed[index] = std::move(record);
        } else {
            ++replay.skipped;
        }
    }
    return replay;
}

dram_journal_replay replay_dram_journal(std::istream& in) {
    dram_journal_replay replay;
    std::string line;
    while (std::getline(in, line)) {
        if (in.eof()) {
            replay.truncated_tail = !line.empty();
            break;
        }
        if (line.empty()) {
            continue;
        }
        std::size_t index = 0;
        std::string_view payload;
        dram_run_record record;
        if (parse_journal_prefix(line, index, payload) &&
            parse_log_line(payload, record)) {
            replay.completed[index] = std::move(record);
        } else {
            ++replay.skipped;
        }
    }
    return replay;
}

} // namespace gb

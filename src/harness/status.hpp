// Live-status heartbeat for long campaigns: a single-file JSON snapshot a
// dashboard (or `gbreport status`) can poll while the rig grinds through a
// sweep.  Snapshots are published atomically -- written to a sibling temp
// file and renamed over the target -- so a reader never observes a
// half-written document, even mid-crash.
//
// Two snapshot flavours share one schema:
//   * live  (`running: true`)  -- progress counters plus a `live` object
//     with per-worker state and wall time; scheduling-dependent by nature.
//   * final (`running: false`) -- counters only, no `live` object.  The
//     final bytes are a pure function of campaign content and are
//     byte-identical at any GB_JOBS, like every other artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gb {

struct campaign_status {
    std::string campaign;
    bool running = false;
    std::uint64_t tasks_total = 0;
    std::uint64_t tasks_done = 0;
    std::uint64_t retries = 0;
    std::uint64_t injected_faults = 0;
    std::uint64_t aborted_rig = 0;
    std::uint64_t replayed = 0;
    std::uint64_t rig_downtime_ms = 0;
    /// Live-only fields, serialized under a `live` object when `running`
    /// and omitted entirely from the final snapshot.
    int workers = 0;
    std::vector<std::int64_t> worker_task; ///< current index, -1 idle
    double wall_elapsed_s = 0.0;
};

/// Serialize a snapshot (single line, trailing newline).  Field order is
/// fixed; the `live` object appears only when `running` is true.
[[nodiscard]] std::string write_status_json(const campaign_status& status);

/// Atomically publish a snapshot to `path` via write-temp-then-rename.
/// Returns false (and leaves any previous snapshot intact) on I/O errors.
bool publish_status(const std::string& path, const campaign_status& status);

} // namespace gb

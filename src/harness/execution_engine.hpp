// Deterministic parallel campaign execution.
//
// The paper's framework (Fig 2) evaluates thousands of (setup x repetition)
// cells per campaign.  Both campaign runners (CPU and DRAM) enumerate their
// sweep grids into a flat task list and hand it to this engine, which runs
// the tasks on a pool of worker threads.  Determinism is preserved by
// construction:
//
//   * every task owns an independent RNG seed derived with splitmix64 from
//     (base_seed, task_index) -- no draw ever crosses a task boundary;
//   * every task writes only to its own index-addressed result slot, so
//     collection order equals submission order;
//   * shared model state (chip, memory, profiles) is read-only during a run.
//
// Consequently the output is bitwise identical to the 1-worker (serial) run
// regardless of thread count or scheduling.  Worker count comes from the
// options, the GB_JOBS environment variable, or hardware_concurrency, in
// that order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gb {

struct execution_options {
    /// Worker threads; <= 0 means GB_JOBS env var, else
    /// hardware_concurrency.
    int workers = 0;
    /// Root of the per-task seed derivation.
    std::uint64_t base_seed = 0;
    /// Campaign name used in progress/summary log lines (empty: quiet).
    std::string campaign;
};

/// Everything a task may depend on.  Tasks must derive all randomness from
/// `seed` and must not read `worker` for anything that affects results.
struct task_context {
    std::size_t index = 0;  ///< position in the flat task list
    std::uint64_t seed = 0; ///< splitmix64(base_seed, index)
    int worker = 0;         ///< executing worker id (observability only)
};

/// Observability record of one engine run.  Timing and per-worker counts
/// are scheduling-dependent; the histogram and task count are deterministic.
struct execution_stats {
    std::size_t tasks = 0;
    int workers = 0;
    double wall_seconds = 0.0;
    /// Tasks per outcome bucket (the task function's return value); tasks
    /// returning a negative bucket are not counted.
    std::vector<std::uint64_t> outcome_histogram;
    std::vector<std::uint64_t> tasks_per_worker;

    [[nodiscard]] double runs_per_second() const;
    /// Load balance in (0, 1]: mean tasks/worker over max tasks/worker.
    [[nodiscard]] double worker_utilization() const;
    /// Accumulate another run (multi-phase campaigns sum their phases).
    void merge(const execution_stats& other);
};

/// Per-task seed: splitmix64 stream over (base_seed, task_index).
[[nodiscard]] std::uint64_t derive_task_seed(std::uint64_t base_seed,
                                             std::uint64_t task_index);

/// Effective worker count for a request (<= 0: GB_JOBS, then
/// hardware_concurrency; always >= 1).
[[nodiscard]] int resolve_worker_count(int requested);

class execution_engine {
public:
    /// A task runs one (setup, repetition) cell and returns its outcome
    /// bucket for the histogram (or a negative value for "no bucket").
    /// Tasks run concurrently: they must only write state owned by their
    /// own index.
    using task_fn = std::function<int(const task_context&)>;

    explicit execution_engine(execution_options options = {});

    /// Run `task_count` tasks; task i sees index `first_index + i` (the
    /// offset keeps seeds stable when a sweep is issued in chunks).  Blocks
    /// until all tasks finish; rethrows the first task exception after the
    /// pool drains.
    execution_stats run(std::size_t task_count, const task_fn& task,
                        std::size_t first_index = 0) const;

    [[nodiscard]] int workers() const { return workers_; }

private:
    execution_options options_;
    int workers_;
};

} // namespace gb

// Deterministic parallel campaign execution.
//
// The paper's framework (Fig 2) evaluates thousands of (setup x repetition)
// cells per campaign.  Both campaign runners (CPU and DRAM) enumerate their
// sweep grids into a flat task list and hand it to this engine, which runs
// the tasks on a pool of worker threads.  Determinism is preserved by
// construction:
//
//   * every task owns an independent RNG seed derived with splitmix64 from
//     (base_seed, task_index) -- no draw ever crosses a task boundary;
//   * every task writes only to its own index-addressed result slot, so
//     collection order equals submission order;
//   * shared model state (chip, memory, profiles) is read-only during a run.
//
// Consequently the output is bitwise identical to the 1-worker (serial) run
// regardless of thread count or scheduling.  Worker count comes from the
// options, the GB_JOBS environment variable, or hardware_concurrency, in
// that order.
//
// The engine also models the rig's fault path: an optional `fault_plan`
// injects hang/crash/power-switch faults per task attempt, the engine
// retries with exponential backoff inside a bounded budget (the watchdog
// monitor power-cycling the board), and a task whose budget is exhausted is
// handed back to its owner once with `task_context::aborted` set so the
// campaign records an aborted-rig outcome instead of dying.  Fault draws
// are keyed by (task index, attempt), never by worker or wall clock, so a
// faulty campaign is exactly as reproducible as a healthy one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gb {

class fault_plan;
class tracer;
class metrics_registry;
class timeline_recorder;

struct execution_options {
    /// Worker threads; <= 0 means GB_JOBS env var, else
    /// hardware_concurrency.
    int workers = 0;
    /// Root of the per-task seed derivation.
    std::uint64_t base_seed = 0;
    /// Campaign name used in progress/summary log lines (empty: quiet).
    std::string campaign;
    /// Injected rig faults (null: healthy rig, no retry machinery runs).
    const fault_plan* faults = nullptr;
    /// Attempts per task before the engine gives up and reports the task
    /// as aborted (>= 1).  Only consulted when a fault plan is present.
    int retry_budget = 3;
    /// Real sleep before retry k of a task: backoff_base_s * 2^k seconds.
    /// 0 (the default) retries immediately -- the simulated recovery time
    /// is charged to execution_stats::rig_downtime_s either way.
    double backoff_base_s = 0.0;
    /// Journal-resume predicate: tasks whose absolute index tests true are
    /// re-issued with `task_context::replayed` set and no fault injection
    /// (their record was already recovered from the journal).
    std::function<bool(std::size_t)> already_complete;
    /// Deterministic trace sink (null: no tracing).  Each run allocates one
    /// phase, emits a campaign span on track_campaign and one task span per
    /// task on track_rig; worker w records into shard 1 + w, so the tracer
    /// needs at least workers + 1 shards (the default 257 always fits).
    tracer* trace = nullptr;
    /// Deterministic metrics sink (null: no metrics).  Same shard mapping
    /// as `trace`.
    metrics_registry* metrics = nullptr;
    /// Deterministic time-series sink (null: no timeline).  Workers record
    /// per-task outcomes into index-owned slots during the run; after the
    /// pool drains the engine walks them serially in index order and
    /// appends `engine.progress` / `engine.retries` / `engine.downtime_ms`
    /// samples at each progress decile, so the series are a pure function
    /// of campaign content at any worker count.
    timeline_recorder* timeline = nullptr;
    /// Live-status heartbeat file (empty: disabled).  While the run is in
    /// flight the engine atomically republishes a `running: true` snapshot
    /// with per-worker state at every progress decile; on completion it
    /// publishes a final `running: false` snapshot whose bytes are a pure
    /// function of campaign content (status.hpp).
    std::string status_path;
};

/// Everything a task may depend on.  Tasks must derive all randomness from
/// `seed` and must not read `worker` for anything that affects results.
struct task_context {
    std::size_t index = 0;  ///< position in the flat task list
    std::uint64_t seed = 0; ///< splitmix64(base_seed, index)
    int worker = 0;         ///< executing worker id (observability only)
    int attempt = 0;        ///< surviving attempt (faulted ones come before)
    /// Retry budget exhausted: the task must record an aborted-rig result
    /// for its slot instead of executing.
    bool aborted = false;
    /// Journal resume: the slot was prefilled from the journal; the task
    /// must only report the replayed outcome bucket.
    bool replayed = false;
};

/// Observability record of one engine run.  Timing and per-worker counts
/// are scheduling-dependent; the histogram, task count and fault/retry
/// counters are deterministic.
struct execution_stats {
    std::size_t tasks = 0;
    int workers = 0;
    double wall_seconds = 0.0;
    /// Tasks per outcome bucket (the task function's return value); tasks
    /// returning a negative bucket are not counted.
    std::vector<std::uint64_t> outcome_histogram;
    std::vector<std::uint64_t> tasks_per_worker;

    // Rig-fault resilience counters.  With a fault plan active every
    // injected fault is accounted for exactly once:
    //   watchdog_timeouts + board_crashes + power_switch_failures
    //     == retries + aborted_rig
    // (each faulted attempt either got retried or exhausted its task's
    // budget).  All six are deterministic for a given plan.
    std::uint64_t retries = 0;           ///< faulted attempts that retried
    std::uint64_t aborted_rig = 0;       ///< tasks with budget exhausted
    std::uint64_t watchdog_timeouts = 0; ///< injected hangs caught by wdt
    std::uint64_t board_crashes = 0;     ///< injected mid-run crashes
    std::uint64_t power_switch_failures = 0; ///< injected actuation faults
    std::uint64_t corrupted_log_lines = 0;   ///< journal lines mangled
    std::uint64_t replayed_tasks = 0;        ///< slots restored from journal
    /// Simulated rig recovery time (watchdog timeouts, reboots, power
    /// cycles) summed over injected faults; deterministic, unlike
    /// wall_seconds.
    double rig_downtime_s = 0.0;

    [[nodiscard]] double runs_per_second() const;
    /// Load balance in (0, 1]: mean tasks/worker over max tasks/worker.
    [[nodiscard]] double worker_utilization() const;
    /// Total injected rig faults (= retries + aborted_rig).
    [[nodiscard]] std::uint64_t injected_faults() const;
    /// Accumulate another run (multi-phase campaigns sum their phases).
    void merge(const execution_stats& other);
};

/// Per-task seed: splitmix64 stream over (base_seed, task_index).
[[nodiscard]] std::uint64_t derive_task_seed(std::uint64_t base_seed,
                                             std::uint64_t task_index);

/// Effective worker count for a request (<= 0: GB_JOBS, then
/// hardware_concurrency; always >= 1).  Garbage, zero or negative GB_JOBS
/// values are rejected with a warning and fall back to
/// hardware_concurrency.
[[nodiscard]] int resolve_worker_count(int requested);

class execution_engine {
public:
    /// A task runs one (setup, repetition) cell and returns its outcome
    /// bucket for the histogram (or a negative value for "no bucket").
    /// Tasks run concurrently: they must only write state owned by their
    /// own index.
    using task_fn = std::function<int(const task_context&)>;

    explicit execution_engine(execution_options options = {});

    /// Run `task_count` tasks; task i sees index `first_index + i` (the
    /// offset keeps seeds stable when a sweep is issued in chunks).  Blocks
    /// until all tasks finish; rethrows the first task exception after the
    /// pool drains.  Injected rig faults never throw: they retry within the
    /// budget and then surface as aborted tasks.
    execution_stats run(std::size_t task_count, const task_fn& task,
                        std::size_t first_index = 0) const;

    [[nodiscard]] int workers() const { return workers_; }

private:
    execution_options options_;
    int workers_;
};

} // namespace gb

#include "harness/dram_campaign.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "harness/fault_injection.hpp"
#include "harness/journal.hpp"
#include "harness/logfile.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace gb {

void dram_campaign_spec::validate() const {
    GB_EXPECTS(!temperatures.empty());
    GB_EXPECTS(!refresh_periods.empty());
    GB_EXPECTS(!patterns.empty());
    GB_EXPECTS(repetitions >= 1);
    for (const milliseconds period : refresh_periods) {
        GB_EXPECTS(period.value >= nominal_refresh_period.value);
    }
}

std::string_view to_string(dram_run_outcome outcome) {
    switch (outcome) {
    case dram_run_outcome::clean: return "clean";
    case dram_run_outcome::contained: return "CE-contained";
    case dram_run_outcome::uncorrectable: return "UE";
    case dram_run_outcome::aborted_rig: return "ABORTED";
    }
    return "?";
}

milliseconds dram_campaign_result::max_safe_period(
    celsius temperature) const {
    milliseconds best = nominal_refresh_period;
    for (const milliseconds period : spec.refresh_periods) {
        bool all_ok = false;
        bool any = false;
        for (const dram_run_record& record : records) {
            if (record.temperature == temperature &&
                record.refresh_period == period) {
                if (!any) {
                    all_ok = true;
                    any = true;
                }
                all_ok = all_ok &&
                         (record.outcome == dram_run_outcome::clean ||
                          record.outcome == dram_run_outcome::contained);
            }
        }
        if (any && all_ok && period > best) {
            best = period;
        }
    }
    return best;
}

std::uint64_t dram_campaign_result::uncorrectable_records() const {
    return static_cast<std::uint64_t>(std::count_if(
        records.begin(), records.end(), [](const dram_run_record& r) {
            return r.outcome == dram_run_outcome::uncorrectable;
        }));
}

std::uint64_t dram_campaign_result::aborted_records() const {
    return static_cast<std::uint64_t>(std::count_if(
        records.begin(), records.end(), [](const dram_run_record& r) {
            return r.outcome == dram_run_outcome::aborted_rig;
        }));
}

namespace {

dram_campaign_result run_dram_campaign_impl(
    memory_system& memory, thermal_testbed& testbed,
    const dram_campaign_spec& spec, const dram_campaign_io& io,
    const std::map<std::size_t, dram_run_record>* restored) {
    spec.validate();
    GB_EXPECTS(testbed.dimm_count() >= memory.geometry().dimms);
    GB_EXPECTS(io.retry_budget >= 1);

    const std::size_t reps = static_cast<std::size_t>(spec.repetitions);
    const std::size_t per_pattern = reps;
    const std::size_t per_period = spec.patterns.size() * per_pattern;
    const std::size_t per_temperature =
        spec.refresh_periods.size() * per_period;
    const std::size_t total = spec.temperatures.size() * per_temperature;

    dram_campaign_result result;
    result.spec = spec;
    result.records.resize(total);

    // Route the plan's thermocouple mounting faults through the testbed's
    // existing injection hook, with the SPD cross-check armed so control
    // degrades gracefully instead of cooking the DIMM.  Runs before any
    // soak, like a mis-mounted sensor on the real rig.
    if (io.faults != nullptr) {
        for (int dimm = 0; dimm < testbed.dimm_count(); ++dimm) {
            const celsius offset = io.faults->thermocouple_offset(dimm);
            if (offset.value != 0.0) {
                testbed.inject_thermocouple_fault(dimm, offset);
                ++result.thermocouple_faults;
                log_debug("fault plan: thermocouple offset ", offset.value,
                          " C injected on DIMM ", dimm);
            }
        }
        if (result.thermocouple_faults > 0) {
            testbed.enable_spd_cross_check(celsius{2.0});
        }
    }

    // Journal-resume bookkeeping: prefill restored slots; the engine skips
    // fault injection for them and the task only reports the replayed
    // outcome bucket.
    std::vector<char> completed(total, 0);
    if (restored != nullptr) {
        for (const auto& [index, record] : *restored) {
            if (index < total) {
                result.records[index] = record;
                completed[index] = 1;
            }
        }
    }

    execution_options options;
    options.workers = spec.workers;
    options.base_seed = spec.base_seed;
    options.campaign = "dram_campaign";
    options.faults = io.faults;
    options.retry_budget = io.retry_budget;
    options.backoff_base_s = io.backoff_base_s;
    options.trace = io.trace;
    options.metrics = io.metrics;
    options.status_path = io.status_path;
    if (restored != nullptr) {
        options.already_complete = [&completed](std::size_t index) {
            return completed[index] != 0;
        };
    }
    const execution_engine engine(options);

    for (std::size_t t = 0; t < spec.temperatures.size(); ++t) {
        const celsius temperature = spec.temperatures[t];
        // The soak is inherently serial: every scan of this block sees the
        // same regulated thermal state.  On resume the soak re-runs in
        // full -- thermal state is not journaled, it is reproduced.
        testbed.set_all_targets(temperature);
        testbed.run(/*duration_s=*/2400.0, /*control_period_s=*/1.0,
                    /*settle_s=*/900.0);
        testbed.apply_to(memory);
        double regulation = 0.0;
        for (int dimm = 0; dimm < memory.geometry().dimms; ++dimm) {
            regulation = std::max(regulation, testbed.max_deviation_c(dimm));
        }

        // The (period x pattern x repetition) grid of scans, flattened in
        // the legacy nested-loop order.  Tasks only read the memory system:
        // the refresh period travels as a scan parameter, and scan N keeps
        // the serial seed sequence base_seed + N.
        const execution_stats stats = engine.run(
            per_temperature,
            [&](const task_context& ctx) {
                dram_run_record& record = result.records[ctx.index];
                if (ctx.replayed) {
                    return static_cast<int>(record.outcome);
                }
                const std::size_t within = ctx.index - t * per_temperature;
                record.temperature = temperature;
                record.refresh_period =
                    spec.refresh_periods[within / per_period];
                record.pattern =
                    spec.patterns[(within % per_period) / per_pattern];
                record.repetition = static_cast<int>(within % per_pattern);
                record.regulation_deviation_c = regulation;
                if (ctx.aborted) {
                    // Rig retry budget exhausted: no scan data for this
                    // cell; the campaign degrades instead of dying.
                    record.scan = scan_result{};
                    record.outcome = dram_run_outcome::aborted_rig;
                } else {
                    record.scan = memory.run_dpbench(
                        record.pattern, spec.base_seed + ctx.index,
                        record.refresh_period);
                    if (record.scan.failed_cells == 0) {
                        record.outcome = dram_run_outcome::clean;
                    } else if (record.scan.fully_corrected()) {
                        record.outcome = dram_run_outcome::contained;
                    } else {
                        record.outcome = dram_run_outcome::uncorrectable;
                    }
                }
                if (io.journal != nullptr) {
                    io.journal->append(ctx.index, to_log_line(record),
                                       io.faults);
                }
                return static_cast<int>(record.outcome);
            },
            /*first_index=*/t * per_temperature);
        result.stats.merge(stats);
    }

    if (result.thermocouple_faults > 0) {
        for (int dimm = 0; dimm < testbed.dimm_count(); ++dimm) {
            if (testbed.cross_check_alarm(dimm)) {
                ++result.cross_check_alarms;
            }
        }
    }
    if (io.journal != nullptr) {
        result.stats.corrupted_log_lines = io.journal->corrupted();
    }
    return result;
}

} // namespace

dram_campaign_result run_dram_campaign(memory_system& memory,
                                       thermal_testbed& testbed,
                                       const dram_campaign_spec& spec) {
    return run_dram_campaign_impl(memory, testbed, spec, {}, nullptr);
}

dram_campaign_result run_dram_campaign(memory_system& memory,
                                       thermal_testbed& testbed,
                                       const dram_campaign_spec& spec,
                                       const dram_campaign_io& io) {
    return run_dram_campaign_impl(memory, testbed, spec, io, nullptr);
}

dram_campaign_result resume_dram_campaign(memory_system& memory,
                                          thermal_testbed& testbed,
                                          const dram_campaign_spec& spec,
                                          std::istream& journal_in,
                                          const dram_campaign_io& io) {
    const dram_journal_replay replay = replay_dram_journal(journal_in);
    if (replay.skipped > 0) {
        log_info("dram_campaign resume: ", replay.completed.size(),
                 " records restored, ", replay.skipped,
                 " journal lines unrecoverable (their tasks re-run)");
    }
    return run_dram_campaign_impl(memory, testbed, spec, io,
                                  &replay.completed);
}

void write_dram_campaign_csv(std::ostream& out,
                             const dram_campaign_result& result) {
    csv_writer writer(out, {"temperature_c", "refresh_ms", "relaxation",
                            "pattern", "repetition", "failed_bits",
                            "ce_words", "ue_words", "outcome",
                            "regulation_dev_c"});
    for (const dram_run_record& record : result.records) {
        writer.write_row(
            {csv_number(record.temperature.value, 1),
             csv_number(record.refresh_period.value, 0),
             csv_number(record.refresh_period.value / 64.0, 1),
             std::string(to_string(record.pattern)),
             std::to_string(record.repetition),
             std::to_string(record.scan.failed_cells),
             std::to_string(record.scan.ce_words),
             std::to_string(record.scan.ue_words + record.scan.sdc_words),
             std::string(to_string(record.outcome)),
             csv_number(record.regulation_deviation_c, 2)});
    }
}

} // namespace gb

#include "harness/dram_campaign.hpp"

#include <algorithm>
#include <ostream>

#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace gb {

void dram_campaign_spec::validate() const {
    GB_EXPECTS(!temperatures.empty());
    GB_EXPECTS(!refresh_periods.empty());
    GB_EXPECTS(!patterns.empty());
    GB_EXPECTS(repetitions >= 1);
    for (const milliseconds period : refresh_periods) {
        GB_EXPECTS(period.value >= nominal_refresh_period.value);
    }
}

std::string_view to_string(dram_run_outcome outcome) {
    switch (outcome) {
    case dram_run_outcome::clean: return "clean";
    case dram_run_outcome::contained: return "CE-contained";
    case dram_run_outcome::uncorrectable: return "UE";
    }
    return "?";
}

milliseconds dram_campaign_result::max_safe_period(
    celsius temperature) const {
    milliseconds best = nominal_refresh_period;
    for (const milliseconds period : spec.refresh_periods) {
        bool all_ok = false;
        bool any = false;
        for (const dram_run_record& record : records) {
            if (record.temperature == temperature &&
                record.refresh_period == period) {
                if (!any) {
                    all_ok = true;
                    any = true;
                }
                all_ok = all_ok &&
                         record.outcome != dram_run_outcome::uncorrectable;
            }
        }
        if (any && all_ok && period > best) {
            best = period;
        }
    }
    return best;
}

std::uint64_t dram_campaign_result::uncorrectable_records() const {
    return static_cast<std::uint64_t>(std::count_if(
        records.begin(), records.end(), [](const dram_run_record& r) {
            return r.outcome == dram_run_outcome::uncorrectable;
        }));
}

dram_campaign_result run_dram_campaign(memory_system& memory,
                                       thermal_testbed& testbed,
                                       const dram_campaign_spec& spec) {
    spec.validate();
    GB_EXPECTS(testbed.dimm_count() >= memory.geometry().dimms);

    const std::size_t reps = static_cast<std::size_t>(spec.repetitions);
    const std::size_t per_pattern = reps;
    const std::size_t per_period = spec.patterns.size() * per_pattern;
    const std::size_t per_temperature =
        spec.refresh_periods.size() * per_period;

    dram_campaign_result result;
    result.spec = spec;
    result.records.resize(spec.temperatures.size() * per_temperature);

    execution_options options;
    options.workers = spec.workers;
    options.base_seed = spec.base_seed;
    options.campaign = "dram_campaign";
    const execution_engine engine(options);

    for (std::size_t t = 0; t < spec.temperatures.size(); ++t) {
        const celsius temperature = spec.temperatures[t];
        // The soak is inherently serial: every scan of this block sees the
        // same regulated thermal state.
        testbed.set_all_targets(temperature);
        testbed.run(/*duration_s=*/2400.0, /*control_period_s=*/1.0,
                    /*settle_s=*/900.0);
        testbed.apply_to(memory);
        double regulation = 0.0;
        for (int dimm = 0; dimm < memory.geometry().dimms; ++dimm) {
            regulation = std::max(regulation, testbed.max_deviation_c(dimm));
        }

        // The (period x pattern x repetition) grid of scans, flattened in
        // the legacy nested-loop order.  Tasks only read the memory system:
        // the refresh period travels as a scan parameter, and scan N keeps
        // the serial seed sequence base_seed + N.
        const execution_stats stats = engine.run(
            per_temperature,
            [&](const task_context& ctx) {
                const std::size_t within = ctx.index - t * per_temperature;
                dram_run_record& record = result.records[ctx.index];
                record.temperature = temperature;
                record.refresh_period =
                    spec.refresh_periods[within / per_period];
                record.pattern =
                    spec.patterns[(within % per_period) / per_pattern];
                record.repetition = static_cast<int>(within % per_pattern);
                record.regulation_deviation_c = regulation;
                record.scan = memory.run_dpbench(
                    record.pattern, spec.base_seed + ctx.index,
                    record.refresh_period);
                if (record.scan.failed_cells == 0) {
                    record.outcome = dram_run_outcome::clean;
                } else if (record.scan.fully_corrected()) {
                    record.outcome = dram_run_outcome::contained;
                } else {
                    record.outcome = dram_run_outcome::uncorrectable;
                }
                return static_cast<int>(record.outcome);
            },
            /*first_index=*/t * per_temperature);
        result.stats.merge(stats);
    }
    return result;
}

void write_dram_campaign_csv(std::ostream& out,
                             const dram_campaign_result& result) {
    csv_writer writer(out, {"temperature_c", "refresh_ms", "relaxation",
                            "pattern", "repetition", "failed_bits",
                            "ce_words", "ue_words", "outcome",
                            "regulation_dev_c"});
    for (const dram_run_record& record : result.records) {
        writer.write_row(
            {csv_number(record.temperature.value, 1),
             csv_number(record.refresh_period.value, 0),
             csv_number(record.refresh_period.value / 64.0, 1),
             std::string(to_string(record.pattern)),
             std::to_string(record.repetition),
             std::to_string(record.scan.failed_cells),
             std::to_string(record.scan.ce_words),
             std::to_string(record.scan.ue_words + record.scan.sdc_words),
             std::string(to_string(record.outcome)),
             csv_number(record.regulation_deviation_c, 2)});
    }
}

} // namespace gb

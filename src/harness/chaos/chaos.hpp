// Deterministic chaos harness for the persistence seams of long-lived
// services (the fleet daemon foremost).
//
// The rig-fault plan (fault_injection.hpp) makes the *experiments* fail;
// this module makes the *service itself* fail, the way Scrooge-style
// undervolted servers do: killed mid-write, torn lines at the end of a
// journal, a snapshot temp file that never got renamed, a control command
// half-acknowledged.  A `chaos_plan` mirrors `fault_plan`'s design --
// every decision is a pure function of (plan seed, site, hit count), so a
// chaotic run is exactly as reproducible as a healthy one -- but instead
// of per-task draws it arms one-shot *kill-points* at named persistence
// seams:
//
//   * journal_append   -- torn/short write once N cumulative bytes have
//                         been appended (the line's tail never hits disk);
//   * snapshot_temp    -- killed mid temp-file write (torn temp), before
//                         the atomic rename;
//   * snapshot_rename  -- temp fully written, killed before rename(2)
//                         (reader keeps the previous snapshot);
//   * control_command  -- killed after acting on a control command but
//                         before the truncation ack (at-least-once
//                         redelivery on restart);
//   * cache_warm       -- killed while warming the cache from the journal
//                         on restart (recovery of the recovery path);
//   * timeline_append  -- torn/short write of an observatory record
//                         (timeline sample, alert event or epoch seal) on
//                         the hit-counted append of such a record.
//
// Firing either throws `chaos_crash` (in-process harnesses abandon the
// service object and restart from the on-disk bytes) or `_exit`s the
// process (the daemon, simulating `kill -9`: no destructors, no flushes).
// Recovery is then a *verified property*: fleet/recovery.hpp restarts
// from the post-crash bytes and asserts bitwise convergence with an
// unfaulted run.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gb {

/// A named persistence seam a kill-point can arm.
enum class chaos_site : std::uint8_t {
    journal_append,
    snapshot_temp,
    snapshot_rename,
    control_command,
    cache_warm,
    timeline_append,
};

[[nodiscard]] std::string_view to_string(chaos_site site);
[[nodiscard]] bool chaos_site_from_string(std::string_view text,
                                          chaos_site& site);

/// Thrown by `chaos_plan::kill` in throw mode, after the seam's partial
/// side effect (torn bytes, missing rename) is already on disk.  Catchers
/// must abandon the service object -- its in-memory state died with the
/// "process" -- and restart from the on-disk bytes.
class chaos_crash : public std::runtime_error {
public:
    explicit chaos_crash(chaos_site site);
    [[nodiscard]] chaos_site site() const { return site_; }

private:
    chaos_site site_;
};

/// One armed kill-point.  Each trigger fires at most once per plan.
struct chaos_trigger {
    chaos_site site = chaos_site::journal_append;
    /// `journal_append`: fire on the append that makes cumulative payload
    /// bytes reach `at`.  Every other site: fire on the `at`-th hit of
    /// the seam (1-based).
    std::uint64_t at = 1;
    /// Torn-write length for `journal_append`/`snapshot_temp`: bytes of
    /// the in-flight payload that reach disk before the kill.
    /// `keep_auto` derives a strictly-partial length from the plan seed.
    static constexpr std::uint64_t keep_auto = ~0ULL;
    std::uint64_t keep = keep_auto;
};

struct chaos_plan_config {
    /// Root of the deterministic torn-length derivation.
    std::uint64_t seed = 0;
    std::vector<chaos_trigger> triggers;
    /// What firing does.  `throw_crash` raises `chaos_crash` (in-process
    /// harnesses); `exit_process` calls `_exit(exit_code)` -- no stack
    /// unwinding, no stream flushes, the closest userspace gets to a
    /// power cut.
    enum class kill_mode : std::uint8_t { throw_crash, exit_process };
    kill_mode mode = kill_mode::throw_crash;
    int exit_code = 42;
};

/// A torn-write decision: write exactly `keep` bytes of the in-flight
/// payload, then die at `site`.
struct chaos_tear {
    chaos_site site = chaos_site::journal_append;
    std::uint64_t keep = 0;
};

class chaos_plan {
public:
    explicit chaos_plan(chaos_plan_config config);

    /// Journal seam: about to append `size` payload bytes on top of
    /// `written` cumulative bytes.  Engaged when a `journal_append`
    /// trigger's byte threshold falls inside this append.
    [[nodiscard]] std::optional<chaos_tear> on_journal_append(
        std::uint64_t written, std::uint64_t size);
    /// Snapshot temp-write seam (hit-counted); `size` bounds the tear.
    [[nodiscard]] std::optional<chaos_tear> on_snapshot_temp(
        std::uint64_t size);
    /// Snapshot rename seam: true means die before the rename.
    [[nodiscard]] bool on_snapshot_rename();
    /// Control seam: true means die after acting, before the ack.
    [[nodiscard]] bool on_control_command();
    /// Cache-warm seam, hit once per journal line read during warm.
    [[nodiscard]] bool on_cache_warm_line();
    /// Observatory seam, hit once per timeline/alert/seal record about to
    /// be journaled (hit-counted); `size` bounds the tear.
    [[nodiscard]] std::optional<chaos_tear> on_timeline_append(
        std::uint64_t size);

    /// Execute the kill decision for `site`: throw `chaos_crash` or
    /// `_exit` depending on the configured mode.  The caller must have
    /// already performed the seam's partial side effect.
    [[noreturn]] void kill(chaos_site site) const;

    /// Triggers that have fired so far.
    [[nodiscard]] std::uint64_t fired() const;

    [[nodiscard]] const chaos_plan_config& config() const { return config_; }

private:
    [[nodiscard]] std::uint64_t derive_keep(std::uint64_t hit,
                                            std::uint64_t size,
                                            std::uint64_t keep) const;

    chaos_plan_config config_;
    mutable std::mutex mutex_;
    std::vector<bool> fired_flags_;
    std::uint64_t hits_[6] = {0, 0, 0, 0, 0, 0}; ///< per-site seam hits
    std::uint64_t fired_count_ = 0;
};

/// Parse a CLI chaos spec: comma-separated `site@at[/keep]` triggers,
/// e.g. `journal_append@6000,snapshot_rename@2`.  False (with a
/// diagnostic in `error`) on malformed input; parsed triggers are
/// appended to `config.triggers`.
[[nodiscard]] bool parse_chaos_spec(std::string_view spec,
                                    chaos_plan_config& config,
                                    std::string& error);

/// Virtual seconds a probe is charged before re-plan round `round`
/// (1-based): `base_s * 2^(round-1)`.  Pure and deterministic -- the
/// degraded-mode backoff schedule tests pin it exactly.
[[nodiscard]] double replan_backoff_s(double base_s, int round);

} // namespace gb

#include "harness/chaos/chaos.hpp"

#include <charconv>
#include <unistd.h>

#include "harness/execution_engine.hpp"
#include "util/contracts.hpp"

namespace gb {

namespace {

// Domain separator for torn-length derivation, so chaos draws never alias
// the rig-fault or task-seed streams built from the same campaign seed.
constexpr std::uint64_t tear_domain = 0x746f726e2d777274ULL;

constexpr std::size_t site_count = 6;

std::size_t site_index(chaos_site site) {
    return static_cast<std::size_t>(site);
}

} // namespace

std::string_view to_string(chaos_site site) {
    switch (site) {
    case chaos_site::journal_append: return "journal_append";
    case chaos_site::snapshot_temp: return "snapshot_temp";
    case chaos_site::snapshot_rename: return "snapshot_rename";
    case chaos_site::control_command: return "control_command";
    case chaos_site::cache_warm: return "cache_warm";
    case chaos_site::timeline_append: return "timeline_append";
    }
    return "?";
}

bool chaos_site_from_string(std::string_view text, chaos_site& site) {
    for (std::size_t i = 0; i < site_count; ++i) {
        const auto candidate = static_cast<chaos_site>(i);
        if (text == to_string(candidate)) {
            site = candidate;
            return true;
        }
    }
    return false;
}

chaos_crash::chaos_crash(chaos_site site)
    : std::runtime_error("chaos kill-point fired at " +
                         std::string(to_string(site))),
      site_(site) {}

chaos_plan::chaos_plan(chaos_plan_config config)
    : config_(std::move(config)),
      fired_flags_(config_.triggers.size(), false) {
    for (const chaos_trigger& trigger : config_.triggers) {
        GB_EXPECTS(trigger.at >= 1);
    }
}

std::uint64_t chaos_plan::derive_keep(std::uint64_t hit, std::uint64_t size,
                                      std::uint64_t keep) const {
    if (size == 0) {
        return 0;
    }
    if (keep != chaos_trigger::keep_auto) {
        return keep < size ? keep : size - 1;
    }
    // Strictly partial: somewhere in [0, size) so the payload's trailing
    // newline (journal) or tail (snapshot temp) never reaches disk.
    const std::uint64_t draw =
        derive_task_seed(config_.seed ^ tear_domain, hit);
    return draw % size;
}

std::optional<chaos_tear> chaos_plan::on_journal_append(std::uint64_t written,
                                                        std::uint64_t size) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_[site_index(chaos_site::journal_append)];
    for (std::size_t t = 0; t < config_.triggers.size(); ++t) {
        const chaos_trigger& trigger = config_.triggers[t];
        if (fired_flags_[t] ||
            trigger.site != chaos_site::journal_append) {
            continue;
        }
        // Fire on the append whose bytes carry the cumulative count past
        // the trigger's byte threshold.
        if (written >= trigger.at || written + size < trigger.at) {
            continue;
        }
        fired_flags_[t] = true;
        ++fired_count_;
        return chaos_tear{chaos_site::journal_append,
                          derive_keep(trigger.at, size, trigger.keep)};
    }
    return std::nullopt;
}

std::optional<chaos_tear> chaos_plan::on_snapshot_temp(std::uint64_t size) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t hit =
        ++hits_[site_index(chaos_site::snapshot_temp)];
    for (std::size_t t = 0; t < config_.triggers.size(); ++t) {
        const chaos_trigger& trigger = config_.triggers[t];
        if (fired_flags_[t] || trigger.site != chaos_site::snapshot_temp ||
            hit != trigger.at) {
            continue;
        }
        fired_flags_[t] = true;
        ++fired_count_;
        return chaos_tear{chaos_site::snapshot_temp,
                          derive_keep(hit, size, trigger.keep)};
    }
    return std::nullopt;
}

bool chaos_plan::on_snapshot_rename() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t hit =
        ++hits_[site_index(chaos_site::snapshot_rename)];
    for (std::size_t t = 0; t < config_.triggers.size(); ++t) {
        const chaos_trigger& trigger = config_.triggers[t];
        if (!fired_flags_[t] &&
            trigger.site == chaos_site::snapshot_rename &&
            hit == trigger.at) {
            fired_flags_[t] = true;
            ++fired_count_;
            return true;
        }
    }
    return false;
}

bool chaos_plan::on_control_command() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t hit =
        ++hits_[site_index(chaos_site::control_command)];
    for (std::size_t t = 0; t < config_.triggers.size(); ++t) {
        const chaos_trigger& trigger = config_.triggers[t];
        if (!fired_flags_[t] &&
            trigger.site == chaos_site::control_command &&
            hit == trigger.at) {
            fired_flags_[t] = true;
            ++fired_count_;
            return true;
        }
    }
    return false;
}

bool chaos_plan::on_cache_warm_line() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t hit = ++hits_[site_index(chaos_site::cache_warm)];
    for (std::size_t t = 0; t < config_.triggers.size(); ++t) {
        const chaos_trigger& trigger = config_.triggers[t];
        if (!fired_flags_[t] && trigger.site == chaos_site::cache_warm &&
            hit == trigger.at) {
            fired_flags_[t] = true;
            ++fired_count_;
            return true;
        }
    }
    return false;
}

std::optional<chaos_tear> chaos_plan::on_timeline_append(std::uint64_t size) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t hit =
        ++hits_[site_index(chaos_site::timeline_append)];
    for (std::size_t t = 0; t < config_.triggers.size(); ++t) {
        const chaos_trigger& trigger = config_.triggers[t];
        if (fired_flags_[t] ||
            trigger.site != chaos_site::timeline_append ||
            hit != trigger.at) {
            continue;
        }
        fired_flags_[t] = true;
        ++fired_count_;
        return chaos_tear{chaos_site::timeline_append,
                          derive_keep(hit, size, trigger.keep)};
    }
    return std::nullopt;
}

void chaos_plan::kill(chaos_site site) const {
    if (config_.mode == chaos_plan_config::kill_mode::exit_process) {
        // No unwinding, no flushes: the closest userspace gets to yanking
        // the power cord mid-write.
        ::_exit(config_.exit_code);
    }
    throw chaos_crash(site);
}

std::uint64_t chaos_plan::fired() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return fired_count_;
}

bool parse_chaos_spec(std::string_view spec, chaos_plan_config& config,
                      std::string& error) {
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::size_t end =
            comma == std::string_view::npos ? spec.size() : comma;
        const std::string_view token = spec.substr(pos, end - pos);
        pos = end + 1;
        if (token.empty()) {
            if (comma == std::string_view::npos) {
                break;
            }
            error = "empty chaos trigger in spec '" + std::string(spec) +
                    "'";
            return false;
        }
        const std::size_t at_sep = token.find('@');
        if (at_sep == std::string_view::npos || at_sep == 0) {
            error = "chaos trigger '" + std::string(token) +
                    "' wants site@at[/keep]";
            return false;
        }
        chaos_trigger trigger;
        if (!chaos_site_from_string(token.substr(0, at_sep),
                                    trigger.site)) {
            error = "chaos trigger '" + std::string(token) +
                    "': unknown chaos site '" +
                    std::string(token.substr(0, at_sep)) + "'";
            return false;
        }
        std::string_view numbers = token.substr(at_sep + 1);
        std::string_view keep_text;
        const std::size_t slash = numbers.find('/');
        if (slash != std::string_view::npos) {
            keep_text = numbers.substr(slash + 1);
            numbers = numbers.substr(0, slash);
        }
        const auto parse_u64 = [](std::string_view text,
                                  std::uint64_t& out) {
            const auto [ptr, ec] = std::from_chars(
                text.data(), text.data() + text.size(), out);
            return ec == std::errc{} &&
                   ptr == text.data() + text.size();
        };
        if (!parse_u64(numbers, trigger.at) || trigger.at == 0) {
            error = "chaos trigger '" + std::string(token) +
                    "' wants a positive integer after '@'";
            return false;
        }
        if (!keep_text.empty() &&
            !parse_u64(keep_text, trigger.keep)) {
            error = "chaos trigger '" + std::string(token) +
                    "' wants an integer torn length after '/'";
            return false;
        }
        config.triggers.push_back(trigger);
        if (comma == std::string_view::npos) {
            break;
        }
    }
    return true;
}

double replan_backoff_s(double base_s, int round) {
    GB_EXPECTS(base_s >= 0.0);
    GB_EXPECTS(round >= 1);
    double backoff = base_s;
    for (int r = 1; r < round; ++r) {
        backoff *= 2.0;
    }
    return backoff;
}

} // namespace gb

// DRAM characterization campaigns: the memory-side counterpart of the CPU
// campaign runner.  A campaign sweeps (temperature x refresh period x data
// pattern) setups; for each setup the testbed regulates the DIMMs, the MCU
// is programmed through the same bounded path SLIMpro uses, a scan runs,
// and the parsing phase classifies the outcome (clean / CE-contained /
// uncorrectable) into records and the final CSV -- the flow behind Table I
// and Fig 8.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dram/memory_system.hpp"
#include "harness/execution_engine.hpp"
#include "thermal/testbed.hpp"
#include "util/units.hpp"

namespace gb {

struct dram_campaign_spec {
    std::vector<celsius> temperatures{celsius{50.0}, celsius{60.0}};
    std::vector<milliseconds> refresh_periods{milliseconds{64.0},
                                              milliseconds{2283.0}};
    std::vector<data_pattern> patterns{
        data_pattern::all_zeros, data_pattern::all_ones,
        data_pattern::checkerboard, data_pattern::random_data};
    /// Scan repetitions per setup (fresh seeds; with VRT enabled these
    /// observe different states).
    int repetitions = 1;
    std::uint64_t base_seed = 2018;
    /// Worker threads for the execution engine (0: GB_JOBS env var, then
    /// hardware_concurrency).  Results are identical for any value.
    int workers = 0;

    void validate() const;
};

/// How a DRAM setup's scan ended, in the CPU campaign's vocabulary.
enum class dram_run_outcome : std::uint8_t {
    clean,         ///< no failing bits at all
    contained,     ///< failures present, every word corrected (CE)
    uncorrectable, ///< at least one UE or miscorrection
    aborted_rig    ///< rig retry budget exhausted; no scan data
};

[[nodiscard]] std::string_view to_string(dram_run_outcome outcome);

struct dram_run_record {
    celsius temperature{0.0};
    milliseconds refresh_period{0.0};
    data_pattern pattern = data_pattern::all_zeros;
    int repetition = 0;
    scan_result scan;
    dram_run_outcome outcome = dram_run_outcome::clean;
    /// Worst regulation deviation during this setup's soak.
    double regulation_deviation_c = 0.0;
};

struct dram_campaign_result {
    dram_campaign_spec spec;
    std::vector<dram_run_record> records;
    /// Engine observability summed over the per-temperature sweeps (timing
    /// fields are scheduling-dependent; records above are not).
    execution_stats stats;
    /// Thermocouple mounting faults the fault plan injected, and how many
    /// of them the testbed's SPD cross-check caught (alarm raised, control
    /// fell back to the on-die sensor).
    std::uint64_t thermocouple_faults = 0;
    std::uint64_t cross_check_alarms = 0;

    /// Largest refresh period at which every record of a temperature is
    /// contained (or clean); nominal if none.  Aborted-rig records count
    /// as unsafe: a missing measurement must not certify a period.
    [[nodiscard]] milliseconds max_safe_period(celsius temperature) const;
    [[nodiscard]] std::uint64_t uncorrectable_records() const;
    [[nodiscard]] std::uint64_t aborted_records() const;
};

class campaign_journal;
class fault_plan;
class tracer;
class metrics_registry;

/// Rig I/O for a DRAM campaign: optional deterministic fault injection
/// (run faults into the engine, thermocouple faults into the testbed) and
/// crash-safe journaling of completed scan records.
struct dram_campaign_io {
    const fault_plan* faults = nullptr;
    campaign_journal* journal = nullptr;
    int retry_budget = 3;
    double backoff_base_s = 0.0;
    /// Deterministic observability sinks, forwarded to the execution
    /// engine (trace/trace.hpp); null disables.
    tracer* trace = nullptr;
    metrics_registry* metrics = nullptr;
    /// Live-status heartbeat file, forwarded to the execution engine
    /// (status.hpp); empty disables.
    std::string status_path;
};

/// Run the campaign: the testbed soaks the DIMMs at each temperature
/// (serial -- thermal state is shared), then the (period, pattern,
/// repetition) grid of scans runs on the parallel execution engine.  Scans
/// are const against the memory system (the refresh period is a per-task
/// parameter), and scan N keeps the legacy serial seed `base_seed + N`, so
/// the records and CSV are byte-identical to the historical serial runner
/// for any worker count.  The memory's study limits must cover the spec's
/// extremes.
[[nodiscard]] dram_campaign_result run_dram_campaign(
    memory_system& memory, thermal_testbed& testbed,
    const dram_campaign_spec& spec);
[[nodiscard]] dram_campaign_result run_dram_campaign(
    memory_system& memory, thermal_testbed& testbed,
    const dram_campaign_spec& spec, const dram_campaign_io& io);

/// Resume a killed campaign from its journal: completed task indices are
/// restored from `journal_in` (corrupt lines are skipped and re-run) and
/// only the remainder executes.  With fresh `memory`/`testbed` instances
/// seeded as in the original run, records and CSV are bitwise identical to
/// the uninterrupted campaign at any worker count.
[[nodiscard]] dram_campaign_result resume_dram_campaign(
    memory_system& memory, thermal_testbed& testbed,
    const dram_campaign_spec& spec, std::istream& journal_in,
    const dram_campaign_io& io = {});

/// Final CSV of the parsing phase.
void write_dram_campaign_csv(std::ostream& out,
                             const dram_campaign_result& result);

} // namespace gb

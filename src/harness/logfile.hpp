// Raw execution logs and the parsing phase that consumes them.
//
// The paper's framework (Fig 2) stores raw per-run log lines during the
// execution phase (over serial/network into cloud storage) and turns them
// into the final CSV in a separate parsing phase -- so a crashed board or a
// killed campaign loses at most the in-flight run.  This module provides
// that wire format: one self-describing `run=` line per record, plus a
// tolerant parser that skips boot noise and truncated lines (the log of a
// crashing machine is never clean).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "harness/campaign.hpp"

namespace gb {

/// Serialize one record as a single log line (no trailing newline).
[[nodiscard]] std::string to_log_line(const run_record& record);

/// Parse one log line; returns false (leaving `record` untouched) for lines
/// that are not well-formed run records -- boot messages, truncation,
/// corruption.
[[nodiscard]] bool parse_log_line(std::string_view line, run_record& record);

/// Write a whole campaign's records as raw log lines.
void write_raw_log(std::ostream& out, const campaign_result& result);

/// Parsing phase: recover every well-formed record from a raw log stream.
/// `skipped` (optional) receives the count of non-record lines.
[[nodiscard]] std::vector<run_record> parse_raw_log(std::istream& in,
                                                    std::size_t* skipped =
                                                        nullptr);

} // namespace gb

// Raw execution logs and the parsing phase that consumes them.
//
// The paper's framework (Fig 2) stores raw per-run log lines during the
// execution phase (over serial/network into cloud storage) and turns them
// into the final CSV in a separate parsing phase -- so a crashed board or a
// killed campaign loses at most the in-flight run.  This module provides
// that wire format: one self-describing `run=` line per CPU record and one
// `dram=` line per DRAM record, plus tolerant parsers that skip boot noise
// and truncated lines (the log of a crashing machine is never clean).
//
// Doubles are serialized in shortest round-trip form (std::to_chars), so a
// parsed record is bit-for-bit the record that was written -- the property
// the crash-safe campaign journal's resume path is built on.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/dram_campaign.hpp"

namespace gb {

/// Serialize one record as a single log line (no trailing newline).
[[nodiscard]] std::string to_log_line(const run_record& record);

/// Parse one log line; returns false (leaving `record` untouched) for lines
/// that are not well-formed run records -- boot messages, truncation,
/// corruption.
[[nodiscard]] bool parse_log_line(std::string_view line, run_record& record);

/// DRAM counterpart of the wire format: one `dram=` line per scan record,
/// carrying the full scan_result so resume reproduces records exactly.
[[nodiscard]] std::string to_log_line(const dram_run_record& record);
[[nodiscard]] bool parse_log_line(std::string_view line,
                                  dram_run_record& record);

/// Write a whole campaign's records as raw log lines.
void write_raw_log(std::ostream& out, const campaign_result& result);
void write_raw_log(std::ostream& out, const dram_campaign_result& result);

/// Parsing phase: recover every well-formed record from a raw log stream.
/// `skipped` (optional) receives the count of non-record lines.
[[nodiscard]] std::vector<run_record> parse_raw_log(std::istream& in,
                                                    std::size_t* skipped =
                                                        nullptr);
[[nodiscard]] std::vector<dram_run_record> parse_dram_raw_log(
    std::istream& in, std::size_t* skipped = nullptr);

} // namespace gb

// DRAM organization of the characterized server.
//
// The testbed is 32 GB of DDR3: 4 DIMMs, each with 2 ranks of nine Micron
// MT41J512M8-class chips (8 data + 1 ECC), i.e. the 72 chips of the paper.
// Each 4 Gb chip has 8 banks of 65536 rows x 1024 columns x 8 bits.  A rank
// reads 72 bits per column access -- one 8-bit slice per chip -- which is
// exactly one SECDED codeword.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/contracts.hpp"

namespace gb {

/// Geometry of one memory configuration.  Defaults are the X-Gene2 testbed.
struct dram_geometry {
    int dimms = 4;
    int ranks_per_dimm = 2;
    int data_chips_per_rank = 8; ///< plus one ECC chip per rank
    int banks_per_chip = 8;
    int rows_per_bank = 65536;
    int columns_per_row = 1024;
    int bits_per_column = 8; ///< x8 parts

    [[nodiscard]] int chips_per_rank() const {
        return data_chips_per_rank + 1;
    }
    [[nodiscard]] int total_chips() const {
        return dimms * ranks_per_dimm * chips_per_rank();
    }
    [[nodiscard]] int total_ranks() const { return dimms * ranks_per_dimm; }
    [[nodiscard]] std::int64_t cells_per_bank() const {
        return static_cast<std::int64_t>(rows_per_bank) * columns_per_row *
               bits_per_column;
    }
    [[nodiscard]] std::int64_t cells_per_chip() const {
        return cells_per_bank() * banks_per_chip;
    }
    /// Usable (data) capacity in bytes, ECC chips excluded.
    [[nodiscard]] std::int64_t data_bytes() const {
        return cells_per_chip() / 8 * data_chips_per_rank * total_ranks();
    }
    /// Total rows across all ranks (refresh is per rank-bank-row).
    [[nodiscard]] std::int64_t total_rows() const {
        return static_cast<std::int64_t>(total_ranks()) * banks_per_chip *
               rows_per_bank;
    }

    void validate() const {
        GB_EXPECTS(dimms >= 1 && ranks_per_dimm >= 1);
        GB_EXPECTS(data_chips_per_rank == 8); // one SECDED codeword per access
        GB_EXPECTS(banks_per_chip >= 1 && rows_per_bank >= 1);
        GB_EXPECTS(columns_per_row >= 1 && bits_per_column == 8);
    }
};

/// The paper's full 32 GB testbed (72 chips).
[[nodiscard]] dram_geometry xgene2_memory_geometry();

/// A single-DIMM configuration for fast tests.
[[nodiscard]] dram_geometry single_dimm_geometry();

/// Physical location of one DRAM cell.
struct cell_address {
    std::int16_t dimm = 0;
    std::int16_t rank = 0;
    std::int16_t chip = 0; ///< 0..7 data, 8 = ECC chip
    std::int16_t bank = 0;
    std::int32_t row = 0;
    std::int16_t column = 0;
    std::int8_t bit = 0; ///< bit within this chip's 8-bit column slice

    friend bool operator==(const cell_address&, const cell_address&) = default;
};

/// Identity of the 72-bit ECC codeword a cell belongs to: same rank, bank,
/// row and column across the nine chips.
struct codeword_address {
    std::int16_t dimm = 0;
    std::int16_t rank = 0;
    std::int16_t bank = 0;
    std::int32_t row = 0;
    std::int16_t column = 0;

    friend bool operator==(const codeword_address&,
                           const codeword_address&) = default;
    friend auto operator<=>(const codeword_address&,
                            const codeword_address&) = default;
};

[[nodiscard]] codeword_address codeword_of(const cell_address& cell);

/// Bit position (0..71) of a cell within its codeword: data chips occupy
/// bits 0..63 (chip * 8 + bit), the ECC chip bits 64..71.
[[nodiscard]] int codeword_bit_of(const cell_address& cell);

/// Stable 64-bit key for hashing/sorting cell addresses.
[[nodiscard]] std::uint64_t cell_key(const cell_address& cell);
[[nodiscard]] std::uint64_t codeword_key(const codeword_address& word);

} // namespace gb

// DRAM cell retention model and sparse weak-cell sampling.
//
// Simulating 2.75e11 cells individually is impossible and unnecessary: only
// the weak tail of the retention distribution matters for refresh-relaxation
// studies.  Retention times follow a lognormal whose deep tail is calibrated
// so that, aggregated across all 72 chips, each bank index holds roughly 200
// cells retaining less than 2.283 s at 50 C and ~3500 at 60 C (the paper's
// Table I).  This system-wide reading of Table I is the one consistent with
// the paper's finding that SECDED corrected every manifested error: ~28k
// scattered weak cells make two-in-one-codeword collisions vanishingly rare,
// whereas a per-chip reading (~2M cells) would force routine double-bit
// words.  Only cells below a
// study-dependent materialization threshold are instantiated, each with:
//   * a base retention time at the 50 C reference (inverse-transform sample
//     of the truncated lognormal tail),
//   * true-/anti-cell polarity (which logical value stores charge),
//   * a data-pattern-dependence (DPD) strength: the relative retention loss
//     under worst-case aggressor data (Liu et al., ISCA'13 [19]).
// Temperature accelerates leakage: retention halves every `halving_celsius`
// degrees (Arrhenius behaviour linearized over the studied range).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dram/topology.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace gb {

/// Population-level retention statistics.
struct retention_model {
    /// ln(seconds) location and shape of the retention lognormal at the
    /// reference temperature; with density_scale these put ~200 weak cells
    /// per bank index (system-wide) below 2.283 s at 50 C.
    double mu_log = 6.55;
    double sigma_log = 1.155;
    celsius reference{50.0};
    /// Degrees of temperature that halve retention.
    double halving_celsius = 10.0;
    /// Global density calibration knob: scales the lognormal tail so the
    /// whole-system per-bank-index weak-cell counts land on Table I
    /// (~200 at 50 C, ~3500 at 60 C under the 2.283 s period).
    double density_scale = 0.0104;
    /// Maximum relative retention loss under worst-case aggressor data.
    double max_dpd_strength = 0.15;
    /// Fraction of weak cells with variable retention time (VRT): such a
    /// cell toggles between its sampled (weak) state and a stronger state
    /// scan to scan, so its errors come and go between profiling rounds
    /// (Liu et al. [19]).  Default off to keep the Table I calibration.
    double vrt_fraction = 0.0;
    /// Retention multiplier of a VRT cell's strong state.
    double vrt_strong_ratio = 4.0;
    /// Probability that a VRT cell sits in its weak state during a given
    /// scan/window (real VRT cells spend most of their time strong).
    double vrt_weak_probability = 0.5;

    /// Multiplier on retention when moving from the reference to t.
    [[nodiscard]] double temperature_factor(celsius t) const;
    /// Convert a retention measured at temperature t to the reference.
    [[nodiscard]] double to_reference_seconds(double seconds, celsius t) const;
    /// P(base retention at reference < s).
    [[nodiscard]] double tail_probability(double seconds_at_reference) const;
    /// Expected weak cells among `cells` below the threshold (density-scaled).
    [[nodiscard]] double expected_weak_cells(
        std::int64_t cells, double threshold_at_reference_s) const;
};

/// One materialized weak cell.
struct weak_cell {
    cell_address address;
    float retention_at_reference_s = 0.0F;
    /// Relative retention loss under full aggression (0..max_dpd_strength).
    float dpd_strength = 0.0F;
    /// Anti-cell: logical 0 is the charged state.
    bool anti_cell = false;
    /// Variable-retention-time cell: toggles to a strong state some scans.
    bool vrt = false;

    /// Effective retention at temperature t under `aggression` in [0, 1].
    [[nodiscard]] double retention_seconds(const retention_model& model,
                                           celsius t,
                                           double aggression) const;

    /// Same computation with the temperature factor precomputed by the
    /// caller (`model.temperature_factor(t)`).  The factor is constant per
    /// DIMM in a scan, so hoisting it removes an exp2 per cell; the
    /// multiplication order matches retention_seconds exactly, keeping the
    /// result bitwise-identical (held by kernel_equivalence_test).
    [[nodiscard]] double retention_seconds_scaled(double temperature_factor,
                                                  double aggression) const;
};

/// Per-bank-index systematic density factors, normalized from the 60 C row
/// of the paper's Table I (bank-to-bank heterogeneity of ~16%).
[[nodiscard]] const std::array<double, 8>& bank_systematic_factors();

/// Deterministic sparse sampler: every (dimm, rank, chip, bank) gets a stable
/// stream derived from the system seed, so populations are reproducible
/// regardless of instantiation order.
class weak_cell_sampler {
public:
    weak_cell_sampler(retention_model model, dram_geometry geometry,
                      std::uint64_t seed);

    /// Chip-to-chip density variation (lognormal around 1).
    [[nodiscard]] double chip_factor(int dimm, int rank, int chip) const;

    /// Materialize all weak cells of one bank with base retention below the
    /// given reference-temperature threshold.
    [[nodiscard]] std::vector<weak_cell> sample_bank(
        int dimm, int rank, int chip, int bank,
        double threshold_at_reference_s) const;

    [[nodiscard]] const retention_model& model() const { return model_; }
    [[nodiscard]] const dram_geometry& geometry() const { return geometry_; }

private:
    retention_model model_;
    dram_geometry geometry_;
    std::uint64_t seed_;
};

} // namespace gb

#include "dram/power.hpp"

#include "util/contracts.hpp"

namespace gb {

watts dram_power_model::power(milliseconds refresh_period,
                              double bandwidth_gbps) const {
    GB_EXPECTS(refresh_period.value > 0.0);
    GB_EXPECTS(bandwidth_gbps >= 0.0);
    const double refresh_w =
        refresh_w_nominal * (nominal_period / refresh_period);
    return watts{background_w + refresh_w +
                 access_w_per_gbps * bandwidth_gbps};
}

double dram_power_model::refresh_relaxation_saving(
    milliseconds relaxed, double bandwidth_gbps) const {
    const watts nominal = power(nominal_period, bandwidth_gbps);
    const watts relaxed_power = power(relaxed, bandwidth_gbps);
    GB_ASSERT(nominal.value > 0.0);
    return (nominal.value - relaxed_power.value) / nominal.value;
}

} // namespace gb

#include "dram/profiling.hpp"

#include <unordered_set>

#include "util/contracts.hpp"

namespace gb {

std::uint64_t worst_case_population(const memory_system& memory) {
    const dram_geometry& g = memory.geometry();
    std::uint64_t total = 0;
    for (int dimm = 0; dimm < g.dimms; ++dimm) {
        for (int rank = 0; rank < g.ranks_per_dimm; ++rank) {
            for (int chip = 0; chip < g.chips_per_rank(); ++chip) {
                for (int bank = 0; bank < g.banks_per_chip; ++bank) {
                    total += memory.weak_cell_count(dimm, rank, chip, bank);
                }
            }
        }
    }
    return total;
}

profiling_result profile_weak_cells(const memory_system& memory, int rounds,
                                    data_pattern pattern,
                                    std::uint64_t base_seed) {
    GB_EXPECTS(rounds >= 1);

    profiling_result result;
    result.ground_truth = worst_case_population(memory);
    result.rounds.reserve(static_cast<std::size_t>(rounds));

    std::unordered_set<std::uint64_t> seen;
    for (int round = 0; round < rounds; ++round) {
        const std::vector<std::uint64_t> keys = memory.failing_cell_keys(
            pattern, base_seed + static_cast<std::uint64_t>(round));
        profiling_round record;
        record.round = round;
        record.observed = keys.size();
        for (const std::uint64_t key : keys) {
            record.discovered += seen.insert(key).second ? 1 : 0;
        }
        record.cumulative = seen.size();
        result.rounds.push_back(record);
    }
    return result;
}

} // namespace gb

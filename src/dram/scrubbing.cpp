#include "dram/scrubbing.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/contracts.hpp"

namespace gb {

namespace {

/// Word key and codeword bit of a failing cell key (re-derive the address
/// fields from the packed cell key layout: see cell_key()).
struct word_bit {
    std::uint64_t word = 0;
    int bit = 0;
};

word_bit split_key(std::uint64_t key) {
    // cell_key packs: dimm(3) rank(2) chip(4) bank(3) row(17) col(10) bit(3).
    const int bit_in_chip = static_cast<int>(key & 0x7);
    const std::uint64_t column = (key >> 3) & 0x3ff;
    const std::uint64_t row = (key >> 13) & 0x1ffff;
    const std::uint64_t bank = (key >> 30) & 0x7;
    const int chip = static_cast<int>((key >> 33) & 0xf);
    const std::uint64_t rank = (key >> 37) & 0x3;
    const std::uint64_t dimm = key >> 39;

    std::uint64_t word = dimm;
    word = word << 2 | rank;
    word = word << 3 | bank;
    word = word << 17 | row;
    word = word << 10 | column;
    return word_bit{word, chip * 8 + bit_in_chip};
}

} // namespace

std::vector<scrub_analysis_point> analyze_scrub_intervals(
    const memory_system& memory, int epochs,
    const std::vector<int>& scrub_cadences, std::uint64_t seed) {
    GB_EXPECTS(epochs >= 1);
    GB_EXPECTS(!scrub_cadences.empty());

    // One cold data image; each epoch is a fresh VRT-state window.  The
    // failing sets are shared by every cadence.
    std::vector<std::vector<std::uint64_t>> per_epoch;
    per_epoch.reserve(static_cast<std::size_t>(epochs));
    for (int epoch = 0; epoch < epochs; ++epoch) {
        per_epoch.push_back(memory.failing_cell_keys(
            data_pattern::random_data, seed,
            seed ^ (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(epoch) + 1))));
    }

    std::vector<scrub_analysis_point> results;
    results.reserve(scrub_cadences.size());
    for (const int cadence : scrub_cadences) {
        GB_EXPECTS(cadence >= 0);
        scrub_analysis_point point;
        point.scrub_every_epochs = cadence;

        // word -> set of stale bit positions accumulated since last scrub.
        std::unordered_map<std::uint64_t, std::unordered_set<int>> stale;
        std::unordered_set<std::uint64_t> ue_words;
        for (int epoch = 0; epoch < epochs; ++epoch) {
            if (cadence > 0 && epoch > 0 && epoch % cadence == 0) {
                // Patrol pass: every stale single-bit word is corrected and
                // rewritten; multi-bit words were already counted.
                for (const auto& [word, bits] : stale) {
                    point.scrub_corrections += bits.size();
                }
                stale.clear();
            }
            for (const std::uint64_t key : per_epoch[static_cast<
                     std::size_t>(epoch)]) {
                const word_bit wb = split_key(key);
                auto& bits = stale[wb.word];
                bits.insert(wb.bit);
                if (bits.size() >= 2) {
                    ue_words.insert(wb.word);
                }
            }
        }
        point.uncorrectable_words = ue_words.size();
        results.push_back(point);
    }
    return results;
}

} // namespace gb

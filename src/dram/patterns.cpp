#include "dram/patterns.hpp"

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gb {

std::string_view to_string(data_pattern pattern) {
    switch (pattern) {
    case data_pattern::all_zeros: return "all_0s";
    case data_pattern::all_ones: return "all_1s";
    case data_pattern::checkerboard: return "checkerboard";
    case data_pattern::random_data: return "random";
    }
    return "?";
}

const std::array<data_pattern, 4>& all_data_patterns() {
    static const std::array<data_pattern, 4> patterns{
        data_pattern::all_zeros, data_pattern::all_ones,
        data_pattern::checkerboard, data_pattern::random_data};
    return patterns;
}

namespace {

/// Stable per-cell hash mixed with a run seed, for random-pattern bits and
/// per-cell aggression draws.
std::uint64_t cell_hash(const cell_address& cell, std::uint64_t seed) {
    std::uint64_t state = cell_key(cell) ^ seed;
    return splitmix64(state);
}

/// Map a hash to [0, 1).
double hash_to_unit(std::uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

bool pattern_bit(data_pattern pattern, const cell_address& cell,
                 std::uint64_t seed) {
    switch (pattern) {
    case data_pattern::all_zeros:
        return false;
    case data_pattern::all_ones:
        return true;
    case data_pattern::checkerboard:
        // Alternating per physical neighbour in both row and column+bit
        // directions.
        return ((cell.row + cell.column * 8 + cell.bit) & 1) != 0;
    case data_pattern::random_data:
        return (cell_hash(cell, seed) & 1) != 0;
    }
    GB_ASSERT(false);
    return false;
}

pattern_stress stress_of(data_pattern pattern, const weak_cell& cell,
                         std::uint64_t seed) {
    pattern_stress stress;
    const bool stored = pattern_bit(pattern, cell.address, seed);
    const bool charged_level = !cell.anti_cell; // true-cell stores 1 charged
    stress.vulnerable = (stored == charged_level);
    if (!stress.vulnerable) {
        return stress;
    }
    switch (pattern) {
    case data_pattern::all_zeros:
    case data_pattern::all_ones:
        // Uniform neighbourhoods: essentially no coupling aggression.
        stress.aggression = 0.05;
        break;
    case data_pattern::checkerboard:
        // Strong structured coupling, but a fixed geometry that matches only
        // part of each cell's private worst-case combination.
        stress.aggression = 0.55;
        break;
    case data_pattern::random_data:
        // Random neighbourhoods hit each cell's worst-case combination with
        // some probability; per-cell draw in [0.5, 1.0].
        stress.aggression =
            0.5 + 0.5 * hash_to_unit(cell_hash(cell.address, seed ^
                                               0x9e3779b97f4a7c15ULL));
        break;
    }
    return stress;
}

pattern_stress stress_of_application_data(const weak_cell& cell,
                                          double ones_density,
                                          std::uint64_t seed) {
    GB_EXPECTS(ones_density >= 0.0 && ones_density <= 1.0);
    pattern_stress stress;
    const bool charged_level = !cell.anti_cell;
    const double p_stored_charged =
        charged_level ? ones_density : 1.0 - ones_density;
    const double u = hash_to_unit(cell_hash(cell.address, seed));
    stress.vulnerable = u < p_stored_charged;
    if (!stress.vulnerable) {
        return stress;
    }
    // Coupling scales with data entropy; the per-cell draw mirrors the
    // random DPBench but damped by 4 p (1 - p).
    const double entropy_factor = 4.0 * ones_density * (1.0 - ones_density);
    const double draw =
        0.5 + 0.5 * hash_to_unit(cell_hash(cell.address,
                                           seed ^ 0xda942042e4dd58b5ULL));
    stress.aggression = draw * entropy_factor;
    return stress;
}

} // namespace gb

// The simulated DRAM subsystem: topology + weak-cell populations + refresh
// control + per-DIMM temperature, with the MCU read path's SECDED ECC
// actually exercised on every affected codeword.
//
// The central question the paper asks of DRAM -- "which cells fail when the
// refresh period is relaxed N-fold at temperature T under data D, and does
// ECC contain them?" -- is answered by `run_dpbench` / `run_access_profile`.
// In refresh steady state a cell fails iff its effective retention is
// shorter than its effective refresh interval (the scheduled period, or the
// re-access interval for rows a workload touches faster than refresh).
#pragma once

#include <cstdint>
#include <vector>

#include "dram/patterns.hpp"
#include "dram/retention.hpp"
#include "dram/topology.hpp"
#include "util/units.hpp"

namespace gb {

/// Bounds of the characterization study; the sampler materializes exactly
/// the weak-cell tail these bounds can ever expose.
struct study_limits {
    celsius max_temperature{60.0};
    milliseconds max_refresh_period{2283.0};
};

/// JEDEC-nominal DDR3 refresh period.
inline constexpr milliseconds nominal_refresh_period{64.0};

/// Result of one full-memory scan (a DPBench or an application profile).
struct scan_result {
    std::uint64_t failed_cells = 0;   ///< unique leaking bit locations
    std::uint64_t affected_words = 0; ///< codewords with >= 1 failed bit
    std::uint64_t ce_words = 0;       ///< corrected by SECDED
    std::uint64_t ue_words = 0;       ///< detected uncorrectable
    std::uint64_t sdc_words = 0;      ///< miscorrected (3+ flips aliasing)
    std::int64_t scanned_bits = 0;    ///< denominator for BER
    /// Unique failing locations per bank index, summed over all chips.
    std::array<std::uint64_t, 8> per_bank_failures{};

    [[nodiscard]] double bit_error_rate() const;
    [[nodiscard]] bool fully_corrected() const {
        return ue_words == 0 && sdc_words == 0;
    }
    /// Largest per-bank failure count: a burst concentrated in one bank is
    /// a stronger degradation signal than the same total spread uniformly.
    [[nodiscard]] std::uint64_t max_bank_failures() const;
    /// Correctable-error burst: ECC held, but one scan produced at least
    /// `threshold` CE words.  DRAM reliability under relaxed refresh
    /// degrades gradually, so CE volume is the precursor signal the
    /// supervisor's circuit breakers watch before UEs ever appear.
    [[nodiscard]] bool ce_burst(std::uint64_t threshold) const {
        return ce_words >= threshold;
    }
};

/// DRAM-side behaviour of an application (the Rodinia runs of Fig 8).
struct access_profile {
    /// Fraction of memory the application's working set occupies.
    double footprint_fraction = 1.0;
    /// Fraction of the footprint whose rows are re-accessed faster than the
    /// refresh period (implicit refresh; the effect the paper credits for
    /// real workloads showing less BER than the random DPBench).
    double refreshed_fraction = 0.0;
    /// i.i.d. ones-density of the application's resident data.
    double ones_density = 0.5;
};

class memory_system {
public:
    memory_system(dram_geometry geometry, retention_model model,
                  std::uint64_t seed, study_limits limits = {});

    /// Uniform temperature across all DIMMs.
    void set_temperature(celsius t);
    /// Per-DIMM temperature (the thermal testbed heats DIMMs independently).
    void set_dimm_temperature(int dimm, celsius t);
    [[nodiscard]] celsius dimm_temperature(int dimm) const;

    void set_refresh_period(milliseconds period);
    [[nodiscard]] milliseconds refresh_period() const { return refresh_; }

    /// Scan the whole memory under a DPBench pattern at the current refresh
    /// period and temperatures.  `pattern_seed` fixes the random pattern's
    /// content and, for VRT cells, which retention state the scan observes.
    [[nodiscard]] scan_result run_dpbench(data_pattern pattern,
                                          std::uint64_t pattern_seed) const;

    /// Same scan evaluated at an explicit refresh period instead of the
    /// stored one.  Being const and side-effect free, this is the form the
    /// parallel campaign engine uses: concurrent tasks sweep different
    /// periods against one shared memory_system without mutating it.  The
    /// period must be within the study limits.
    ///
    /// The scan hoists the per-DIMM temperature factor (an exp2) out of the
    /// per-cell loop; the per-cell arithmetic is otherwise unchanged, so
    /// results are bitwise-identical to run_dpbench_reference (held by
    /// kernel_equivalence_test).
    [[nodiscard]] scan_result run_dpbench(data_pattern pattern,
                                          std::uint64_t pattern_seed,
                                          milliseconds refresh_period) const;

    /// Retained reference implementation of the explicit-period run_dpbench
    /// (per-cell temperature_factor recomputation, the pre-optimization code
    /// path).  Differential-testing twin only.
    [[nodiscard]] scan_result run_dpbench_reference(
        data_pattern pattern, std::uint64_t pattern_seed,
        milliseconds refresh_period) const;

    /// Keys (cell_key) of the cells that fail a DPBench scan: the raw
    /// material of retention profiling (dram/profiling.hpp) and scrub
    /// analysis (dram/scrubbing.hpp).  `vrt_seed` selects the VRT cells'
    /// per-window state independently of the data content; the two-argument
    /// form ties them together (each scan is its own window).
    [[nodiscard]] std::vector<std::uint64_t> failing_cell_keys(
        data_pattern pattern, std::uint64_t pattern_seed,
        std::uint64_t vrt_seed) const;
    [[nodiscard]] std::vector<std::uint64_t> failing_cell_keys(
        data_pattern pattern, std::uint64_t pattern_seed) const {
        return failing_cell_keys(pattern, pattern_seed, pattern_seed);
    }

    /// Evaluate an application's resident data under the current settings.
    [[nodiscard]] scan_result run_access_profile(const access_profile& app,
                                                 std::uint64_t seed) const;

    /// Unique weak cells in one bank with effective retention below the
    /// current refresh period at the bank's temperature, under the worst
    /// pattern of the DPBench suite (the paper's "unique error locations").
    [[nodiscard]] std::uint64_t weak_cell_count(int dimm, int rank, int chip,
                                                int bank) const;

    [[nodiscard]] const std::vector<weak_cell>& bank_cells(int dimm, int rank,
                                                           int chip,
                                                           int bank) const;
    [[nodiscard]] const dram_geometry& geometry() const { return geometry_; }
    [[nodiscard]] const retention_model& model() const { return model_; }
    [[nodiscard]] std::uint64_t total_weak_cells() const;

private:
    [[nodiscard]] std::size_t bank_index(int dimm, int rank, int chip,
                                         int bank) const;
    /// Retention of a cell during one scan: DPD aggression plus, for VRT
    /// cells, the per-scan strong/weak state draw.
    [[nodiscard]] double scan_retention_seconds(const weak_cell& cell,
                                                celsius t, double aggression,
                                                std::uint64_t scan_seed) const;
    /// Same with the DIMM's temperature factor precomputed by the caller;
    /// the hot-loop form used by the scans.
    [[nodiscard]] double scan_retention_seconds_scaled(
        const weak_cell& cell, double temperature_factor, double aggression,
        std::uint64_t scan_seed) const;
    /// Apply ECC to a set of failed cells, accumulating into `result`.
    void apply_ecc(std::vector<const weak_cell*>& failures,
                   std::uint64_t data_seed, scan_result& result) const;

    dram_geometry geometry_;
    retention_model model_;
    study_limits limits_;
    std::vector<celsius> dimm_temperature_;
    milliseconds refresh_ = nominal_refresh_period;
    /// Flat bank-major storage: [dimm][rank][chip][bank].
    std::vector<std::vector<weak_cell>> banks_;
};

} // namespace gb

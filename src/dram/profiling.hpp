// Retention-time profiling study (after Liu et al., ISCA'13 [19], whose
// methodology the paper adopts for its DPBenches).
//
// Profiling asks: how many scan rounds does it take to discover every cell
// that could ever fail at the target refresh period?  A single solid
// pattern finds only the cells vulnerable at that polarity and exerts no
// coupling stress; each *random* round draws fresh data, so different cells
// are vulnerable and differently aggressed -- coverage accumulates over
// rounds.  VRT cells (if enabled in the retention model) toggle between
// retention states and keep surfacing new locations even late in the
// profile, which is [19]'s core argument for why profiling is hard.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/memory_system.hpp"

namespace gb {

struct profiling_round {
    int round = 0;
    std::uint64_t observed = 0;   ///< failing locations this round
    std::uint64_t discovered = 0; ///< newly seen this round
    std::uint64_t cumulative = 0; ///< unique locations so far
};

struct profiling_result {
    std::vector<profiling_round> rounds;
    /// Ground truth: cells that could fail under worst-case data at the
    /// current settings (the profile's target population).
    std::uint64_t ground_truth = 0;

    [[nodiscard]] double coverage() const {
        return ground_truth == 0
                   ? 1.0
                   : static_cast<double>(rounds.empty()
                                             ? 0
                                             : rounds.back().cumulative) /
                         static_cast<double>(ground_truth);
    }
};

/// Run `rounds` scans of `pattern` with per-round seeds and accumulate the
/// unique failing locations.  Solid patterns saturate after one round;
/// random rounds keep discovering.
[[nodiscard]] profiling_result profile_weak_cells(const memory_system& memory,
                                                  int rounds,
                                                  data_pattern pattern,
                                                  std::uint64_t base_seed);

/// Ground-truth population: unique cells failable under worst-case
/// aggression at the memory's current refresh period and temperatures.
[[nodiscard]] std::uint64_t worst_case_population(const memory_system& memory);

} // namespace gb

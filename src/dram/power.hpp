// DRAM power model: background + refresh + access components.
//
// Refresh power scales inversely with the refresh period, so a 35x
// relaxation removes ~97% of it; what that is *worth* relative to total DRAM
// power depends on the workload's bandwidth (Fig 8b: nw saves 27.3%, the
// streaming kmeans only 9.4%).
#pragma once

#include "util/units.hpp"

namespace gb {

struct dram_power_model {
    /// Static background of the 4-DIMM set (precharge standby, PLL, ODT).
    double background_w = 4.0;
    /// Refresh power at the JEDEC-nominal 64 ms period.
    double refresh_w_nominal = 2.12;
    /// Read/write + activation energy per unit bandwidth.
    double access_w_per_gbps = 0.55;
    milliseconds nominal_period{64.0};

    /// Total DRAM power at a refresh period and application bandwidth.
    [[nodiscard]] watts power(milliseconds refresh_period,
                              double bandwidth_gbps) const;

    /// Fractional power saving of relaxing refresh from nominal to `relaxed`
    /// at the given bandwidth.
    [[nodiscard]] double refresh_relaxation_saving(milliseconds relaxed,
                                                   double bandwidth_gbps) const;
};

} // namespace gb

#include "dram/timing.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace gb {

void ddr3_timing::validate() const {
    GB_EXPECTS(tck_ns > 0.0);
    GB_EXPECTS(cl > 0 && trcd > 0 && trp > 0 && tras > 0);
    GB_EXPECTS(burst_length > 0 && banks > 0);
    GB_EXPECTS(trfc_ns > 0.0);
    GB_EXPECTS(refresh_slots > 0);
}

mcu_timing_model::mcu_timing_model(ddr3_timing timing, int channels,
                                   int bus_bytes)
    : timing_(timing), channels_(channels), bus_bytes_(bus_bytes) {
    timing.validate();
    GB_EXPECTS(channels >= 1);
    GB_EXPECTS(bus_bytes >= 1);
}

nanoseconds mcu_timing_model::row_hit_latency() const {
    const double clocks =
        static_cast<double>(timing_.cl) +
        static_cast<double>(timing_.burst_length) / 2.0;
    return nanoseconds{clocks * timing_.tck_ns};
}

nanoseconds mcu_timing_model::row_miss_latency() const {
    const double clocks =
        static_cast<double>(timing_.trcd + timing_.cl) +
        static_cast<double>(timing_.burst_length) / 2.0;
    return nanoseconds{clocks * timing_.tck_ns};
}

nanoseconds mcu_timing_model::row_conflict_latency() const {
    const double clocks =
        static_cast<double>(timing_.trp + timing_.trcd + timing_.cl) +
        static_cast<double>(timing_.burst_length) / 2.0;
    return nanoseconds{clocks * timing_.tck_ns};
}

nanoseconds mcu_timing_model::mean_latency(double row_hit_rate) const {
    GB_EXPECTS(row_hit_rate >= 0.0 && row_hit_rate <= 1.0);
    return nanoseconds{row_hit_rate * row_hit_latency().value +
                       (1.0 - row_hit_rate) *
                           row_conflict_latency().value};
}

double mcu_timing_model::channel_peak_gbps() const {
    // DDR: two transfers of bus_bytes per clock.
    return 2.0 * static_cast<double>(bus_bytes_) / timing_.tck_ns;
}

double mcu_timing_model::aggregate_peak_gbps() const {
    return channel_peak_gbps() * static_cast<double>(channels_);
}

double mcu_timing_model::refresh_time_fraction(
    milliseconds refresh_period) const {
    GB_EXPECTS(refresh_period.value > 0.0);
    const double trefi_ns = refresh_period.value * 1.0e6 /
                            static_cast<double>(timing_.refresh_slots);
    return std::min(1.0, timing_.trfc_ns / trefi_ns);
}

double mcu_timing_model::achievable_gbps(double row_hit_rate,
                                         double bank_parallelism,
                                         milliseconds refresh_period) const {
    GB_EXPECTS(row_hit_rate >= 0.0 && row_hit_rate <= 1.0);
    GB_EXPECTS(bank_parallelism >= 1.0);
    // A row hit keeps the data bus saturated (back-to-back bursts); a
    // conflict stalls its bank for the precharge+activate gap, which
    // `bank_parallelism` concurrent banks overlap.
    const double burst_ns =
        static_cast<double>(timing_.burst_length) / 2.0 * timing_.tck_ns;
    const double gap_ns =
        static_cast<double>(timing_.trp + timing_.trcd) * timing_.tck_ns;
    const double effective_gap =
        gap_ns / std::min(bank_parallelism,
                          static_cast<double>(timing_.banks));
    const double mean_service =
        row_hit_rate * burst_ns +
        (1.0 - row_hit_rate) * (burst_ns + effective_gap);
    const double bytes_per_burst =
        static_cast<double>(bus_bytes_ * timing_.burst_length);
    const double per_channel = bytes_per_burst / mean_service; // GB/s
    return per_channel * static_cast<double>(channels_) *
           (1.0 - refresh_time_fraction(refresh_period));
}

} // namespace gb

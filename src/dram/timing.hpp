// DDR3 memory-controller timing model.
//
// The X-Gene2's four MCUs each drive one DDR3-1600 channel.  This model
// provides the closed-form timing arithmetic a controller designer works
// with: access latency by row-buffer outcome, per-channel and aggregate
// bandwidth under a row-hit-rate/bank-parallelism characterization of the
// access stream, and the refresh tax -- the fraction of time a rank is
// unavailable because it is executing tRFC every tREFI.  The last item
// closes a loop the paper leaves implicit: relaxing the refresh period not
// only saves refresh *power* (Fig 8b) but also returns the blocked
// bandwidth to the application.
#pragma once

#include "util/units.hpp"

namespace gb {

/// JEDEC DDR3-1600 (800 MHz clock) timings for a 4 Gb part, in controller
/// clocks unless noted.
struct ddr3_timing {
    double tck_ns = 1.25; ///< clock period (DDR3-1600)
    int cl = 11;          ///< CAS latency
    int trcd = 11;        ///< RAS-to-CAS
    int trp = 11;         ///< precharge
    int tras = 28;        ///< activate-to-precharge
    int burst_length = 8; ///< transfers per column access
    double trfc_ns = 260.0; ///< refresh cycle time of a 4 Gb part
    int banks = 8;
    /// Rows per bank refreshed per all-bank refresh command (JEDEC spreads
    /// the array over 8192 tREFI slots per 64 ms).
    int refresh_slots = 8192;

    void validate() const;
};

class mcu_timing_model {
public:
    explicit mcu_timing_model(ddr3_timing timing = {}, int channels = 4,
                              int bus_bytes = 8);

    /// Column access latency when the row is already open (tCL + burst).
    [[nodiscard]] nanoseconds row_hit_latency() const;
    /// Closed row: activate first (tRCD + tCL + burst).
    [[nodiscard]] nanoseconds row_miss_latency() const;
    /// Row conflict: precharge, activate, then read.
    [[nodiscard]] nanoseconds row_conflict_latency() const;
    /// Mean latency for a stream with the given row-buffer hit rate,
    /// counting the non-hit remainder as conflicts (the pessimistic mix
    /// pointer-chasing produces).
    [[nodiscard]] nanoseconds mean_latency(double row_hit_rate) const;

    /// Peak transfer rate of one channel (DDR: 2 transfers per clock).
    [[nodiscard]] double channel_peak_gbps() const;
    /// Aggregate peak across the MCUs.
    [[nodiscard]] double aggregate_peak_gbps() const;
    /// Achievable bandwidth for a stream: row hits stream at the peak; the
    /// remainder pays the conflict gap, hidden by `bank_parallelism`
    /// concurrent banks.  Refresh unavailability is applied on top.
    [[nodiscard]] double achievable_gbps(double row_hit_rate,
                                         double bank_parallelism,
                                         milliseconds refresh_period) const;

    /// Fraction of time a rank is blocked by refresh at this period
    /// (tRFC / tREFI, with tREFI = period / refresh_slots).
    [[nodiscard]] double refresh_time_fraction(
        milliseconds refresh_period) const;

    [[nodiscard]] const ddr3_timing& timing() const { return timing_; }
    [[nodiscard]] int channels() const { return channels_; }

private:
    ddr3_timing timing_;
    int channels_;
    int bus_bytes_;
};

} // namespace gb

#include "dram/memory_system.hpp"

#include <algorithm>
#include <cmath>

#include "ecc/secded.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace gb {

double scan_result::bit_error_rate() const {
    return scanned_bits == 0 ? 0.0
                             : static_cast<double>(failed_cells) /
                                   static_cast<double>(scanned_bits);
}

std::uint64_t scan_result::max_bank_failures() const {
    return *std::max_element(per_bank_failures.begin(),
                             per_bank_failures.end());
}

memory_system::memory_system(dram_geometry geometry, retention_model model,
                             std::uint64_t seed, study_limits limits)
    : geometry_(geometry), model_(model), limits_(limits),
      dimm_temperature_(static_cast<std::size_t>(geometry.dimms),
                        model.reference) {
    geometry_.validate();
    GB_EXPECTS(limits_.max_refresh_period.value > 0.0);

    // Materialization threshold: the weakest base retention that any study
    // within `limits` could expose -- the maximum refresh period, at the
    // hottest temperature, under full data-pattern aggression.
    const double threshold_at_reference =
        model_.to_reference_seconds(limits_.max_refresh_period.seconds(),
                                    limits_.max_temperature) /
        (1.0 - model_.max_dpd_strength);

    const weak_cell_sampler sampler(model_, geometry_, seed);
    const std::size_t bank_count =
        static_cast<std::size_t>(geometry_.dimms) *
        static_cast<std::size_t>(geometry_.ranks_per_dimm) *
        static_cast<std::size_t>(geometry_.chips_per_rank()) *
        static_cast<std::size_t>(geometry_.banks_per_chip);
    banks_.reserve(bank_count);
    for (int dimm = 0; dimm < geometry_.dimms; ++dimm) {
        for (int rank = 0; rank < geometry_.ranks_per_dimm; ++rank) {
            for (int chip = 0; chip < geometry_.chips_per_rank(); ++chip) {
                for (int bank = 0; bank < geometry_.banks_per_chip; ++bank) {
                    banks_.push_back(sampler.sample_bank(
                        dimm, rank, chip, bank, threshold_at_reference));
                }
            }
        }
    }
    log_info("memory_system: materialized ", total_weak_cells(),
             " weak cells across ", banks_.size(), " banks");
}

void memory_system::set_temperature(celsius t) {
    for (celsius& dimm_t : dimm_temperature_) {
        dimm_t = t;
    }
}

void memory_system::set_dimm_temperature(int dimm, celsius t) {
    GB_EXPECTS(dimm >= 0 && dimm < geometry_.dimms);
    GB_EXPECTS(t <= limits_.max_temperature);
    dimm_temperature_[static_cast<std::size_t>(dimm)] = t;
}

celsius memory_system::dimm_temperature(int dimm) const {
    GB_EXPECTS(dimm >= 0 && dimm < geometry_.dimms);
    return dimm_temperature_[static_cast<std::size_t>(dimm)];
}

void memory_system::set_refresh_period(milliseconds period) {
    GB_EXPECTS(period.value > 0.0);
    GB_EXPECTS(period <= limits_.max_refresh_period);
    refresh_ = period;
}

std::size_t memory_system::bank_index(int dimm, int rank, int chip,
                                      int bank) const {
    GB_EXPECTS(dimm >= 0 && dimm < geometry_.dimms);
    GB_EXPECTS(rank >= 0 && rank < geometry_.ranks_per_dimm);
    GB_EXPECTS(chip >= 0 && chip < geometry_.chips_per_rank());
    GB_EXPECTS(bank >= 0 && bank < geometry_.banks_per_chip);
    return ((static_cast<std::size_t>(dimm) *
                 static_cast<std::size_t>(geometry_.ranks_per_dimm) +
             static_cast<std::size_t>(rank)) *
                static_cast<std::size_t>(geometry_.chips_per_rank()) +
            static_cast<std::size_t>(chip)) *
               static_cast<std::size_t>(geometry_.banks_per_chip) +
           static_cast<std::size_t>(bank);
}

const std::vector<weak_cell>& memory_system::bank_cells(int dimm, int rank,
                                                        int chip,
                                                        int bank) const {
    return banks_[bank_index(dimm, rank, chip, bank)];
}

std::uint64_t memory_system::total_weak_cells() const {
    std::uint64_t total = 0;
    for (const auto& bank : banks_) {
        total += bank.size();
    }
    return total;
}

void memory_system::apply_ecc(std::vector<const weak_cell*>& failures,
                              std::uint64_t data_seed,
                              scan_result& result) const {
    // Group failing cells by codeword and run the real SECDED decode on each
    // affected word: golden data is derived from the word's key so that
    // miscorrections (3+ flips aliasing onto a valid single-error syndrome)
    // are detected as SDC by comparison, exactly like the paper's golden
    // reference check.
    std::sort(failures.begin(), failures.end(),
              [](const weak_cell* a, const weak_cell* b) {
                  return codeword_key(codeword_of(a->address)) <
                         codeword_key(codeword_of(b->address));
              });

    const secded72_64& codec = secded72_64::instance();
    std::size_t i = 0;
    while (i < failures.size()) {
        std::size_t j = i + 1;
        const std::uint64_t word_key =
            codeword_key(codeword_of(failures[i]->address));
        while (j < failures.size() &&
               codeword_key(codeword_of(failures[j]->address)) == word_key) {
            ++j;
        }

        ++result.affected_words;
        std::uint64_t mixer = word_key ^ data_seed;
        const std::uint64_t golden = splitmix64(mixer);
        secded_word stored = codec.encode(golden);
        for (std::size_t k = i; k < j; ++k) {
            stored = flip_codeword_bit(stored,
                                       codeword_bit_of(failures[k]->address));
        }
        switch (classify_decode(codec.decode(stored), golden)) {
        case word_outcome::corrected:
            ++result.ce_words;
            break;
        case word_outcome::uncorrectable:
            ++result.ue_words;
            break;
        case word_outcome::clean:
            // Distinct flipped bits cannot cancel back to the stored word;
            // treat defensively as SDC.
        case word_outcome::silent_corruption:
            ++result.sdc_words;
            break;
        }
        i = j;
    }
}

double memory_system::scan_retention_seconds(const weak_cell& cell,
                                             celsius t, double aggression,
                                             std::uint64_t scan_seed) const {
    return scan_retention_seconds_scaled(cell, model_.temperature_factor(t),
                                         aggression, scan_seed);
}

double memory_system::scan_retention_seconds_scaled(
    const weak_cell& cell, double temperature_factor, double aggression,
    std::uint64_t scan_seed) const {
    double retention =
        cell.retention_seconds_scaled(temperature_factor, aggression);
    if (cell.vrt) {
        // Per-scan state draw: the cell is weak with vrt_weak_probability,
        // strong otherwise.
        std::uint64_t h = cell_key(cell.address) ^ scan_seed ^
                          0x5bf03635de1d1a27ULL;
        const double u =
            static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
        if (u >= model_.vrt_weak_probability) {
            retention *= model_.vrt_strong_ratio;
        }
    }
    return retention;
}

scan_result memory_system::run_dpbench(data_pattern pattern,
                                       std::uint64_t pattern_seed) const {
    return run_dpbench(pattern, pattern_seed, refresh_);
}

scan_result memory_system::run_dpbench(data_pattern pattern,
                                       std::uint64_t pattern_seed,
                                       milliseconds refresh_period) const {
    GB_EXPECTS(refresh_period.value > 0.0);
    GB_EXPECTS(refresh_period <= limits_.max_refresh_period);
    scan_result result;
    result.scanned_bits = geometry_.data_bytes() * 8;

    const double refresh_s = refresh_period.seconds();
    std::vector<const weak_cell*> failures;
    for (int dimm = 0; dimm < geometry_.dimms; ++dimm) {
        // The temperature factor (an exp2) is constant across the DIMM:
        // compute it once per DIMM instead of once per cell.
        const double tf = model_.temperature_factor(
            dimm_temperature_[static_cast<std::size_t>(dimm)]);
        for (int rank = 0; rank < geometry_.ranks_per_dimm; ++rank) {
            for (int chip = 0; chip < geometry_.chips_per_rank(); ++chip) {
                for (int bank = 0; bank < geometry_.banks_per_chip; ++bank) {
                    for (const weak_cell& cell :
                         bank_cells(dimm, rank, chip, bank)) {
                        const pattern_stress stress =
                            stress_of(pattern, cell, pattern_seed);
                        if (!stress.vulnerable) {
                            continue;
                        }
                        if (scan_retention_seconds_scaled(cell, tf,
                                                          stress.aggression,
                                                          pattern_seed) <
                            refresh_s) {
                            failures.push_back(&cell);
                            ++result.per_bank_failures[static_cast<
                                std::size_t>(bank)];
                        }
                    }
                }
            }
        }
    }
    result.failed_cells = failures.size();
    apply_ecc(failures, pattern_seed, result);
    return result;
}

scan_result memory_system::run_dpbench_reference(
    data_pattern pattern, std::uint64_t pattern_seed,
    milliseconds refresh_period) const {
    GB_EXPECTS(refresh_period.value > 0.0);
    GB_EXPECTS(refresh_period <= limits_.max_refresh_period);
    scan_result result;
    result.scanned_bits = geometry_.data_bytes() * 8;

    std::vector<const weak_cell*> failures;
    for (int dimm = 0; dimm < geometry_.dimms; ++dimm) {
        const celsius t = dimm_temperature_[static_cast<std::size_t>(dimm)];
        for (int rank = 0; rank < geometry_.ranks_per_dimm; ++rank) {
            for (int chip = 0; chip < geometry_.chips_per_rank(); ++chip) {
                for (int bank = 0; bank < geometry_.banks_per_chip; ++bank) {
                    for (const weak_cell& cell :
                         bank_cells(dimm, rank, chip, bank)) {
                        const pattern_stress stress =
                            stress_of(pattern, cell, pattern_seed);
                        if (!stress.vulnerable) {
                            continue;
                        }
                        if (scan_retention_seconds(cell, t,
                                                   stress.aggression,
                                                   pattern_seed) <
                            refresh_period.seconds()) {
                            failures.push_back(&cell);
                            ++result.per_bank_failures[static_cast<
                                std::size_t>(bank)];
                        }
                    }
                }
            }
        }
    }
    result.failed_cells = failures.size();
    apply_ecc(failures, pattern_seed, result);
    return result;
}

scan_result memory_system::run_access_profile(const access_profile& app,
                                              std::uint64_t seed) const {
    GB_EXPECTS(app.footprint_fraction > 0.0 && app.footprint_fraction <= 1.0);
    GB_EXPECTS(app.refreshed_fraction >= 0.0 &&
               app.refreshed_fraction <= 1.0);

    scan_result result;
    result.scanned_bits = static_cast<std::int64_t>(
        static_cast<double>(geometry_.data_bytes() * 8) *
        app.footprint_fraction);

    const double refresh_s = refresh_.seconds();
    std::vector<const weak_cell*> failures;
    for (int dimm = 0; dimm < geometry_.dimms; ++dimm) {
        const double tf = model_.temperature_factor(
            dimm_temperature_[static_cast<std::size_t>(dimm)]);
        for (int rank = 0; rank < geometry_.ranks_per_dimm; ++rank) {
            for (int chip = 0; chip < geometry_.chips_per_rank(); ++chip) {
                for (int bank = 0; bank < geometry_.banks_per_chip; ++bank) {
                    for (const weak_cell& cell :
                         bank_cells(dimm, rank, chip, bank)) {
                        // Membership draws are stable per cell per run seed.
                        // Each purpose gets its own salt so the draws are
                        // independent of the data/vulnerability hashes used
                        // inside the stress model.
                        std::uint64_t h = cell_key(cell.address) ^ seed ^
                                          0x71c9d1f0a5b3e647ULL;
                        const double u_footprint =
                            static_cast<double>(splitmix64(h) >> 11) *
                            0x1.0p-53;
                        if (u_footprint >= app.footprint_fraction) {
                            continue;
                        }
                        const double u_refresh =
                            static_cast<double>(splitmix64(h) >> 11) *
                            0x1.0p-53;
                        if (u_refresh < app.refreshed_fraction) {
                            continue; // row re-accessed faster than refresh
                        }
                        const pattern_stress stress =
                            stress_of_application_data(cell,
                                                       app.ones_density,
                                                       seed);
                        if (!stress.vulnerable) {
                            continue;
                        }
                        if (scan_retention_seconds_scaled(cell, tf,
                                                          stress.aggression,
                                                          seed) <
                            refresh_s) {
                            failures.push_back(&cell);
                            ++result.per_bank_failures[static_cast<
                                std::size_t>(bank)];
                        }
                    }
                }
            }
        }
    }
    result.failed_cells = failures.size();
    apply_ecc(failures, seed, result);
    return result;
}

std::vector<std::uint64_t> memory_system::failing_cell_keys(
    data_pattern pattern, std::uint64_t pattern_seed,
    std::uint64_t vrt_seed) const {
    const double refresh_s = refresh_.seconds();
    std::vector<std::uint64_t> keys;
    for (int dimm = 0; dimm < geometry_.dimms; ++dimm) {
        const double tf = model_.temperature_factor(
            dimm_temperature_[static_cast<std::size_t>(dimm)]);
        for (int rank = 0; rank < geometry_.ranks_per_dimm; ++rank) {
            for (int chip = 0; chip < geometry_.chips_per_rank(); ++chip) {
                for (int bank = 0; bank < geometry_.banks_per_chip; ++bank) {
                    for (const weak_cell& cell :
                         bank_cells(dimm, rank, chip, bank)) {
                        const pattern_stress stress =
                            stress_of(pattern, cell, pattern_seed);
                        if (!stress.vulnerable) {
                            continue;
                        }
                        if (scan_retention_seconds_scaled(cell, tf,
                                                          stress.aggression,
                                                          vrt_seed) <
                            refresh_s) {
                            keys.push_back(cell_key(cell.address));
                        }
                    }
                }
            }
        }
    }
    return keys;
}

std::uint64_t memory_system::weak_cell_count(int dimm, int rank, int chip,
                                             int bank) const {
    const double tf = model_.temperature_factor(
        dimm_temperature_[static_cast<std::size_t>(dimm)]);
    const double refresh_s = refresh_.seconds();
    std::uint64_t count = 0;
    for (const weak_cell& cell : bank_cells(dimm, rank, chip, bank)) {
        // Worst pattern of the suite: full aggression on every cell (the
        // random DPBench eventually exposes each cell's worst combination;
        // unique locations are the union over the suite).
        if (cell.retention_seconds_scaled(tf, 1.0) < refresh_s) {
            ++count;
        }
    }
    return count;
}

} // namespace gb

// Patrol-scrub analysis under relaxed refresh.
//
// The paper's stencil scheduling aims to "reduce the reliance on ECC and
// required error corrections"; the dual question for long-running operation
// is how often cold data must be scrubbed.  A retention failure is
// corrected on read, but the cell's stored charge stays wrong until the
// word is rewritten -- and variable-retention-time cells fail
// intermittently (weak state some windows, strong others), so without
// scrubbing a word slowly accumulates stale bits across VRT windows until
// two of them defeat SECDED.  A patrol scrub every k windows rewrites
// corrected data and resets the accumulation; only pairs that go weak in
// the same interval still get through.  Run this against a memory with
// retention_model::vrt_fraction > 0.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/memory_system.hpp"

namespace gb {

struct scrub_analysis_point {
    /// Scrub every k VRT windows (0 = never scrub).
    int scrub_every_epochs = 0;
    /// Words that accumulated >= 2 stale bits at any point (UE events).
    std::uint64_t uncorrectable_words = 0;
    /// Single-bit corrections performed by the scrubber.
    std::uint64_t scrub_corrections = 0;
};

/// Simulate `epochs` VRT windows over one cold random-data image (drawn
/// from `seed`) under each scrub cadence and count the words that ever
/// reach two simultaneously-stale bits.  Deterministic in `seed`.
[[nodiscard]] std::vector<scrub_analysis_point> analyze_scrub_intervals(
    const memory_system& memory, int epochs,
    const std::vector<int>& scrub_cadences, std::uint64_t seed);

} // namespace gb

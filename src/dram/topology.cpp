#include "dram/topology.hpp"

namespace gb {

dram_geometry xgene2_memory_geometry() {
    dram_geometry g;
    g.validate();
    GB_ENSURES(g.total_chips() == 72);
    GB_ENSURES(g.data_bytes() == 32LL * 1024 * 1024 * 1024);
    return g;
}

dram_geometry single_dimm_geometry() {
    dram_geometry g;
    g.dimms = 1;
    g.validate();
    return g;
}

codeword_address codeword_of(const cell_address& cell) {
    return codeword_address{cell.dimm, cell.rank, cell.bank, cell.row,
                            cell.column};
}

int codeword_bit_of(const cell_address& cell) {
    GB_EXPECTS(cell.chip >= 0 && cell.chip <= 8);
    GB_EXPECTS(cell.bit >= 0 && cell.bit < 8);
    return cell.chip * 8 + cell.bit;
}

std::uint64_t cell_key(const cell_address& cell) {
    // dimm(3) | rank(2) | chip(4) | bank(3) | row(17) | column(10) | bit(3)
    std::uint64_t key = static_cast<std::uint64_t>(cell.dimm);
    key = key << 2 | static_cast<std::uint64_t>(cell.rank);
    key = key << 4 | static_cast<std::uint64_t>(cell.chip);
    key = key << 3 | static_cast<std::uint64_t>(cell.bank);
    key = key << 17 | static_cast<std::uint64_t>(cell.row);
    key = key << 10 | static_cast<std::uint64_t>(cell.column);
    key = key << 3 | static_cast<std::uint64_t>(cell.bit);
    return key;
}

std::uint64_t codeword_key(const codeword_address& word) {
    std::uint64_t key = static_cast<std::uint64_t>(word.dimm);
    key = key << 2 | static_cast<std::uint64_t>(word.rank);
    key = key << 3 | static_cast<std::uint64_t>(word.bank);
    key = key << 17 | static_cast<std::uint64_t>(word.row);
    key = key << 10 | static_cast<std::uint64_t>(word.column);
    return key;
}

} // namespace gb

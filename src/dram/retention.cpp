#include "dram/retention.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace gb {

double retention_model::temperature_factor(celsius t) const {
    return std::exp2(-(t.value - reference.value) / halving_celsius);
}

double retention_model::to_reference_seconds(double seconds, celsius t) const {
    GB_EXPECTS(seconds > 0.0);
    return seconds / temperature_factor(t);
}

double retention_model::tail_probability(double seconds_at_reference) const {
    GB_EXPECTS(seconds_at_reference > 0.0);
    const double z = (std::log(seconds_at_reference) - mu_log) / sigma_log;
    return normal_cdf(z);
}

double retention_model::expected_weak_cells(
    std::int64_t cells, double threshold_at_reference_s) const {
    GB_EXPECTS(cells >= 0);
    return static_cast<double>(cells) *
           tail_probability(threshold_at_reference_s) * density_scale;
}

double weak_cell::retention_seconds(const retention_model& model, celsius t,
                                    double aggression) const {
    return retention_seconds_scaled(model.temperature_factor(t), aggression);
}

double weak_cell::retention_seconds_scaled(double temperature_factor,
                                           double aggression) const {
    GB_EXPECTS(aggression >= 0.0 && aggression <= 1.0);
    return static_cast<double>(retention_at_reference_s) * temperature_factor *
           (1.0 - static_cast<double>(dpd_strength) * aggression);
}

const std::array<double, 8>& bank_systematic_factors() {
    // Table I, 60 C row {3358, 3610, 3641, 3842, 3293, 3448, 3601, 3540},
    // normalized by its mean (3541.6): persistent bank-to-bank density
    // heterogeneity of roughly 16%.
    static const std::array<double, 8> factors{
        0.9482, 1.0193, 1.0281, 1.0848, 0.9298, 0.9736, 1.0168, 0.9995};
    return factors;
}

weak_cell_sampler::weak_cell_sampler(retention_model model,
                                     dram_geometry geometry,
                                     std::uint64_t seed)
    : model_(model), geometry_(geometry), seed_(seed) {
    geometry_.validate();
    GB_EXPECTS(model_.sigma_log > 0.0);
    GB_EXPECTS(model_.density_scale > 0.0);
    GB_EXPECTS(model_.max_dpd_strength >= 0.0 &&
               model_.max_dpd_strength < 1.0);
    GB_EXPECTS(model_.vrt_fraction >= 0.0 && model_.vrt_fraction <= 1.0);
    GB_EXPECTS(model_.vrt_strong_ratio >= 1.0);
    GB_EXPECTS(model_.vrt_weak_probability > 0.0 &&
               model_.vrt_weak_probability <= 1.0);
}

namespace {

std::uint64_t chip_stream_label(int dimm, int rank, int chip) {
    return (static_cast<std::uint64_t>(dimm) << 32) |
           (static_cast<std::uint64_t>(rank) << 16) |
           static_cast<std::uint64_t>(chip);
}

} // namespace

double weak_cell_sampler::chip_factor(int dimm, int rank, int chip) const {
    GB_EXPECTS(dimm >= 0 && dimm < geometry_.dimms);
    GB_EXPECTS(rank >= 0 && rank < geometry_.ranks_per_dimm);
    GB_EXPECTS(chip >= 0 && chip < geometry_.chips_per_rank());
    rng stream = rng(seed_).child("chip_factor")
                     .child(chip_stream_label(dimm, rank, chip));
    // Lognormal around 1 with ~25% spread: the paper's "large variation of
    // the number of weak cells across the DRAM chips".
    return stream.lognormal(-0.03, 0.25);
}

std::vector<weak_cell> weak_cell_sampler::sample_bank(
    int dimm, int rank, int chip, int bank,
    double threshold_at_reference_s) const {
    GB_EXPECTS(bank >= 0 && bank < geometry_.banks_per_chip);
    GB_EXPECTS(threshold_at_reference_s > 0.0);

    const double p_tail = model_.tail_probability(threshold_at_reference_s);
    const double lambda =
        static_cast<double>(geometry_.cells_per_bank()) * p_tail *
        model_.density_scale *
        bank_systematic_factors()[static_cast<std::size_t>(bank)] *
        chip_factor(dimm, rank, chip);

    rng stream = rng(seed_).child("bank_cells")
                     .child(chip_stream_label(dimm, rank, chip))
                     .child(static_cast<std::uint64_t>(bank));
    const std::uint64_t count = stream.poisson(lambda);

    std::vector<weak_cell> cells;
    cells.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        weak_cell cell;
        cell.address.dimm = static_cast<std::int16_t>(dimm);
        cell.address.rank = static_cast<std::int16_t>(rank);
        cell.address.chip = static_cast<std::int16_t>(chip);
        cell.address.bank = static_cast<std::int16_t>(bank);
        cell.address.row = static_cast<std::int32_t>(
            stream.uniform_index(
                static_cast<std::uint64_t>(geometry_.rows_per_bank)));
        cell.address.column = static_cast<std::int16_t>(
            stream.uniform_index(
                static_cast<std::uint64_t>(geometry_.columns_per_row)));
        cell.address.bit = static_cast<std::int8_t>(stream.uniform_index(
            static_cast<std::uint64_t>(geometry_.bits_per_column)));

        // Inverse-transform sample of the truncated lognormal tail:
        // u ~ U(0,1) maps to the quantile u * P(t < threshold).
        double u = stream.uniform();
        while (u <= 0.0) {
            u = stream.uniform();
        }
        const double z = inverse_normal_cdf(u * p_tail);
        cell.retention_at_reference_s = static_cast<float>(
            std::exp(model_.mu_log + model_.sigma_log * z));

        cell.dpd_strength = static_cast<float>(
            stream.uniform(0.0, model_.max_dpd_strength));
        cell.anti_cell = stream.bernoulli(0.5);
        cell.vrt = stream.bernoulli(model_.vrt_fraction);
        cells.push_back(cell);
    }
    return cells;
}

} // namespace gb

// Data-pattern benchmarks (DPBenches) and data-dependent cell stress.
//
// The paper stresses DRAM with all-0s, all-1s, checkerboard and random
// patterns (Section III.C, after Liu et al. ISCA'13 [19]).  A weak cell only
// leaks observably when it stores its charged level (true-cell: 1,
// anti-cell: 0), and its retention degrades further when surrounding data
// matches its private worst-case aggressor combination.  Solid patterns
// exert no coupling stress; checkerboard exerts strong structured stress;
// random data matches the per-cell worst case most often, which is why it
// exposes the highest BER (the paper's confirmation of [19]).
#pragma once

#include <cstdint>
#include <string_view>

#include "dram/retention.hpp"
#include "dram/topology.hpp"

namespace gb {

enum class data_pattern : std::uint8_t {
    all_zeros,
    all_ones,
    checkerboard,
    random_data,
};

constexpr int data_pattern_count = 4;

[[nodiscard]] std::string_view to_string(data_pattern pattern);

/// All four DPBench patterns.
[[nodiscard]] const std::array<data_pattern, 4>& all_data_patterns();

/// Logical bit stored at a cell by the pattern (random uses `seed`).
[[nodiscard]] bool pattern_bit(data_pattern pattern, const cell_address& cell,
                               std::uint64_t seed);

/// Stress a pattern exerts on one weak cell.
struct pattern_stress {
    bool vulnerable = false; ///< cell stores its charged level
    double aggression = 0.0; ///< fraction of worst-case coupling, 0..1
};

[[nodiscard]] pattern_stress stress_of(data_pattern pattern,
                                       const weak_cell& cell,
                                       std::uint64_t seed);

/// Stress under application data modeled as i.i.d. bits with the given ones
/// density.  Aggression scales with data entropy (4 p (1-p)): near-solid
/// application data exerts little coupling, high-entropy data approaches the
/// random DPBench.
[[nodiscard]] pattern_stress stress_of_application_data(
    const weak_cell& cell, double ones_density, std::uint64_t seed);

} // namespace gb

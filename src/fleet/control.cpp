#include "fleet/control.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace gb::fleet {

control_read read_control(const std::string& path) {
    control_read result;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        return result;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    result.bytes = bytes.size();
    if (bytes.empty()) {
        return result;
    }
    if (bytes.size() > max_control_bytes) {
        result.status = control_read::state::oversized;
        return result;
    }
    const std::size_t newline = bytes.find('\n');
    if (newline == std::string::npos) {
        result.status = control_read::state::partial;
        return result;
    }
    result.status = control_read::state::complete;
    result.command = bytes.substr(0, newline);
    return result;
}

bool write_control(const std::string& path, std::string_view command) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
        return false;
    }
    std::string framed(command);
    framed += '\n';
    out << framed;
    out.flush();
    return out.good();
}

bool ack_control(const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    return out.is_open();
}

int ack_backoff_ms(const ack_wait_config& config, int attempt) {
    if (config.backoff_base_ms <= 0) {
        return 0;
    }
    long long delay = config.backoff_base_ms;
    for (int k = 0; k < attempt && delay < config.backoff_cap_ms; ++k) {
        delay *= 2;
    }
    if (delay > config.backoff_cap_ms) {
        delay = config.backoff_cap_ms;
    }
    return static_cast<int>(delay);
}

bool await_control_ack(const std::string& path,
                       const ack_wait_config& config,
                       const std::function<void(int delay_ms)>& sleep_fn) {
    const auto acked = [&path] {
        std::error_code ec;
        if (!std::filesystem::exists(path, ec)) {
            return true; // daemon may ack by removing the file
        }
        const auto size = std::filesystem::file_size(path, ec);
        return !ec && size == 0;
    };
    if (acked()) {
        return true;
    }
    for (int attempt = 0; attempt < config.retries; ++attempt) {
        if (sleep_fn) {
            sleep_fn(ack_backoff_ms(config, attempt));
        }
        if (acked()) {
            return true;
        }
    }
    return false;
}

} // namespace gb::fleet

// Model-backed characterization probe for simulated X-Gene2 fleets.
//
// `make_xgene2_probe` binds a `probe_fn` (service.hpp) to the library's
// chip/workload models so the fleet daemon, benches and tests
// characterize realistic cohorts without wiring the stack by hand:
//
//   * corner      -> the paper-calibrated canonical chip (TTT/TFF/TSS);
//                    a nonzero cohort `variant` draws a jittered chip of
//                    that corner instead (unique-silicon fleets);
//   * class c     -> an 8-core SPEC2006 mix starting at suite index c;
//   * op p        -> core frequency nominal - 150 MHz * p (requirements
//                    relax along the V/F slope as p grows);
//   * sweep_mv    -> extra deployment guard on top of the revealed Vmin.
//
// The returned probe is a pure function of the request (profiles are
// served from the frameworks' concurrent-safe caches), so it is safe to
// call from engine workers and its results are reproducible bitwise.
#pragma once

#include "fleet/fleet.hpp"
#include "fleet/service.hpp"

namespace gb::fleet {

[[nodiscard]] probe_fn make_xgene2_probe(const fleet_spec& spec);

} // namespace gb::fleet

// Fleet topology for datacenter-scale characterization campaigns.
//
// The paper characterizes three X-Gene2 chips; the UniServer deployment it
// argues for only pays off across a whole fleet, where per-chip guardband
// variation (and the probing cost of revealing it) is the dominant
// concern.  This module models that population: a `fleet_spec` describes
// 10^5..10^6 nodes, each node is derived O(1) from (spec seed, node id) --
// no state, no draws crossing node boundaries, so any slice of the fleet
// is reproducible in isolation -- and nodes group into *cohorts* keyed by
//
//     (chip process corner, workload class, operating point [, variant])
//
// Cohort members share a characterization probe: one probe executes per
// cohort and its result fans out to every member, with a bounded
// deterministic per-node jitter standing in for within-cohort chip spread.
// The `variant` field opts a node *out* of sharing (unique-chip fleets
// such as the fleet_binning example give every node its own variant).
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

#include "chip/corners.hpp"

namespace gb::fleet {

/// Probe-sharing key.  Nodes with equal keys are electrically and
/// behaviourally interchangeable for characterization purposes: same
/// canonical corner part, same workload class, same operating point.
struct cohort_key {
    process_corner corner = process_corner::ttt;
    std::uint16_t workload_class = 0;
    std::uint16_t operating_point = 0;
    /// Per-node chip variant for unique-chip fleets; 0 means the cohort
    /// shares the canonical corner part.  Distinct variants never share a
    /// probe (each is its own silicon).
    std::uint32_t variant = 0;

    friend auto operator<=>(const cohort_key&,
                            const cohort_key&) = default;
};

struct fleet_node {
    std::uint64_t id = 0;
    cohort_key cohort;
    /// Per-node jitter stream root, derived from (spec seed, id).
    std::uint64_t seed = 0;
};

/// Declarative description of a simulated fleet.  Node -> cohort
/// assignment is a pure function of (seed, id); two specs with equal
/// fields describe bitwise-equal fleets.
struct fleet_spec {
    std::uint64_t nodes = 0;
    std::uint64_t seed = 2018;
    /// Cohort axes: workload classes x operating points per corner.
    int workload_classes = 3;
    int operating_points = 4;
    /// Deterministic within-cohort requirement spread per node, in mV
    /// (uniform in [0, node_jitter_mv)); 0 pins every member to the
    /// cohort probe's exact requirement.
    double node_jitter_mv = 12.0;
    /// Voltage-class binning of revealed requirements (the deployment
    /// granularity): ceil to `bin_step_mv`, capped at `bin_cap_mv`.
    double bin_step_mv = 10.0;
    double bin_cap_mv = 980.0;
    /// Explicit node list (unique-chip fleets).  When non-empty it
    /// overrides generation: `nodes`/axes are ignored.
    std::vector<fleet_node> explicit_nodes;

    [[nodiscard]] std::uint64_t node_count() const {
        return explicit_nodes.empty()
                   ? nodes
                   : static_cast<std::uint64_t>(explicit_nodes.size());
    }
};

/// Node `id` of a generated fleet (O(1), stateless).  For specs with
/// explicit nodes use the list instead.
[[nodiscard]] fleet_node make_node(const fleet_spec& spec,
                                   std::uint64_t id);

/// The node's deterministic requirement jitter in [0, spec.node_jitter_mv).
[[nodiscard]] double node_jitter_mv(const fleet_spec& spec,
                                    const fleet_node& node);

/// Voltage class of a revealed requirement under the spec's binning.
[[nodiscard]] double bin_voltage_mv(const fleet_spec& spec,
                                    double requirement_mv);

/// Content address of one probe: FNV-1a over the cohort key fields and
/// the campaign sweep offset -- the fleet-scale analogue of the profile
/// cache's (kernel name, frequency) key in harness/framework.hpp.  Equal
/// content ids mean "the same physical experiment"; the probe cache fans
/// one execution out to every requester.
[[nodiscard]] std::uint64_t probe_content(const cohort_key& key,
                                          std::int64_t sweep_mv);

} // namespace gb::fleet

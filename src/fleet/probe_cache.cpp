#include "fleet/probe_cache.hpp"

namespace gb::fleet {

const probe_result* probe_cache::lookup(std::uint64_t content) {
    const auto it = entries_.find(content);
    if (it == entries_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return &it->second.result;
}

const probe_result* probe_cache::peek(std::uint64_t content) const {
    const auto it = entries_.find(content);
    return it == entries_.end() ? nullptr : &it->second.result;
}

void probe_cache::insert(std::uint64_t content, const probe_result& result) {
    entries_[content] = entry{result, {}};
}

void probe_cache::insert(std::uint64_t content, const probe_result& result,
                         std::vector<std::uint32_t> rigs) {
    entries_[content] = entry{result, std::move(rigs)};
}

const std::vector<std::uint32_t>* probe_cache::provenance(
    std::uint64_t content) const {
    const auto it = entries_.find(content);
    return it == entries_.end() ? nullptr : &it->second.rigs;
}

void probe_cache::repair(std::uint64_t content, const probe_result& result,
                         std::vector<std::uint32_t> rigs) {
    entries_[content] = entry{result, std::move(rigs)};
    ++repaired_;
}

} // namespace gb::fleet

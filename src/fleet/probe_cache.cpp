#include "fleet/probe_cache.hpp"

namespace gb::fleet {

const probe_result* probe_cache::lookup(std::uint64_t content) {
    const auto it = entries_.find(content);
    if (it == entries_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return &it->second;
}

const probe_result* probe_cache::peek(std::uint64_t content) const {
    const auto it = entries_.find(content);
    return it == entries_.end() ? nullptr : &it->second;
}

void probe_cache::insert(std::uint64_t content, const probe_result& result) {
    entries_[content] = result;
}

} // namespace gb::fleet

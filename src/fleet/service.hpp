// Fleet characterization service: the long-lived campaign loop that
// turns the one-shot runners into a queryable daemon.
//
// One `fleet_service` owns a fleet (fleet.hpp), a content-addressed
// probe cache (probe_cache.hpp) and the observability sinks, and runs
// characterization campaigns through the deterministic execution engine:
//
//   1. enumerate the fleet's cohorts in sorted key order and consult the
//      cache -- identical probes execute once per service lifetime;
//   2. plan the remaining probes onto `shards` batches with the shared
//      list scheduler (harness/schedule.hpp -- the same scheduler
//      `gbreport utilization` simulates), then run each batch through
//      the execution engine with trace/metrics threaded through;
//   3. append one journal line per executed probe *serially, in sorted
//      cohort order* after the engine drains -- unlike the task journal's
//      completion-order lines, the fleet journal is bitwise identical at
//      any GB_JOBS and any shard count, and doubles round-trip exactly,
//      so a restarted daemon warms its cache from the journal and
//      re-executes nothing;
//   4. fan the cohort results out to every node (deterministic per-node
//      jitter, voltage-class binning, power accounting in node-id order)
//      and publish the fleet state snapshot.
//
// The query API is a polled file endpoint: `state_snapshot()` renders
// deterministic bytes -- the `--status` heartbeat schema (status.hpp)
// extended with a `"fleet"` object, so `gbreport status` keeps working on
// fleet snapshots unchanged -- and `publish_state()` writes them with the
// same atomic temp+rename discipline.  Probe seeds derive from probe
// *content*, never from engine task indices, which is what makes the
// snapshot and journal invariant under re-sharding.
//
// The service also fronts the core exploitation stack: `supervisor_for`
// keeps one operating-point supervisor per cohort and `run_epoch` drives
// it, so clients (uniserver_autopilot) run supervised epochs against the
// service instead of wiring supervisors by hand.
//
// Failure is a first-class input (docs/ROBUSTNESS.md).  A rig-fault plan
// makes probe attempts fail -- drawn per probe *content*, never per engine
// task index, so faulty campaigns stay invariant under re-sharding -- with
// bounded retry, then exponential-backoff re-plan rounds, and finally
// quarantine: cohorts whose probes never resolve are served *degraded*
// (binned at the nominal `bin_cap_mv` class, exposed in the snapshot's
// "degraded" section) instead of failing the campaign.  A chaos plan
// (harness/chaos) arms kill-points at every persistence seam; recovery is
// verified by fleet/recovery.hpp, which restarts the service from the
// post-crash bytes and asserts bitwise convergence with an unfaulted run.
// The journal warm path is correspondingly strict: it self-heals a torn
// tail (the only damage a crash of *this* writer can cause) and rejects
// everything else -- mid-file garbage, serial gaps, cohort-order
// violations, duplicate or contradictory entries -- with
// `fleet_journal_error` diagnostics rather than silently re-executing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/supervisor.hpp"
#include "fleet/fleet.hpp"
#include "fleet/probe_cache.hpp"
#include "harness/execution_engine.hpp"
#include "harness/integrity/integrity.hpp"
#include "harness/journal.hpp"
#include "harness/timeseries/alerts.hpp"

namespace gb {
class tracer;
class metrics_registry;
class sdc_plan;
} // namespace gb

namespace gb::fleet {

/// One characterization probe request.  Everything a probe may depend on
/// is in here, and `seed` derives from `content` alone -- not from the
/// engine task index -- so a probe's result is invariant under
/// re-sharding and re-ordering.
struct probe_request {
    cohort_key cohort;
    std::int64_t sweep_mv = 0;  ///< campaign-wide supply offset probed
    std::uint64_t content = 0;  ///< cache key (fleet.hpp probe_content)
    std::uint64_t seed = 0;     ///< derive_task_seed(spec seed, content)
    std::uint64_t members = 0;  ///< cohort population (observability only)
};

/// Executes one probe.  Called concurrently from engine workers: must be
/// a pure function of the request (plus read-only shared state).
using probe_fn = std::function<probe_result(const probe_request&)>;

/// The fleet journal violated an invariant the writer guarantees --
/// anything beyond a torn tail, which the warm path heals itself.  The
/// message carries the path, line number and violated invariant.
class fleet_journal_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// What the rig did to one probe before it resolved, journaled with the
/// result so a restarted daemon's fault accounting converges bitwise with
/// the unfaulted run's (fault draws are content-keyed, so the ledger is a
/// property of the probe, not of which service lifetime executed it).
struct probe_ledger {
    std::uint64_t retries = 0;
    std::uint64_t watchdog_timeouts = 0;
    std::uint64_t board_crashes = 0;
    std::uint64_t power_switch_failures = 0;
    std::uint64_t exhausted_rounds = 0; ///< rounds that ran out of attempts
    double downtime_s = 0.0; ///< rig recovery + re-plan backoff charges
};

/// The SDC defense knobs (docs/ROBUSTNESS.md "Silent data corruption").
/// Defaults leave every defense off, and a disabled config is guaranteed
/// to keep the service's stdout, journal and snapshot bytes unchanged.
struct fleet_integrity_config {
    /// Replicas per distinct probe, executed on disjoint simulated rigs;
    /// the majority value is admitted (N = 2f + 1 corrects f corrupt
    /// rigs).  1 = no redundancy (single-sourced admission).
    int quorum = 1;
    /// Simulated rig pool size; 0 derives max(quorum, 8).  Values below
    /// the quorum are raised to it (disjoint assignment needs one rig per
    /// replica).
    std::uint64_t rigs = 0;
    /// Seeded silent-corruption plan (null: honest rigs).  Decisions are
    /// drawn at serial points only, so corrupted campaigns stay bitwise
    /// shard- and worker-invariant.
    sdc_plan* sdc = nullptr;
    /// Re-verify every `audit_stride`-th scheduled cache hit against a
    /// fresh execution (0: no auditing).  Keyed by the crash-invariant
    /// scheduled-hit count, so audit schedules converge across restarts.
    std::uint64_t audit_stride = 0;
    /// Outvoted dissents before a rig is blacklisted and its sole-sourced
    /// journal entries re-executed.
    std::uint64_t blacklist_threshold = 2;

    [[nodiscard]] bool enabled() const {
        return quorum > 1 || sdc != nullptr || audit_stride > 0;
    }
};

struct fleet_service_config {
    /// Campaign name for status snapshots and trace spans.
    std::string campaign = "fleet";
    /// Cohort batches per campaign (>= 1).  Sharding is a batching and
    /// observability choice; results are bitwise identical at any value.
    int shards = 1;
    /// Engine workers per shard run (<= 0: GB_JOBS, see execution_engine).
    int workers = 0;
    /// Probe-result journal (empty: disabled).  Appended serially in
    /// sorted cohort order; an existing file warms the cache on
    /// construction (daemon restart).
    std::string journal_path;
    /// Fleet state snapshot endpoint (empty: publish_state disabled).
    std::string state_path;
    /// Deterministic observability sinks (either may be null).
    tracer* trace = nullptr;
    metrics_registry* metrics = nullptr;
    /// Rig-fault plan for probe attempts (null: healthy rig).  Draws are
    /// keyed by probe content and re-plan round, never by engine task
    /// index, so faulty results stay shard- and worker-invariant.
    const fault_plan* faults = nullptr;
    /// Retries per probe per round; a round spends `retry_budget + 1`
    /// attempts before the probe is deferred to the next round.
    int retry_budget = 3;
    /// Re-plan rounds after the main round for exhausted probes, each
    /// preceded by an exponential backoff charge (replan_backoff_s).
    /// Probes still unresolved after the last round degrade their cohort.
    int replan_rounds = 2;
    /// Base of the re-plan backoff schedule, charged per probe per round
    /// into its journaled downtime (virtual seconds, no real sleeping).
    double replan_backoff_base_s = 5.0;
    /// Virtual rig-downtime budget per shard batch; a batch whose probes
    /// lose more than this trips the shard watchdog counter
    /// (`fleet.shard_watchdog_trips` -- observability only: batch
    /// composition depends on the shard count, so the snapshot never
    /// includes it).  <= 0 disables.
    double shard_deadline_s = 0.0;
    /// Chaos kill-point plan armed at the journal, snapshot and warm
    /// seams (null: no chaos).  See harness/chaos/chaos.hpp.
    chaos_plan* chaos = nullptr;
    /// SDC attack + defense configuration.  With the defenses on, journal
    /// records additionally carry ` rigs=` provenance and a running
    /// ` chain=` hash (verified on warm); with them off (the default) the
    /// wire format and every published byte are unchanged.
    fleet_integrity_config integrity;
    /// Deterministic time-series sink (null: the observatory is off and
    /// every journal, snapshot and metrics byte is unchanged).  When set,
    /// each campaign closes with one crash-invariant observatory block --
    /// per-cohort Vmin, cache hit rate, degraded-cohort count and fleet
    /// power samples plus any alert transitions -- journaled as
    /// `tline`/`alert` records sealed by a `tseal`, and a restarted daemon
    /// warms the recorder and alert state from those records, so the
    /// timeline artifact converges bitwise across crash/restart.
    timeline_recorder* timeline = nullptr;
    /// Alert rules evaluated against the timeline at every epoch seal
    /// (ignored while `timeline` is null).
    std::vector<alert_rule> alerts;
    /// Synthetic Vmin aging drift, mV per settled epoch, applied to the
    /// *served* requirement at node fan-out and to the Vmin timeline
    /// samples -- never to the cache or the probe journal, so the
    /// characterization record stays aging-free.  The default 0 keeps
    /// every published byte unchanged.
    double aging_mv_per_epoch = 0.0;
    /// `timeline.json` artifact endpoint (empty: not published).  Written
    /// with the snapshot's temp+rename discipline after each epoch seal.
    std::string timeline_path;
};

/// Aggregated view of one cohort the state snapshot exposes.
struct cohort_state {
    cohort_key key;
    std::uint64_t members = 0; ///< nodes in this cohort
    std::uint64_t probes = 0;  ///< campaigns that requested it (hits + runs)
    bool probed = false;       ///< `last` holds a real result
    /// Probe never resolved within the retry/re-plan budget: the cohort
    /// is quarantined and served at the nominal bin cap until a later
    /// campaign resolves it.  Degraded results are never cached or
    /// journaled, so the retry recurs deterministically.
    bool degraded = false;
    probe_result last;
};

/// What one `run_campaign` call did.
struct campaign_outcome {
    std::uint64_t probes = 0;     ///< cohort probes requested (= cohorts)
    std::uint64_t cache_hits = 0; ///< served from the cache
    std::uint64_t executed = 0;   ///< ran through the engine
    std::uint64_t replanned = 0;  ///< probes that needed re-plan rounds
    std::uint64_t degraded = 0;   ///< cohorts quarantined this campaign
    execution_stats stats; ///< merged engine runs + simulated rig faults
};

class fleet_service {
public:
    /// Warms the cache from `config.journal_path` if the file exists.
    /// `probe` runs cache-missing cohorts; it may be empty for a pure
    /// query/replay service, but `run_campaign` then requires every
    /// cohort to hit the cache.
    fleet_service(fleet_spec spec, fleet_service_config config,
                  probe_fn probe = {});

    /// One characterization campaign over the whole fleet at a supply
    /// offset of `sweep_mv` from each cohort's operating point.
    campaign_outcome run_campaign(std::int64_t sweep_mv = 0);

    // --- query API ------------------------------------------------------
    /// Deterministic fleet-state bytes: a final `--status` snapshot
    /// (status.hpp schema, parseable by `gbreport status`) extended with
    /// a "fleet" object.  Bitwise identical at any GB_JOBS/shard count.
    [[nodiscard]] std::string state_snapshot() const;
    /// Atomically publish `state_snapshot()` to the configured state
    /// path (temp + rename; false on I/O error or when unconfigured).
    bool publish_state() const;

    [[nodiscard]] const fleet_spec& spec() const { return spec_; }
    [[nodiscard]] const probe_cache& cache() const { return cache_; }
    [[nodiscard]] const std::vector<cohort_state>& cohorts() const {
        return cohorts_;
    }
    /// Nodes per binned voltage class (mV), rebuilt each campaign.
    [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& bins() const {
        return bins_;
    }
    [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
    [[nodiscard]] std::uint64_t node_count() const {
        return spec_.node_count();
    }
    /// Cache entries restored from the journal at construction.
    [[nodiscard]] std::uint64_t restored() const { return restored_; }
    /// Torn-tail journal bytes truncated by the warm path's self-heal.
    [[nodiscard]] std::uint64_t healed_bytes() const { return healed_bytes_; }
    /// Cohorts currently quarantined in degraded mode.
    [[nodiscard]] std::uint64_t degraded_cohorts() const;
    /// Shard batches whose virtual rig downtime blew the deadline.
    [[nodiscard]] std::uint64_t shard_watchdog_trips() const {
        return shard_watchdog_trips_;
    }
    [[nodiscard]] double power_nominal_w() const { return power_nominal_w_; }
    [[nodiscard]] double power_binned_w() const { return power_binned_w_; }

    // --- observatory (timeline + alerts; null/empty when off) -----------
    /// Alert engine state (firing set, event history); null when the
    /// observatory is off or no rules are configured.
    [[nodiscard]] const alert_engine* alert_state() const {
        return alerts_.get();
    }
    /// `timeline.json` bytes (write_timeline_json over the configured
    /// recorder + alert state); empty when the observatory is off.
    [[nodiscard]] std::string timeline_snapshot() const;
    /// Atomically publish `timeline_snapshot()` to the configured
    /// timeline path (temp + rename; false when unconfigured).
    bool publish_timeline() const;

    // --- SDC integrity accounting (lifetime-local; metrics `integrity.*`
    // mirror these, the content-pure snapshot never includes them) -------
    /// Corruptions the armed sdc_plan has handed out.
    [[nodiscard]] std::uint64_t sdc_injected() const;
    /// Corruptions caught (outvoted dissents + stalemates + audit
    /// mismatches + blacklist-repair discoveries).
    [[nodiscard]] std::uint64_t sdc_detected() const { return sdc_detected_; }
    /// Dissenting replicas outvoted at admission time.
    [[nodiscard]] std::uint64_t sdc_outvoted() const { return sdc_outvoted_; }
    /// Poisoned cache/journal entries overwritten with arbitrated truth.
    [[nodiscard]] std::uint64_t sdc_corrected() const {
        return sdc_corrected_;
    }
    /// Injected corruptions no defense has caught (yet).
    [[nodiscard]] std::uint64_t sdc_escaped() const;
    /// Cache hits re-verified by the audit sampler.
    [[nodiscard]] std::uint64_t audits() const { return audits_; }
    [[nodiscard]] std::uint64_t audit_mismatches() const {
        return audit_mismatches_;
    }
    /// Votes with no strict majority (cohort degrades conservatively).
    [[nodiscard]] std::uint64_t quorum_stalemates() const {
        return quorum_stalemates_;
    }
    /// Journal entries rewritten by audit or blacklist repair.
    [[nodiscard]] std::uint64_t repaired_entries() const {
        return repaired_entries_;
    }
    /// Probe executions spent on redundancy (replicas, audits, repairs).
    [[nodiscard]] std::uint64_t replica_executions() const {
        return replica_executions_;
    }
    /// Per-rig dissent ledger (blacklist state, dissent totals).
    [[nodiscard]] const rig_reputation& reputation() const {
        return reputation_;
    }
    /// Simulated rig pool the quorum spreads over.
    [[nodiscard]] std::uint64_t rig_count() const { return effective_rigs_; }

    // --- per-cohort supervision ----------------------------------------
    /// The cohort's operating-point supervisor, created on first use
    /// with `config`/`governor` (later calls return the existing one;
    /// the reference stays valid for the service's lifetime).
    operating_point_supervisor& supervisor_for(
        const cohort_key& key, const supervisor_config& config = {},
        voltage_governor* governor = nullptr);
    /// One supervised epoch against the cohort's supervisor
    /// (run_supervised_epoch); the supervisor must already exist.
    supervised_epoch run_epoch(
        const cohort_key& key, const epoch_request& request,
        const std::function<epoch_result(const epoch_plan&)>& execute);
    [[nodiscard]] std::uint64_t supervised_cohorts() const {
        return supervised_.size();
    }
    [[nodiscard]] std::uint64_t supervised_epochs() const {
        return supervised_epochs_;
    }

private:
    struct supervised_cohort {
        std::unique_ptr<operating_point_supervisor> supervisor;
        std::uint64_t epochs = 0;
    };

    /// One retained journal record, kept in memory (warm + append) only
    /// when the integrity defenses are on, so repair can rewrite the
    /// journal with a recomputed chain.
    struct journal_entry {
        cohort_key key;
        std::int64_t sweep_mv = 0;
        std::uint64_t content = 0;
        probe_result result;
        probe_ledger ledger;
        std::vector<std::uint32_t> rigs;
    };

    [[nodiscard]] std::size_t cohort_index(const cohort_key& key) const;
    void warm_cache_from_journal();
    /// End-of-campaign observatory block: append the epoch's fixed-order
    /// sample list to the recorder and the journal (skipping whatever a
    /// previous lifetime already journaled), evaluate the alert rules,
    /// journal the transitions, and seal the epoch with a `tseal` record.
    void observe_epoch();
    /// Journal one observatory record (`tline`/`alert`/`tseal` payload)
    /// through the chaos `timeline_append` seam.  Observatory records
    /// consume journal serials like probe records but never fold into the
    /// integrity chain.
    void append_observatory_line(const std::string& payload);
    /// The epoch's crash-invariant sample list, in fixed series order:
    /// per-cohort Vmin (probed cohorts, sorted cohort order, aging
    /// applied), then the fleet scalars.
    [[nodiscard]] std::vector<std::pair<std::string, double>>
    observatory_samples() const;
    void append_probe_line(const cohort_key& key, std::int64_t sweep_mv,
                           std::uint64_t content, const probe_result& result,
                           const probe_ledger& ledger,
                           const std::vector<std::uint32_t>* rigs);
    /// Execute one replica serially (audit / arbitration / repair),
    /// drawing one SDC opportunity.
    [[nodiscard]] probe_result execute_replica(const probe_request& request);
    [[nodiscard]] probe_request request_for(const cohort_key& key,
                                            std::int64_t sweep_mv,
                                            std::uint64_t content) const;
    /// Arbitrate `content` with a fresh quorum on the standard rig
    /// assignment; returns false on a stalemate.  `truth` and the
    /// provenance (the configured quorum's assigned rigs, so repaired
    /// bytes converge with a never-corrupted run's) come back through
    /// the out-params.
    [[nodiscard]] bool arbitrate(const probe_request& request, int replicas,
                                 probe_result& truth,
                                 std::vector<std::uint32_t>& rigs);
    /// The configured quorum's content-pure rig assignment (sorted,
    /// uniqued) -- the provenance every admission and repair records.
    [[nodiscard]] std::vector<std::uint32_t> assigned_rigs(
        std::uint64_t content) const;
    void audit_scheduled_hits(
        std::int64_t sweep_mv,
        const std::vector<std::pair<std::size_t, std::uint64_t>>& candidates,
        std::set<std::uint64_t>& newly_blacklisted, bool& journal_dirty);
    void repair_blacklisted_entries(
        const std::set<std::uint64_t>& newly_blacklisted,
        bool& journal_dirty);
    /// Rewrite the whole journal from `journal_entries_` with a
    /// recomputed hash chain (temp + rename; no chaos seams -- repair is
    /// not a persistence seam the recovery checker arms).
    void rewrite_journal();
    void charge_dissent(std::uint64_t rig,
                        std::set<std::uint64_t>& newly_blacklisted);
    /// Live (`running: true`) snapshot while a campaign's probes are in
    /// flight; scheduling-dependent by nature, like engine heartbeats.
    void publish_live(std::uint64_t pending) const;

    fleet_spec spec_;
    fleet_service_config config_;
    probe_fn probe_;
    probe_cache cache_;
    std::uint64_t restored_ = 0;
    std::uint64_t healed_bytes_ = 0;

    /// Sorted by key; parallel index map for node fan-out.
    std::vector<cohort_state> cohorts_;
    std::map<cohort_key, std::size_t> cohort_of_;

    std::unique_ptr<campaign_journal> journal_;
    std::uint64_t journal_serial_ = 0; ///< next journal task index

    std::uint64_t epoch_ = 0;
    std::uint64_t probes_requested_ = 0; ///< lifetime cohort probes
    std::uint64_t probes_executed_ = 0;  ///< lifetime engine-run probes
    std::size_t trace_index_base_ = 0;   ///< unique task indices across runs
    /// Contents resolved for a request made *this lifetime* -- a repeat
    /// request is a "scheduled hit", the only cache-hit notion that is
    /// identical before and after a crash/restart (restoration hits are
    /// lifetime-local and live in metrics only).
    std::set<std::uint64_t> requested_contents_;
    std::uint64_t scheduled_hits_ = 0;
    /// Fault ledgers of every *resolved* probe, restored + this-life,
    /// folded in journal order -- the crash-invariant stats the snapshot
    /// reports.  Degraded probes' ledgers stay out (their fold order
    /// would depend on which lifetime ran them).
    execution_stats ledger_stats_;
    std::uint64_t shard_watchdog_trips_ = 0;

    /// SDC defense state (all folded at serial points).
    std::uint64_t effective_rigs_ = 1;
    rig_reputation reputation_;
    std::uint64_t chain_ = chain_basis; ///< running journal chain hash
    std::vector<journal_entry> journal_entries_; ///< integrity on only
    /// Content of each cohort's most recent resolved probe, so repair can
    /// refresh `cohorts_[i].last` when its backing entry is rewritten.
    std::vector<std::uint64_t> cohort_last_content_;
    std::uint64_t sdc_detected_ = 0;
    std::uint64_t sdc_outvoted_ = 0;
    std::uint64_t sdc_corrected_ = 0;
    std::uint64_t audits_ = 0;
    std::uint64_t audit_mismatches_ = 0;
    std::uint64_t quorum_stalemates_ = 0;
    std::uint64_t repaired_entries_ = 0;
    std::uint64_t replica_executions_ = 0;
    std::map<std::int64_t, std::uint64_t> bins_;
    double power_nominal_w_ = 0.0;
    double power_binned_w_ = 0.0;

    /// Observatory state.  The alert engine exists whenever the timeline
    /// is configured (even rule-free, so the artifact's alert section is
    /// stable); the warm bookkeeping below is tracked per epoch so a
    /// restarted daemon replays journaled observatory records instead of
    /// re-appending them:
    ///   * `sealed_epochs_`  -- epochs whose `tseal` landed (skip whole
    ///     block on replay);
    ///   * `warm_tline_counts_` / `warm_alert_counts_` -- records already
    ///     journaled for a partial (unsealed) epoch, so only the suffix is
    ///     appended;
    ///   * `warm_epoch_ticks_` -- the tick a partial epoch's samples were
    ///     journaled at, reused so the retry lands on the same tick.
    std::unique_ptr<alert_engine> alerts_;
    std::set<std::uint64_t> sealed_epochs_;
    std::map<std::uint64_t, std::uint64_t> warm_tline_counts_;
    std::map<std::uint64_t, std::uint64_t> warm_alert_counts_;
    std::map<std::uint64_t, std::uint64_t> warm_epoch_ticks_;
    /// Journal record layout (probe vs verbatim observatory payload),
    /// maintained only when integrity + journal are both on, so
    /// `rewrite_journal` can re-chain the probe records while preserving
    /// observatory records in place.
    struct journal_record_ref {
        bool probe = true;
        std::string payload; ///< observatory records only, verbatim
    };
    std::vector<journal_record_ref> record_layout_;

    std::map<cohort_key, supervised_cohort> supervised_;
    std::uint64_t supervised_epochs_ = 0;

    struct {
        bool registered = false;
        counter_handle nodes;
        counter_handle probes_executed;
        counter_handle cache_hits;
        counter_handle restored;
        counter_handle healed_bytes;
        counter_handle replan_rounds;
        counter_handle shard_watchdog_trips;
        histogram_handle bin_mv;
        gauge_handle power_nominal_w;
        gauge_handle power_binned_w;
        gauge_handle degraded_cohorts;
        /// `integrity.*` gauges, registered only when the defenses are on
        /// (default metrics bytes stay unchanged).
        bool integrity = false;
        gauge_handle sdc_injected;
        gauge_handle sdc_detected;
        gauge_handle sdc_outvoted;
        gauge_handle sdc_corrected;
        gauge_handle sdc_escaped;
        gauge_handle audits;
        gauge_handle audit_mismatches;
        gauge_handle dissents;
        gauge_handle blacklisted_rigs;
        gauge_handle quorum_stalemates;
        gauge_handle repaired_entries;
        gauge_handle replica_executions;
    } mh_;
};

/// Parse one fleet journal payload (the part after the `task=N ` prefix)
/// back into its probe identity and result.  Exposed for tests and
/// external tailers; tolerant -- returns false on anything malformed.
[[nodiscard]] bool parse_probe_line(std::string_view payload,
                                    cohort_key& key, std::int64_t& sweep_mv,
                                    std::uint64_t& content,
                                    probe_result& result);

/// As above, also recovering the probe's fault ledger.  The ledger fields
/// (`retries= wdt= crash= pwr= xhst= down=`) are optional on the wire and
/// default to a clean ledger, so pre-ledger journals stay readable.
[[nodiscard]] bool parse_probe_line(std::string_view payload,
                                    cohort_key& key, std::int64_t& sweep_mv,
                                    std::uint64_t& content,
                                    probe_result& result,
                                    probe_ledger& ledger);

} // namespace gb::fleet

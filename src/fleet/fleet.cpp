#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "harness/execution_engine.hpp"
#include "util/contracts.hpp"

namespace gb::fleet {

namespace {

/// FNV-1a over the little-endian bytes of one 64-bit word.
std::uint64_t fnv1a_fold(std::uint64_t hash, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xffU;
        hash *= 1099511628211ULL;
    }
    return hash;
}

constexpr std::uint64_t fnv_offset_basis = 14695981039346656037ULL;

} // namespace

fleet_node make_node(const fleet_spec& spec, std::uint64_t id) {
    if (!spec.explicit_nodes.empty()) {
        GB_EXPECTS(id < spec.explicit_nodes.size());
        return spec.explicit_nodes[static_cast<std::size_t>(id)];
    }
    GB_EXPECTS(spec.workload_classes >= 1);
    GB_EXPECTS(spec.operating_points >= 1);
    fleet_node node;
    node.id = id;
    // One splitmix64 word carries all three axis draws; the independent
    // byte lanes keep the axes decorrelated without extra mixing.
    const std::uint64_t word = derive_task_seed(spec.seed, id);
    node.cohort.corner = static_cast<process_corner>(word % 3);
    node.cohort.workload_class = static_cast<std::uint16_t>(
        (word >> 8) % static_cast<std::uint64_t>(spec.workload_classes));
    node.cohort.operating_point = static_cast<std::uint16_t>(
        (word >> 24) % static_cast<std::uint64_t>(spec.operating_points));
    node.seed = derive_task_seed(spec.seed + 0x517cc1b727220a95ULL, id);
    return node;
}

double node_jitter_mv(const fleet_spec& spec, const fleet_node& node) {
    if (spec.node_jitter_mv <= 0.0) {
        return 0.0;
    }
    // 53 uniform mantissa bits of the node's seed word -> [0, 1).
    const double unit =
        static_cast<double>(node.seed >> 11) * 0x1.0p-53;
    return unit * spec.node_jitter_mv;
}

double bin_voltage_mv(const fleet_spec& spec, double requirement_mv) {
    GB_EXPECTS(spec.bin_step_mv > 0.0);
    const double binned =
        std::ceil(requirement_mv / spec.bin_step_mv) * spec.bin_step_mv;
    return std::min(spec.bin_cap_mv, binned);
}

std::uint64_t probe_content(const cohort_key& key, std::int64_t sweep_mv) {
    std::uint64_t hash = fnv_offset_basis;
    hash = fnv1a_fold(hash, static_cast<std::uint64_t>(key.corner));
    hash = fnv1a_fold(hash, key.workload_class);
    hash = fnv1a_fold(hash, key.operating_point);
    hash = fnv1a_fold(hash, key.variant);
    hash = fnv1a_fold(hash, static_cast<std::uint64_t>(sweep_mv));
    return hash;
}

} // namespace gb::fleet

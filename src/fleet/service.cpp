#include "fleet/service.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "harness/schedule.hpp"
#include "harness/status.hpp"
#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"
#include "util/contracts.hpp"

namespace gb::fleet {

namespace {

/// Virtual cost of one probe for the shard planner; matches the engine's
/// task quantum so `gbreport utilization` on a fleet trace reproduces the
/// plan.
constexpr std::uint64_t probe_cost_ticks = 100;

std::string format_double(double value) {
    char buffer[64];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    GB_ENSURES(ec == std::errc{});
    return {buffer, end};
}

std::string format_hex(std::uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

bool corner_from_string(std::string_view text, process_corner& corner) {
    if (text == to_string(process_corner::ttt)) {
        corner = process_corner::ttt;
    } else if (text == to_string(process_corner::tff)) {
        corner = process_corner::tff;
    } else if (text == to_string(process_corner::tss)) {
        corner = process_corner::tss;
    } else {
        return false;
    }
    return true;
}

/// `key=value` field accessor over a tokenized payload; false when the
/// field is missing.
bool field_value(const std::vector<std::string_view>& tokens,
                 std::string_view key, std::string_view& value) {
    for (const std::string_view token : tokens) {
        if (token.size() > key.size() && token[key.size()] == '=' &&
            token.substr(0, key.size()) == key) {
            value = token.substr(key.size() + 1);
            return true;
        }
    }
    return false;
}

template <typename Integer>
bool parse_integer(std::string_view text, Integer& out, int base = 10) {
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out, base);
    return ec == std::errc{} && end == text.data() + text.size();
}

bool parse_real(std::string_view text, double& out) {
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && end == text.data() + text.size();
}

/// Atomic file publish via sibling-temp + rename, the status.cpp
/// discipline, for arbitrary snapshot bytes.
bool publish_bytes(const std::string& path, const std::string& bytes) {
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return false;
        }
        out << bytes;
        if (!out.flush()) {
            return false;
        }
    }
    return std::rename(temp.c_str(), path.c_str()) == 0;
}

} // namespace

bool parse_probe_line(std::string_view payload, cohort_key& key,
                      std::int64_t& sweep_mv, std::uint64_t& content,
                      probe_result& result) {
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < payload.size()) {
        const std::size_t space = payload.find(' ', pos);
        const std::size_t end =
            space == std::string_view::npos ? payload.size() : space;
        if (end > pos) {
            tokens.push_back(payload.substr(pos, end - pos));
        }
        pos = end + 1;
    }
    if (tokens.empty() || tokens.front() != "probe") {
        return false;
    }
    std::string_view value;
    return field_value(tokens, "corner", value) &&
           corner_from_string(value, key.corner) &&
           field_value(tokens, "class", value) &&
           parse_integer(value, key.workload_class) &&
           field_value(tokens, "op", value) &&
           parse_integer(value, key.operating_point) &&
           field_value(tokens, "variant", value) &&
           parse_integer(value, key.variant) &&
           field_value(tokens, "sweep", value) &&
           parse_integer(value, sweep_mv) &&
           field_value(tokens, "content", value) &&
           parse_integer(value, content, 16) &&
           field_value(tokens, "req", value) &&
           parse_real(value, result.requirement_mv) &&
           field_value(tokens, "pnom", value) &&
           parse_real(value, result.power_nominal_w) &&
           field_value(tokens, "ppt", value) &&
           parse_real(value, result.power_point_w) &&
           field_value(tokens, "bucket", value) &&
           parse_integer(value, result.bucket);
}

fleet_service::fleet_service(fleet_spec spec, fleet_service_config config,
                             probe_fn probe)
    : spec_(std::move(spec)),
      config_(std::move(config)),
      probe_(std::move(probe)) {
    // Cohort census: one pass over the fleet, sorted-key cohort order
    // ever after.  O(nodes) once; campaigns reuse it.
    std::map<cohort_key, std::uint64_t> members;
    const std::uint64_t nodes = spec_.node_count();
    for (std::uint64_t id = 0; id < nodes; ++id) {
        ++members[make_node(spec_, id).cohort];
    }
    cohorts_.reserve(members.size());
    for (const auto& [key, count] : members) {
        cohort_of_.emplace(key, cohorts_.size());
        cohort_state state;
        state.key = key;
        state.members = count;
        cohorts_.push_back(state);
    }
    if (!config_.journal_path.empty()) {
        warm_cache_from_journal();
        journal_ = std::make_unique<campaign_journal>(config_.journal_path);
    }
    if (config_.metrics != nullptr) {
        mh_.registered = true;
        mh_.nodes = config_.metrics->counter("fleet.chips");
        mh_.probes_executed =
            config_.metrics->counter("fleet.probes_executed");
        mh_.cache_hits = config_.metrics->counter("fleet.cache_hits");
        // Voltage-class bounds spanning the top of the binning range
        // ({880..980} under the default 10 mV step / 980 mV cap).
        std::vector<std::uint64_t> bounds;
        const auto cap = static_cast<std::int64_t>(spec_.bin_cap_mv);
        const auto step = static_cast<std::int64_t>(spec_.bin_step_mv);
        for (int i = 5; i >= 0; --i) {
            bounds.push_back(static_cast<std::uint64_t>(cap - 2 * step * i));
        }
        mh_.bin_mv =
            config_.metrics->histogram("fleet.bin_mv", std::move(bounds));
        mh_.power_nominal_w =
            config_.metrics->gauge("fleet.power_nominal_w");
        mh_.power_binned_w = config_.metrics->gauge("fleet.power_binned_w");
    }
}

std::size_t fleet_service::cohort_index(const cohort_key& key) const {
    const auto it = cohort_of_.find(key);
    GB_EXPECTS(it != cohort_of_.end());
    return it->second;
}

void fleet_service::warm_cache_from_journal() {
    std::ifstream in(config_.journal_path);
    if (!in) {
        return; // first boot: nothing to restore
    }
    std::string line;
    while (std::getline(in, line)) {
        if (in.eof()) { // no trailing newline: a record mid-append
            break;
        }
        if (line.empty()) {
            continue;
        }
        std::size_t task_index = 0;
        std::string_view payload;
        if (!parse_journal_prefix(line, task_index, payload)) {
            continue;
        }
        journal_serial_ = std::max(journal_serial_, task_index + 1);
        cohort_key key;
        std::int64_t sweep_mv = 0;
        std::uint64_t content = 0;
        probe_result result;
        if (parse_probe_line(payload, key, sweep_mv, content, result)) {
            cache_.insert(content, result);
            ++restored_;
        }
    }
}

void fleet_service::append_probe_line(const cohort_key& key,
                                      std::int64_t sweep_mv,
                                      std::uint64_t content,
                                      const probe_result& result) {
    if (!journal_) {
        return;
    }
    std::string line = "probe corner=";
    line += to_string(key.corner);
    line += " class=" + std::to_string(key.workload_class);
    line += " op=" + std::to_string(key.operating_point);
    line += " variant=" + std::to_string(key.variant);
    line += " sweep=" + std::to_string(sweep_mv);
    line += " content=" + format_hex(content);
    line += " req=" + format_double(result.requirement_mv);
    line += " pnom=" + format_double(result.power_nominal_w);
    line += " ppt=" + format_double(result.power_point_w);
    line += " bucket=" + std::to_string(result.bucket);
    journal_->append(journal_serial_++, line);
}

void fleet_service::publish_live(std::uint64_t pending) const {
    if (config_.state_path.empty()) {
        return;
    }
    campaign_status live;
    live.campaign = config_.campaign;
    live.running = true;
    live.tasks_total = pending;
    live.tasks_done = 0;
    live.retries = lifetime_stats_.retries;
    live.injected_faults = lifetime_stats_.injected_faults();
    live.aborted_rig = lifetime_stats_.aborted_rig;
    live.replayed = cache_.hits();
    live.rig_downtime_ms = static_cast<std::uint64_t>(
        std::llround(lifetime_stats_.rig_downtime_s * 1000.0));
    live.workers = resolve_worker_count(config_.workers);
    live.worker_task.assign(static_cast<std::size_t>(live.workers), -1);
    live.wall_elapsed_s = 0.0;
    publish_status(config_.state_path, live);
}

campaign_outcome fleet_service::run_campaign(std::int64_t sweep_mv) {
    ++epoch_;
    campaign_outcome outcome;

    // 1. Cache consultation, serial, in sorted cohort order -- the hit
    // and miss counters are exact.
    struct pending_probe {
        std::size_t cohort = 0;
        std::uint64_t content = 0;
    };
    std::vector<pending_probe> pending;
    for (std::size_t c = 0; c < cohorts_.size(); ++c) {
        cohort_state& cohort = cohorts_[c];
        ++cohort.probes;
        const std::uint64_t content = probe_content(cohort.key, sweep_mv);
        if (const probe_result* cached = cache_.lookup(content)) {
            cohort.last = *cached;
            cohort.probed = true;
            ++outcome.cache_hits;
        } else {
            pending.push_back({c, content});
        }
    }
    outcome.probes = cohorts_.size();
    probes_requested_ += cohorts_.size();

    // 2. Shard plan + engine runs.  Sharding only batches the engine
    // submissions; each probe's seed comes from its content id, so the
    // results -- and everything downstream -- are invariant under the
    // shard count.
    std::vector<probe_result> results(pending.size());
    if (!pending.empty()) {
        GB_EXPECTS(static_cast<bool>(probe_));
        publish_live(pending.size());
        const int shards = std::max(1, config_.shards);
        const schedule_result plan = list_schedule(
            std::vector<std::uint64_t>(pending.size(), probe_cost_ticks),
            shards);
        std::vector<std::vector<std::size_t>> batches(
            static_cast<std::size_t>(plan.workers));
        for (std::size_t j = 0; j < pending.size(); ++j) {
            batches[static_cast<std::size_t>(plan.assignment[j].worker)]
                .push_back(j);
        }
        execution_options engine_options;
        engine_options.workers = config_.workers;
        engine_options.base_seed = spec_.seed;
        engine_options.campaign = config_.campaign;
        engine_options.trace = config_.trace;
        engine_options.metrics = config_.metrics;
        // No engine status_path: per-shard engine totals depend on the
        // shard count, and the service's own snapshot must not.
        const execution_engine engine(engine_options);
        for (const std::vector<std::size_t>& batch : batches) {
            if (batch.empty()) {
                continue;
            }
            const std::size_t first = trace_index_base_;
            const execution_stats stats = engine.run(
                batch.size(),
                [&](const task_context& context) {
                    const std::size_t j = batch[context.index - first];
                    const pending_probe& entry = pending[j];
                    const cohort_state& cohort = cohorts_[entry.cohort];
                    probe_request request;
                    request.cohort = cohort.key;
                    request.sweep_mv = sweep_mv;
                    request.content = entry.content;
                    request.seed =
                        derive_task_seed(spec_.seed, entry.content);
                    request.members = cohort.members;
                    results[j] = probe_(request);
                    return results[j].bucket;
                },
                first);
            trace_index_base_ += batch.size();
            outcome.stats.merge(stats);
        }
    }

    // 3. Commit serially in sorted cohort order: cache inserts and the
    // deterministic probe journal.
    for (std::size_t j = 0; j < pending.size(); ++j) {
        const pending_probe& entry = pending[j];
        cache_.insert(entry.content, results[j]);
        cohort_state& cohort = cohorts_[entry.cohort];
        cohort.last = results[j];
        cohort.probed = true;
        append_probe_line(cohort.key, sweep_mv, entry.content, results[j]);
    }
    outcome.executed = pending.size();
    probes_executed_ += pending.size();
    lifetime_stats_.merge(outcome.stats);

    // 4. Fan cohort results out to the whole fleet in node-id order (a
    // fixed floating-point accumulation order, like every other sum).
    bins_.clear();
    double nominal_w = 0.0;
    double binned_w = 0.0;
    const std::uint64_t nodes = spec_.node_count();
    for (std::uint64_t id = 0; id < nodes; ++id) {
        const fleet_node node = make_node(spec_, id);
        const cohort_state& cohort = cohorts_[cohort_of_.at(node.cohort)];
        GB_EXPECTS(cohort.probed);
        const double requirement =
            cohort.last.requirement_mv + node_jitter_mv(spec_, node);
        const double bin = bin_voltage_mv(spec_, requirement);
        ++bins_[std::llround(bin)];
        nominal_w += cohort.last.power_nominal_w;
        binned_w += cohort.last.power_point_w;
        if (mh_.registered) {
            config_.metrics->observe(
                0, mh_.bin_mv,
                static_cast<std::uint64_t>(std::llround(bin)));
        }
    }
    power_nominal_w_ = nominal_w;
    power_binned_w_ = binned_w;

    if (mh_.registered) {
        config_.metrics->add(0, mh_.nodes, nodes);
        config_.metrics->add(0, mh_.probes_executed, outcome.executed);
        config_.metrics->add(0, mh_.cache_hits, outcome.cache_hits);
        config_.metrics->set(0, mh_.power_nominal_w, epoch_,
                             power_nominal_w_);
        config_.metrics->set(0, mh_.power_binned_w, epoch_,
                             power_binned_w_);
    }
    publish_state();
    return outcome;
}

std::string fleet_service::state_snapshot() const {
    // The snapshot *is* a final `--status` document -- load_status
    // ignores the extra "fleet" key -- so existing tooling (`gbreport
    // status`) reads fleet state with no changes.
    campaign_status status;
    status.campaign = config_.campaign;
    status.running = false;
    status.tasks_total = probes_requested_;
    status.tasks_done = probes_requested_;
    status.retries = lifetime_stats_.retries;
    status.injected_faults = lifetime_stats_.injected_faults();
    status.aborted_rig = lifetime_stats_.aborted_rig;
    status.replayed = cache_.hits();
    status.rig_downtime_ms = static_cast<std::uint64_t>(
        std::llround(lifetime_stats_.rig_downtime_s * 1000.0));
    std::string line = write_status_json(status);
    const std::size_t close = line.find_last_of('}');
    GB_ENSURES(close != std::string::npos);
    line.erase(close);

    std::ostringstream fleet;
    fleet << ",\"fleet\":{\"epoch\":" << epoch_
          << ",\"nodes\":" << spec_.node_count()
          << ",\"cohorts\":" << cohorts_.size()
          << ",\"probes_executed\":" << probes_executed_
          << ",\"cache_hits\":" << cache_.hits()
          << ",\"cache_entries\":" << cache_.size()
          << ",\"restored\":" << restored_
          << ",\"power_nominal_w\":" << format_double(power_nominal_w_)
          << ",\"power_binned_w\":" << format_double(power_binned_w_)
          << ",\"supervised_cohorts\":" << supervised_.size()
          << ",\"supervised_epochs\":" << supervised_epochs_;
    fleet << ",\"bins\":[";
    bool first = true;
    for (const auto& [voltage, count] : bins_) {
        fleet << (first ? "" : ",") << '[' << voltage << ',' << count
              << ']';
        first = false;
    }
    fleet << ']';
    // Cohort detail is capped so variant-unique mega-fleets keep the
    // endpoint small; `cohorts` above always carries the true count.
    constexpr std::size_t max_detail = 64;
    fleet << ",\"cohorts_top\":[";
    const std::size_t detail = std::min(cohorts_.size(), max_detail);
    for (std::size_t c = 0; c < detail; ++c) {
        const cohort_state& cohort = cohorts_[c];
        fleet << (c == 0 ? "" : ",") << "{\"corner\":\""
              << to_string(cohort.key.corner) << "\",\"class\":"
              << cohort.key.workload_class
              << ",\"op\":" << cohort.key.operating_point
              << ",\"variant\":" << cohort.key.variant
              << ",\"members\":" << cohort.members
              << ",\"probes\":" << cohort.probes << ",\"req_mv\":"
              << format_double(cohort.probed ? cohort.last.requirement_mv
                                             : 0.0)
              << ",\"bucket\":" << (cohort.probed ? cohort.last.bucket : -1)
              << '}';
    }
    fleet << "]}";
    line += fleet.str();
    line += "}\n";
    return line;
}

bool fleet_service::publish_state() const {
    if (config_.state_path.empty()) {
        return false;
    }
    return publish_bytes(config_.state_path, state_snapshot());
}

operating_point_supervisor& fleet_service::supervisor_for(
    const cohort_key& key, const supervisor_config& config,
    voltage_governor* governor) {
    auto it = supervised_.find(key);
    if (it == supervised_.end()) {
        supervised_cohort cohort;
        cohort.supervisor =
            std::make_unique<operating_point_supervisor>(config, governor);
        cohort.supervisor->set_trace(config_.trace, config_.metrics);
        it = supervised_.emplace(key, std::move(cohort)).first;
    }
    return *it->second.supervisor;
}

supervised_epoch fleet_service::run_epoch(
    const cohort_key& key, const epoch_request& request,
    const std::function<epoch_result(const epoch_plan&)>& execute) {
    const auto it = supervised_.find(key);
    GB_EXPECTS(it != supervised_.end());
    supervised_epoch epoch =
        run_supervised_epoch(*it->second.supervisor, request, execute);
    ++it->second.epochs;
    ++supervised_epochs_;
    return epoch;
}

} // namespace gb::fleet

#include "fleet/service.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <utility>

#include "harness/chaos/chaos.hpp"
#include "harness/fault_injection.hpp"
#include "harness/schedule.hpp"
#include "harness/status.hpp"
#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"
#include "util/contracts.hpp"

namespace gb::fleet {

namespace {

/// Virtual cost of one probe for the shard planner; matches the engine's
/// task quantum so `gbreport utilization` on a fleet trace reproduces the
/// plan.
constexpr std::uint64_t probe_cost_ticks = 100;

std::string format_double(double value) {
    char buffer[64];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    GB_ENSURES(ec == std::errc{});
    return {buffer, end};
}

std::string format_hex(std::uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

bool corner_from_string(std::string_view text, process_corner& corner) {
    if (text == to_string(process_corner::ttt)) {
        corner = process_corner::ttt;
    } else if (text == to_string(process_corner::tff)) {
        corner = process_corner::tff;
    } else if (text == to_string(process_corner::tss)) {
        corner = process_corner::tss;
    } else {
        return false;
    }
    return true;
}

/// `key=value` field accessor over a tokenized payload; false when the
/// field is missing.
bool field_value(const std::vector<std::string_view>& tokens,
                 std::string_view key, std::string_view& value) {
    for (const std::string_view token : tokens) {
        if (token.size() > key.size() && token[key.size()] == '=' &&
            token.substr(0, key.size()) == key) {
            value = token.substr(key.size() + 1);
            return true;
        }
    }
    return false;
}

template <typename Integer>
bool parse_integer(std::string_view text, Integer& out, int base = 10) {
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out, base);
    return ec == std::errc{} && end == text.data() + text.size();
}

bool parse_real(std::string_view text, double& out) {
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && end == text.data() + text.size();
}

/// Atomic file publish via sibling-temp + rename, the status.cpp
/// discipline, for arbitrary snapshot bytes.  The two snapshot chaos
/// seams live here: a torn temp write (the rename never happens, readers
/// keep the previous snapshot) and a kill between the finished temp and
/// the rename.
bool publish_bytes(const std::string& path, const std::string& bytes,
                   chaos_plan* chaos) {
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return false;
        }
        if (chaos != nullptr) {
            if (const auto tear = chaos->on_snapshot_temp(bytes.size())) {
                out << std::string_view(bytes).substr(
                    0, static_cast<std::size_t>(tear->keep));
                out.flush();
                chaos->kill(tear->site);
            }
        }
        out << bytes;
        if (!out.flush()) {
            return false;
        }
    }
    if (chaos != nullptr && chaos->on_snapshot_rename()) {
        chaos->kill(chaos_site::snapshot_rename);
    }
    return std::rename(temp.c_str(), path.c_str()) == 0;
}

/// Fault-draw key for re-plan round `round` of a probe: round 0 draws
/// exactly where a single-round plan would, later rounds re-key so the
/// retry sees fresh draws.  A pure function of content, never of engine
/// task indices -- what keeps faulty campaigns shard-invariant and makes
/// a probe's ledger a property of the probe itself.
std::uint64_t replan_key(std::uint64_t content, int round) {
    return round == 0 ? content
                      : derive_task_seed(content,
                                         static_cast<std::uint64_t>(round));
}

void fold_ledger(execution_stats& stats, const probe_ledger& ledger) {
    stats.retries += ledger.retries;
    stats.watchdog_timeouts += ledger.watchdog_timeouts;
    stats.board_crashes += ledger.board_crashes;
    stats.power_switch_failures += ledger.power_switch_failures;
    stats.aborted_rig += ledger.exhausted_rounds;
    stats.rig_downtime_s += ledger.downtime_s;
}

bool same_result(const probe_result& a, const probe_result& b) {
    return a.requirement_mv == b.requirement_mv &&
           a.power_nominal_w == b.power_nominal_w &&
           a.power_point_w == b.power_point_w && a.bucket == b.bucket;
}

/// Fault-draw domain for replicas beyond the first, so redundant
/// executions see independent rig faults without disturbing replica 0's
/// draws (which must stay byte-identical to the quorum=1 schedule).
constexpr std::uint64_t replica_fault_domain = 0x7265706c2d666c74ULL;

/// What a Byzantine rig's silent corruption does to one probe result.
/// The weak-cell sites land on the outcome bucket (the fleet probe's
/// cell-count-like integer channel); the others on the named scalars.
probe_result apply_sdc(const probe_result& clean,
                       const sdc_corruption& corruption) {
    probe_result result = clean;
    switch (corruption.site) {
    case sdc_site::vmin_flip:
        result.requirement_mv = sdc_plan::corrupt_vmin(
            result.requirement_mv, corruption.param);
        break;
    case sdc_site::weak_drop:
    case sdc_site::weak_phantom:
        result.bucket = static_cast<int>(sdc_plan::corrupt_weak_cells(
            result.bucket, corruption.site, corruption.param));
        break;
    case sdc_site::power_scale:
        result.power_point_w =
            sdc_plan::corrupt_power(result.power_point_w, corruption.param);
        break;
    }
    return result;
}

std::string format_probe_payload(const cohort_key& key,
                                 std::int64_t sweep_mv,
                                 std::uint64_t content,
                                 const probe_result& result,
                                 const probe_ledger& ledger) {
    std::string line = "probe corner=";
    line += to_string(key.corner);
    line += " class=" + std::to_string(key.workload_class);
    line += " op=" + std::to_string(key.operating_point);
    line += " variant=" + std::to_string(key.variant);
    line += " sweep=" + std::to_string(sweep_mv);
    line += " content=" + format_hex(content);
    line += " req=" + format_double(result.requirement_mv);
    line += " pnom=" + format_double(result.power_nominal_w);
    line += " ppt=" + format_double(result.power_point_w);
    line += " bucket=" + std::to_string(result.bucket);
    line += " retries=" + std::to_string(ledger.retries);
    line += " wdt=" + std::to_string(ledger.watchdog_timeouts);
    line += " crash=" + std::to_string(ledger.board_crashes);
    line += " pwr=" + std::to_string(ledger.power_switch_failures);
    line += " xhst=" + std::to_string(ledger.exhausted_rounds);
    line += " down=" + format_double(ledger.downtime_s);
    return line;
}

std::string format_rigs(const std::vector<std::uint32_t>& rigs) {
    std::string text;
    for (const std::uint32_t rig : rigs) {
        if (!text.empty()) {
            text += ':';
        }
        text += std::to_string(rig);
    }
    return text;
}

std::vector<std::string_view> tokenize(std::string_view payload) {
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < payload.size()) {
        const std::size_t space = payload.find(' ', pos);
        const std::size_t end =
            space == std::string_view::npos ? payload.size() : space;
        if (end > pos) {
            tokens.push_back(payload.substr(pos, end - pos));
        }
        pos = end + 1;
    }
    return tokens;
}

bool parse_rigs(std::string_view text, std::vector<std::uint32_t>& rigs) {
    rigs.clear();
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t colon = text.find(':', pos);
        const std::size_t end =
            colon == std::string_view::npos ? text.size() : colon;
        std::uint32_t rig = 0;
        if (!parse_integer(text.substr(pos, end - pos), rig)) {
            return false;
        }
        rigs.push_back(rig);
        if (colon == std::string_view::npos) {
            return true;
        }
        pos = colon + 1;
    }
    return false;
}

} // namespace

bool parse_probe_line(std::string_view payload, cohort_key& key,
                      std::int64_t& sweep_mv, std::uint64_t& content,
                      probe_result& result, probe_ledger& ledger) {
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < payload.size()) {
        const std::size_t space = payload.find(' ', pos);
        const std::size_t end =
            space == std::string_view::npos ? payload.size() : space;
        if (end > pos) {
            tokens.push_back(payload.substr(pos, end - pos));
        }
        pos = end + 1;
    }
    if (tokens.empty() || tokens.front() != "probe") {
        return false;
    }
    std::string_view value;
    if (!(field_value(tokens, "corner", value) &&
          corner_from_string(value, key.corner) &&
          field_value(tokens, "class", value) &&
          parse_integer(value, key.workload_class) &&
          field_value(tokens, "op", value) &&
          parse_integer(value, key.operating_point) &&
          field_value(tokens, "variant", value) &&
          parse_integer(value, key.variant) &&
          field_value(tokens, "sweep", value) &&
          parse_integer(value, sweep_mv) &&
          field_value(tokens, "content", value) &&
          parse_integer(value, content, 16) &&
          field_value(tokens, "req", value) &&
          parse_real(value, result.requirement_mv) &&
          field_value(tokens, "pnom", value) &&
          parse_real(value, result.power_nominal_w) &&
          field_value(tokens, "ppt", value) &&
          parse_real(value, result.power_point_w) &&
          field_value(tokens, "bucket", value) &&
          parse_integer(value, result.bucket))) {
        return false;
    }
    // The ledger fields are optional on the wire (pre-ledger journals
    // stay readable) but must parse when present.
    ledger = {};
    const auto optional_u64 = [&](std::string_view field,
                                  std::uint64_t& out) {
        std::string_view text;
        return !field_value(tokens, field, text) ||
               parse_integer(text, out);
    };
    std::string_view down_text;
    return optional_u64("retries", ledger.retries) &&
           optional_u64("wdt", ledger.watchdog_timeouts) &&
           optional_u64("crash", ledger.board_crashes) &&
           optional_u64("pwr", ledger.power_switch_failures) &&
           optional_u64("xhst", ledger.exhausted_rounds) &&
           (!field_value(tokens, "down", down_text) ||
            parse_real(down_text, ledger.downtime_s));
}

bool parse_probe_line(std::string_view payload, cohort_key& key,
                      std::int64_t& sweep_mv, std::uint64_t& content,
                      probe_result& result) {
    probe_ledger ledger;
    return parse_probe_line(payload, key, sweep_mv, content, result,
                            ledger);
}

fleet_service::fleet_service(fleet_spec spec, fleet_service_config config,
                             probe_fn probe)
    : spec_(std::move(spec)),
      config_(std::move(config)),
      probe_(std::move(probe)) {
    // Cohort census: one pass over the fleet, sorted-key cohort order
    // ever after.  O(nodes) once; campaigns reuse it.
    std::map<cohort_key, std::uint64_t> members;
    const std::uint64_t nodes = spec_.node_count();
    for (std::uint64_t id = 0; id < nodes; ++id) {
        ++members[make_node(spec_, id).cohort];
    }
    cohorts_.reserve(members.size());
    for (const auto& [key, count] : members) {
        cohort_of_.emplace(key, cohorts_.size());
        cohort_state state;
        state.key = key;
        state.members = count;
        cohorts_.push_back(state);
    }
    cohort_last_content_.assign(cohorts_.size(), 0);
    GB_EXPECTS(config_.integrity.quorum >= 1);
    effective_rigs_ = config_.integrity.rigs != 0
                          ? std::max<std::uint64_t>(
                                config_.integrity.rigs,
                                static_cast<std::uint64_t>(
                                    config_.integrity.quorum))
                          : std::max<std::uint64_t>(
                                static_cast<std::uint64_t>(
                                    config_.integrity.quorum),
                                8);
    rig_reputation_config reputation;
    reputation.blacklist_threshold =
        std::max<std::uint64_t>(1, config_.integrity.blacklist_threshold);
    reputation_ = rig_reputation(reputation);
    if (!config_.state_path.empty()) {
        // A crash between the snapshot temp write and its rename leaves a
        // stale `.tmp` sibling; it is dead bytes, never to be renamed.
        std::error_code ec;
        std::filesystem::remove(config_.state_path + ".tmp", ec);
    }
    if (config_.timeline != nullptr) {
        // The engine exists even rule-free so the timeline artifact's
        // alert section stays stable; it must exist before the journal
        // warm so replayed `alert` records restore its firing state.
        alerts_ = std::make_unique<alert_engine>(config_.alerts);
    }
    if (!config_.timeline_path.empty()) {
        std::error_code ec;
        std::filesystem::remove(config_.timeline_path + ".tmp", ec);
    }
    if (!config_.journal_path.empty()) {
        // A crash between a repair rewrite's temp and its rename leaves a
        // stale `.tmp` sibling -- dead bytes, never to be renamed.
        std::error_code ec;
        std::filesystem::remove(config_.journal_path + ".tmp", ec);
        warm_cache_from_journal();
        journal_ = std::make_unique<campaign_journal>(config_.journal_path);
        if (config_.chaos != nullptr) {
            journal_->set_chaos(config_.chaos);
        }
    }
    if (config_.metrics != nullptr) {
        mh_.registered = true;
        mh_.nodes = config_.metrics->counter("fleet.chips");
        mh_.probes_executed =
            config_.metrics->counter("fleet.probes_executed");
        mh_.cache_hits = config_.metrics->counter("fleet.cache_hits");
        mh_.restored = config_.metrics->counter("fleet.restored");
        mh_.healed_bytes = config_.metrics->counter("fleet.healed_bytes");
        mh_.replan_rounds =
            config_.metrics->counter("fleet.replan_rounds");
        mh_.shard_watchdog_trips =
            config_.metrics->counter("fleet.shard_watchdog_trips");
        // Voltage-class bounds spanning the top of the binning range
        // ({880..980} under the default 10 mV step / 980 mV cap).
        std::vector<std::uint64_t> bounds;
        const auto cap = static_cast<std::int64_t>(spec_.bin_cap_mv);
        const auto step = static_cast<std::int64_t>(spec_.bin_step_mv);
        for (int i = 5; i >= 0; --i) {
            bounds.push_back(static_cast<std::uint64_t>(cap - 2 * step * i));
        }
        mh_.bin_mv =
            config_.metrics->histogram("fleet.bin_mv", std::move(bounds));
        mh_.power_nominal_w =
            config_.metrics->gauge("fleet.power_nominal_w");
        mh_.power_binned_w = config_.metrics->gauge("fleet.power_binned_w");
        mh_.degraded_cohorts =
            config_.metrics->gauge("fleet.degraded_cohorts");
        if (config_.integrity.enabled()) {
            mh_.integrity = true;
            mh_.sdc_injected =
                config_.metrics->gauge("integrity.sdc_injected");
            mh_.sdc_detected =
                config_.metrics->gauge("integrity.sdc_detected");
            mh_.sdc_outvoted =
                config_.metrics->gauge("integrity.sdc_outvoted");
            mh_.sdc_corrected =
                config_.metrics->gauge("integrity.sdc_corrected");
            mh_.sdc_escaped =
                config_.metrics->gauge("integrity.sdc_escaped");
            mh_.audits = config_.metrics->gauge("integrity.audits");
            mh_.audit_mismatches =
                config_.metrics->gauge("integrity.audit_mismatches");
            mh_.dissents = config_.metrics->gauge("integrity.dissents");
            mh_.blacklisted_rigs =
                config_.metrics->gauge("integrity.blacklisted_rigs");
            mh_.quorum_stalemates =
                config_.metrics->gauge("integrity.quorum_stalemates");
            mh_.repaired_entries =
                config_.metrics->gauge("integrity.repaired_entries");
            mh_.replica_executions =
                config_.metrics->gauge("integrity.replica_executions");
        }
        if (restored_ > 0) {
            config_.metrics->add(0, mh_.restored, restored_);
        }
        if (healed_bytes_ > 0) {
            config_.metrics->add(0, mh_.healed_bytes, healed_bytes_);
        }
    }
}

std::size_t fleet_service::cohort_index(const cohort_key& key) const {
    const auto it = cohort_of_.find(key);
    GB_EXPECTS(it != cohort_of_.end());
    return it->second;
}

std::uint64_t fleet_service::degraded_cohorts() const {
    std::uint64_t count = 0;
    for (const cohort_state& cohort : cohorts_) {
        count += cohort.degraded ? 1 : 0;
    }
    return count;
}

void fleet_service::warm_cache_from_journal() {
    std::ifstream in(config_.journal_path, std::ios::binary);
    if (!in.is_open()) {
        return; // first boot: nothing to restore
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    in.close();

    const auto reject = [this](std::size_t lineno,
                               const std::string& reason) {
        throw fleet_journal_error("fleet journal " + config_.journal_path +
                                  ":" + std::to_string(lineno) + ": " +
                                  reason);
    };

    // The writer appends whole '\n'-terminated lines under a mutex and
    // commits serially in sorted cohort order, so a healthy journal obeys
    // invariants this loop enforces strictly: serials are 0,1,2,...;
    // cohort keys strictly increase within each run of equal sweep; no
    // content appears twice.  The ONLY damage this writer's own crash can
    // cause is a torn final line with no trailing newline -- that tail is
    // self-healed (truncated, counted in `healed_bytes_`); everything
    // else is a foreign edit or a bug and raises `fleet_journal_error`
    // rather than silently re-executing probes against bad state.
    std::size_t pos = 0;
    std::size_t lineno = 0;
    bool have_prev = false;
    std::int64_t prev_sweep = 0;
    cohort_key prev_key{};
    std::map<std::uint64_t, probe_result> seen;
    while (pos < bytes.size()) {
        const std::size_t newline = bytes.find('\n', pos);
        if (newline == std::string::npos) {
            healed_bytes_ += bytes.size() - pos;
            std::error_code ec;
            std::filesystem::resize_file(config_.journal_path, pos, ec);
            if (ec) {
                reject(lineno + 1,
                       "could not truncate torn tail: " + ec.message());
            }
            break;
        }
        const std::string_view line(bytes.data() + pos, newline - pos);
        pos = newline + 1;
        ++lineno;
        if (config_.chaos != nullptr &&
            config_.chaos->on_cache_warm_line()) {
            config_.chaos->kill(chaos_site::cache_warm);
        }
        std::size_t task_index = 0;
        std::string_view payload;
        if (!parse_journal_prefix(line, task_index, payload)) {
            reject(lineno, "not a journal record");
        }
        if (task_index != journal_serial_) {
            reject(lineno, "task serial " + std::to_string(task_index) +
                               " out of sequence (expected " +
                               std::to_string(journal_serial_) + ")");
        }
        // Observatory records (`tline` samples, `alert` transitions and
        // the `tseal` closing an epoch's block) consume journal serials
        // like probe records but carry no chain link and never fold into
        // the probe chain.  They are parsed strictly, tracked per epoch
        // (so a restarted daemon appends only the missing suffix of a
        // partial block) and replayed into the configured recorder and
        // alert engine.
        const std::size_t first_space = payload.find(' ');
        const std::string_view kind = payload.substr(
            0, first_space == std::string_view::npos ? payload.size()
                                                     : first_space);
        if (kind == "tline" || kind == "alert" || kind == "tseal") {
            const std::vector<std::string_view> tokens = tokenize(payload);
            std::string_view value;
            std::uint64_t record_epoch = 0;
            if (!field_value(tokens, "epoch", value) ||
                !parse_integer(value, record_epoch)) {
                reject(lineno, "unparseable observatory record");
            }
            if (sealed_epochs_.contains(record_epoch)) {
                reject(lineno, "observatory record after its epoch seal");
            }
            if (kind == "tline") {
                std::string_view series;
                std::uint64_t tick = 0;
                double sample = 0.0;
                if (!field_value(tokens, "series", series) ||
                    series.empty() || !field_value(tokens, "tick", value) ||
                    !parse_integer(value, tick) ||
                    !field_value(tokens, "value", value) ||
                    !parse_real(value, sample)) {
                    reject(lineno, "unparseable timeline record");
                }
                ++warm_tline_counts_[record_epoch];
                warm_epoch_ticks_[record_epoch] = tick;
                if (config_.timeline != nullptr) {
                    config_.timeline->append(series, tick, sample);
                }
            } else if (kind == "alert") {
                alert_event event;
                std::string_view rule;
                std::string_view series;
                std::string_view state;
                if (!field_value(tokens, "rule", rule) || rule.empty() ||
                    !field_value(tokens, "series", series) ||
                    series.empty() ||
                    !field_value(tokens, "state", state) ||
                    (state != "firing" && state != "resolved") ||
                    !field_value(tokens, "tick", value) ||
                    !parse_integer(value, event.tick) ||
                    !field_value(tokens, "value", value) ||
                    !parse_real(value, event.value)) {
                    reject(lineno, "unparseable alert record");
                }
                event.rule = std::string(rule);
                event.series = std::string(series);
                event.firing = state == "firing";
                ++warm_alert_counts_[record_epoch];
                if (config_.timeline != nullptr) {
                    config_.timeline->observe_tick(event.tick);
                }
                if (alerts_ != nullptr) {
                    alerts_->replay(event);
                }
            } else {
                std::uint64_t sealed_samples = 0;
                std::uint64_t sealed_events = 0;
                if (!field_value(tokens, "samples", value) ||
                    !parse_integer(value, sealed_samples) ||
                    !field_value(tokens, "events", value) ||
                    !parse_integer(value, sealed_events)) {
                    reject(lineno, "unparseable epoch seal");
                }
                if (sealed_samples != warm_tline_counts_[record_epoch] ||
                    sealed_events != warm_alert_counts_[record_epoch]) {
                    reject(lineno,
                           "epoch seal counts disagree with the records "
                           "before it");
                }
                sealed_epochs_.insert(record_epoch);
            }
            ++journal_serial_;
            // The block separates campaigns; the cohort-order invariant
            // restarts with the next probe run.
            have_prev = false;
            if (config_.integrity.enabled()) {
                record_layout_.push_back({false, std::string(payload)});
            }
            continue;
        }
        // With the integrity defenses on, every probe record must close
        // with a ` chain=` link folding the previous record's chain value
        // over this record's bytes -- an in-place edit anywhere breaks
        // every later link, which a torn-tail heal can never excuse.  With
        // them off the chain (and rigs provenance) is ignored like any
        // unknown field, so defended journals stay readable by undefended
        // services.
        if (config_.integrity.enabled()) {
            const std::size_t chain_at = payload.rfind(" chain=");
            if (chain_at == std::string_view::npos) {
                reject(lineno, "missing chain hash");
            }
            const std::string_view base = payload.substr(0, chain_at);
            std::uint64_t recorded = 0;
            if (!parse_integer(payload.substr(chain_at + 7), recorded,
                               16)) {
                reject(lineno, "unparseable chain hash");
            }
            const std::uint64_t expected = chain_next(chain_, base);
            if (recorded != expected) {
                reject(lineno, "chain hash mismatch (in-place corruption "
                               "upstream or on this record)");
            }
            chain_ = expected;
        }
        cohort_key key;
        std::int64_t sweep_mv = 0;
        std::uint64_t content = 0;
        probe_result result;
        probe_ledger ledger;
        if (!parse_probe_line(payload, key, sweep_mv, content, result,
                              ledger)) {
            reject(lineno, "unparseable probe record");
        }
        std::vector<std::uint32_t> rigs;
        if (config_.integrity.enabled()) {
            const std::vector<std::string_view> tokens = tokenize(payload);
            std::string_view rigs_text;
            if (field_value(tokens, "rigs", rigs_text) &&
                !parse_rigs(rigs_text, rigs)) {
                reject(lineno, "unparseable rigs provenance");
            }
        }
        if (cohort_of_.find(key) == cohort_of_.end()) {
            reject(lineno, "probe for a cohort outside this fleet");
        }
        const auto duplicate = seen.find(content);
        if (duplicate != seen.end()) {
            reject(lineno,
                   same_result(duplicate->second, result)
                       ? "duplicate entry for content " + format_hex(content)
                       : "contradictory re-execution of content " +
                             format_hex(content));
        }
        if (have_prev && sweep_mv == prev_sweep && !(prev_key < key)) {
            reject(lineno, "cohort order regressed within sweep " +
                               std::to_string(sweep_mv));
        }
        seen.emplace(content, result);
        prev_sweep = sweep_mv;
        prev_key = key;
        have_prev = true;
        ++journal_serial_;
        if (config_.integrity.enabled()) {
            cache_.insert(content, result, rigs);
            journal_entries_.push_back(
                {key, sweep_mv, content, result, ledger, std::move(rigs)});
            record_layout_.push_back({true, {}});
        } else {
            cache_.insert(content, result);
        }
        // Restored ledgers fold in journal order -- the exact order the
        // unfaulted run folds them at commit -- so the double-summed
        // downtime converges bitwise across a crash/restart.
        fold_ledger(ledger_stats_, ledger);
        ++restored_;
    }
}

void fleet_service::append_probe_line(const cohort_key& key,
                                      std::int64_t sweep_mv,
                                      std::uint64_t content,
                                      const probe_result& result,
                                      const probe_ledger& ledger,
                                      const std::vector<std::uint32_t>*
                                          rigs) {
    if (!journal_) {
        return;
    }
    std::string line =
        format_probe_payload(key, sweep_mv, content, result, ledger);
    if (rigs != nullptr) {
        // Defended wire: vouching rigs, then the chain link LAST so it
        // covers everything before it (including the provenance).
        line += " rigs=" + format_rigs(*rigs);
        chain_ = chain_next(chain_, line);
        line += " chain=" + format_chain(chain_);
    }
    journal_->append(journal_serial_++, line);
    if (config_.integrity.enabled()) {
        record_layout_.push_back({true, {}});
    }
}

void fleet_service::append_observatory_line(const std::string& payload) {
    if (!journal_) {
        return; // memory-only observatory: nothing to replay on restart
    }
    if (config_.chaos != nullptr) {
        // The observatory's own kill-point: tear the in-flight record the
        // way the journal seam tears probe lines -- a prefix of the full
        // `task=N <payload>\n` line reaches disk, the newline never does,
        // and the next warm self-heals the tail.
        const std::string full = "task=" + std::to_string(journal_serial_) +
                                 " " + payload + "\n";
        if (const auto tear =
                config_.chaos->on_timeline_append(full.size())) {
            std::ofstream out(config_.journal_path,
                              std::ios::binary | std::ios::app);
            out << std::string_view(full).substr(
                0, static_cast<std::size_t>(tear->keep));
            out.flush();
            config_.chaos->kill(tear->site);
        }
    }
    journal_->append(journal_serial_++, payload);
    if (config_.integrity.enabled()) {
        record_layout_.push_back({false, payload});
    }
}

std::uint64_t fleet_service::sdc_injected() const {
    return config_.integrity.sdc != nullptr
               ? config_.integrity.sdc->injected()
               : 0;
}

std::uint64_t fleet_service::sdc_escaped() const {
    const std::uint64_t injected = sdc_injected();
    return injected > sdc_detected_ ? injected - sdc_detected_ : 0;
}

probe_request fleet_service::request_for(const cohort_key& key,
                                         std::int64_t sweep_mv,
                                         std::uint64_t content) const {
    probe_request request;
    request.cohort = key;
    request.sweep_mv = sweep_mv;
    request.content = content;
    request.seed = derive_task_seed(spec_.seed, content);
    request.members = cohorts_[cohort_index(key)].members;
    return request;
}

probe_result fleet_service::execute_replica(const probe_request& request) {
    // Serial re-execution for audits, arbitration and repair.  No rig
    // faults here: the loud failure modes already ran their course when
    // the probe first resolved, and a re-execution's value is what the
    // defense needs -- only the silent corruption stream still applies.
    probe_result value = probe_(request);
    if (config_.integrity.sdc != nullptr) {
        if (const auto decision = config_.integrity.sdc->on_execution()) {
            value = apply_sdc(value, *decision);
        }
    }
    ++replica_executions_;
    return value;
}

void fleet_service::charge_dissent(
    std::uint64_t rig, std::set<std::uint64_t>& newly_blacklisted) {
    cache_.record_dissent();
    if (reputation_.record_dissent(rig)) {
        newly_blacklisted.insert(rig);
    }
}

std::vector<std::uint32_t> fleet_service::assigned_rigs(
    std::uint64_t content) const {
    // The configured quorum's rig assignment, sorted and uniqued.  A pure
    // function of the content (rig_for is round-free), so the journal's
    // provenance field -- and through it the chain hash -- is bitwise
    // identical whether the admission was unanimous, outvoted a dissenting
    // rig, or was repaired after the fact.  Dissent itself is recorded in
    // the reputation ledger and the integrity metrics, never in the
    // journal bytes.
    const int quorum = std::max(1, config_.integrity.quorum);
    std::vector<std::uint32_t> rigs;
    rigs.reserve(static_cast<std::size_t>(quorum));
    for (int r = 0; r < quorum; ++r) {
        rigs.push_back(static_cast<std::uint32_t>(
            rig_for(spec_.seed, content, r, effective_rigs_)));
    }
    std::sort(rigs.begin(), rigs.end());
    rigs.erase(std::unique(rigs.begin(), rigs.end()), rigs.end());
    return rigs;
}

bool fleet_service::arbitrate(const probe_request& request, int replicas,
                              probe_result& truth,
                              std::vector<std::uint32_t>& rigs) {
    GB_EXPECTS(replicas >= 1);
    std::vector<probe_result> votes;
    votes.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
        votes.push_back(execute_replica(request));
    }
    const quorum_tally tally =
        vote(votes.size(), [&](std::size_t a, std::size_t b) {
            return same_result(votes[a], votes[b]);
        });
    if (!tally.decided) {
        ++quorum_stalemates_;
        return false;
    }
    truth = votes[tally.winner];
    // Provenance is the configured quorum's content-pure rig assignment
    // (not the agreeing subset), so a repaired record carries exactly the
    // rigs a never-corrupted run would have recorded -- the
    // bitwise-convergence contract.
    rigs = assigned_rigs(request.content);
    return true;
}

void fleet_service::audit_scheduled_hits(
    std::int64_t sweep_mv,
    const std::vector<std::pair<std::size_t, std::uint64_t>>& candidates,
    std::set<std::uint64_t>& newly_blacklisted, bool& journal_dirty) {
    const int quorum = std::max(1, config_.integrity.quorum);
    for (const auto& [cohort_idx, content] : candidates) {
        ++audits_;
        const probe_result* cached = cache_.peek(content);
        if (cached == nullptr) {
            continue; // unreachable: an audited hit was just served
        }
        const cohort_state& cohort = cohorts_[cohort_idx];
        const probe_request request =
            request_for(cohort.key, sweep_mv, content);
        const probe_result observed = execute_replica(request);
        if (same_result(observed, *cached)) {
            continue;
        }
        // The audit replica and the cache disagree; neither is trusted.
        // Arbitrate with a fresh odd quorum on the standard assignment.
        ++audit_mismatches_;
        ++sdc_detected_;
        probe_result truth;
        std::vector<std::uint32_t> rigs;
        const int arbiters = std::max(3, quorum | 1);
        if (!arbitrate(request, arbiters, truth, rigs)) {
            continue; // stalemate: leave the cache alone, counted above
        }
        if (!same_result(truth, *cached)) {
            // The cache was poisoned: repair it, refresh the cohort, and
            // charge every rig that vouched for the bad value.
            ++sdc_corrected_;
            std::vector<std::uint32_t> charged;
            if (const auto* provenance = cache_.provenance(content)) {
                charged = *provenance;
            }
            cache_.repair(content, truth, rigs);
            if (cohort_last_content_[cohort_idx] == content) {
                cohorts_[cohort_idx].last = truth;
            }
            for (const std::uint32_t rig : charged) {
                charge_dissent(rig, newly_blacklisted);
            }
            for (journal_entry& entry : journal_entries_) {
                if (entry.content == content) {
                    entry.result = truth;
                    entry.rigs = rigs;
                    ++repaired_entries_;
                    journal_dirty = true;
                }
            }
        } else {
            // The cache was right; the audit replica itself lied.
            charge_dissent(rig_for(spec_.seed, content, quorum,
                                   effective_rigs_),
                           newly_blacklisted);
        }
    }
}

void fleet_service::repair_blacklisted_entries(
    const std::set<std::uint64_t>& newly_blacklisted, bool& journal_dirty) {
    if (newly_blacklisted.empty()) {
        return;
    }
    const int quorum = std::max(1, config_.integrity.quorum);
    for (journal_entry& entry : journal_entries_) {
        if (entry.rigs.empty()) {
            continue;
        }
        bool all_blacklisted = true;
        for (const std::uint32_t rig : entry.rigs) {
            if (!reputation_.blacklisted(rig)) {
                all_blacklisted = false;
                break;
            }
        }
        if (!all_blacklisted) {
            continue;
        }
        // Every voucher of this record is now blacklisted: nothing about
        // it is trustworthy, so re-execute the full quorum and repair.
        const probe_request request =
            request_for(entry.key, entry.sweep_mv, entry.content);
        probe_result truth;
        std::vector<std::uint32_t> rigs;
        if (!arbitrate(request, quorum, truth, rigs)) {
            continue;
        }
        const bool value_changed = !same_result(truth, entry.result);
        if (value_changed) {
            ++sdc_detected_;
            ++sdc_corrected_;
        }
        if (value_changed || rigs != entry.rigs) {
            entry.result = truth;
            entry.rigs = rigs;
            ++repaired_entries_;
            journal_dirty = true;
            cache_.repair(entry.content, truth, rigs);
            const std::size_t cohort_idx = cohort_index(entry.key);
            if (cohort_last_content_[cohort_idx] == entry.content) {
                cohorts_[cohort_idx].last = truth;
            }
        }
    }
}

void fleet_service::rewrite_journal() {
    if (!journal_) {
        return;
    }
    // Rebuild every line with a recomputed chain, then swap atomically.
    // Not a chaos seam: repair rewrites are driven by the deterministic
    // audit/blacklist schedule, and the stale `.tmp` a crash could leave
    // is removed at construction.  (The fresh campaign_journal restarts
    // the chaos byte counter -- documented in docs/ROBUSTNESS.md.)
    std::string bytes;
    std::uint64_t chain = chain_basis;
    std::size_t serial = 0;
    std::size_t probe_cursor = 0;
    for (const journal_record_ref& ref : record_layout_) {
        std::string line;
        if (ref.probe) {
            // Probe records are re-rendered from the (possibly repaired)
            // retained entries with a recomputed chain; observatory
            // records ride along verbatim, outside the chain.
            const journal_entry& entry = journal_entries_[probe_cursor++];
            line = format_probe_payload(entry.key, entry.sweep_mv,
                                        entry.content, entry.result,
                                        entry.ledger);
            line += " rigs=" + format_rigs(entry.rigs);
            chain = chain_next(chain, line);
            line += " chain=" + format_chain(chain);
        } else {
            line = ref.payload;
        }
        bytes += "task=" + std::to_string(serial++) + " " + line + "\n";
    }
    GB_ENSURES(probe_cursor == journal_entries_.size());
    const std::string temp = config_.journal_path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return;
        }
        out << bytes;
        if (!out.flush()) {
            return;
        }
    }
    if (std::rename(temp.c_str(), config_.journal_path.c_str()) != 0) {
        return; // keep appending to the old (still-linked) journal
    }
    chain_ = chain;
    journal_serial_ = serial;
    journal_ = std::make_unique<campaign_journal>(config_.journal_path);
    if (config_.chaos != nullptr) {
        journal_->set_chaos(config_.chaos);
    }
}

void fleet_service::publish_live(std::uint64_t pending) const {
    if (config_.state_path.empty()) {
        return;
    }
    campaign_status live;
    live.campaign = config_.campaign;
    live.running = true;
    live.tasks_total = pending;
    live.tasks_done = 0;
    live.retries = ledger_stats_.retries;
    live.injected_faults = ledger_stats_.injected_faults();
    live.aborted_rig = ledger_stats_.aborted_rig;
    live.replayed = scheduled_hits_;
    live.rig_downtime_ms = static_cast<std::uint64_t>(
        std::llround(ledger_stats_.rig_downtime_s * 1000.0));
    live.workers = resolve_worker_count(config_.workers);
    live.worker_task.assign(static_cast<std::size_t>(live.workers), -1);
    live.wall_elapsed_s = 0.0;
    publish_status(config_.state_path, live);
}

campaign_outcome fleet_service::run_campaign(std::int64_t sweep_mv) {
    ++epoch_;
    campaign_outcome outcome;

    // 1. Cache consultation, serial, in sorted cohort order -- the hit
    // and miss counters are exact.
    struct pending_probe {
        std::size_t cohort = 0;
        std::uint64_t content = 0;
    };
    std::vector<pending_probe> pending;
    // Audit sample of this campaign's scheduled hits: every
    // `audit_stride`-th one gets re-verified after commit.  Keyed by the
    // crash-invariant scheduled-hit count, so a restarted daemon audits
    // the same hits a never-crashed one does.
    std::vector<std::pair<std::size_t, std::uint64_t>> audit_candidates;
    const bool integrity_on = config_.integrity.enabled();
    for (std::size_t c = 0; c < cohorts_.size(); ++c) {
        cohort_state& cohort = cohorts_[c];
        ++cohort.probes;
        const std::uint64_t content = probe_content(cohort.key, sweep_mv);
        if (const probe_result* cached = cache_.lookup(content)) {
            cohort.last = *cached;
            cohort.probed = true;
            cohort.degraded = false;
            cohort_last_content_[c] = content;
            ++outcome.cache_hits;
            // A hit on a content already requested this lifetime is a
            // *scheduled* hit -- the only hit notion identical before and
            // after a crash/restart.  A hit on journal-restored content
            // is lifetime-local and stays out of the snapshot counters.
            if (requested_contents_.contains(content)) {
                ++scheduled_hits_;
                if (integrity_on && config_.integrity.audit_stride > 0 &&
                    scheduled_hits_ % config_.integrity.audit_stride == 0) {
                    audit_candidates.emplace_back(c, content);
                }
            } else {
                requested_contents_.insert(content);
            }
        } else {
            pending.push_back({c, content});
        }
    }
    outcome.probes = cohorts_.size();
    probes_requested_ += cohorts_.size();

    // 2. Shard plan + engine runs, in bounded-retry rounds.  Sharding
    // only batches the engine submissions; each probe's seed and fault
    // draws come from its content id, so the results -- and everything
    // downstream -- are invariant under the shard count.  A probe that
    // exhausts its attempts in one round is deferred to the next with an
    // exponential backoff charge; after the last round it degrades its
    // cohort instead of failing the campaign.
    const int quorum = std::max(1, config_.integrity.quorum);
    std::vector<probe_result> results(pending.size());
    std::vector<std::vector<probe_result>> replicas(pending.size());
    std::vector<probe_ledger> ledgers(pending.size());
    std::vector<char> resolved(pending.size(), 0);
    // Corruption decisions are drawn HERE, serially in pending (sorted
    // cohort) order, one opportunity per (probe, replica) -- never inside
    // engine workers -- so a corrupted campaign stays bitwise invariant
    // under GB_JOBS and the shard count.  A decision persists across
    // re-plan rounds: the Byzantine rig corrupts the replica whenever it
    // finally resolves.
    std::vector<std::optional<sdc_corruption>> poison;
    if (config_.integrity.sdc != nullptr && !pending.empty()) {
        poison.resize(pending.size() * static_cast<std::size_t>(quorum));
        for (auto& decision : poison) {
            decision = config_.integrity.sdc->on_execution();
        }
    }
    if (!pending.empty()) {
        GB_EXPECTS(static_cast<bool>(probe_));
        publish_live(pending.size());
        const int shards = std::max(1, config_.shards);
        execution_options engine_options;
        engine_options.workers = config_.workers;
        engine_options.base_seed = spec_.seed;
        engine_options.campaign = config_.campaign;
        engine_options.trace = config_.trace;
        engine_options.metrics = config_.metrics;
        // No engine status_path: per-shard engine totals depend on the
        // shard count, and the service's own snapshot must not.  No
        // engine fault plan either -- rig faults are simulated inside
        // the task body, keyed by content, for the same reason.
        const execution_engine engine(engine_options);
        const int attempts = std::max(1, config_.retry_budget + 1);
        const int last_round = std::max(0, config_.replan_rounds);

        std::vector<std::size_t> open(pending.size());
        std::iota(open.begin(), open.end(), std::size_t{0});
        for (int round = 0; round <= last_round && !open.empty(); ++round) {
            if (round > 0) {
                // Deferred probes sit out an exponentially growing
                // backoff, charged into their journaled downtime (virtual
                // seconds; no real sleeping).
                const double backoff = replan_backoff_s(
                    config_.replan_backoff_base_s, round);
                for (const std::size_t j : open) {
                    ledgers[j].downtime_s += backoff;
                }
                if (round == 1) {
                    outcome.replanned = open.size();
                }
                if (mh_.registered) {
                    config_.metrics->add(0, mh_.replan_rounds, 1);
                }
            }
            const schedule_result plan = list_schedule(
                std::vector<std::uint64_t>(open.size(), probe_cost_ticks),
                shards);
            std::vector<std::vector<std::size_t>> batches(
                static_cast<std::size_t>(plan.workers));
            for (std::size_t k = 0; k < open.size(); ++k) {
                batches[static_cast<std::size_t>(
                            plan.assignment[k].worker)]
                    .push_back(open[k]);
            }
            for (const std::vector<std::size_t>& batch : batches) {
                if (batch.empty()) {
                    continue;
                }
                double downtime_before = 0.0;
                for (const std::size_t j : batch) {
                    downtime_before += ledgers[j].downtime_s;
                }
                const std::size_t first = trace_index_base_;
                const execution_stats stats = engine.run(
                    batch.size(),
                    [&](const task_context& context) {
                        const std::size_t j = batch[context.index - first];
                        const pending_probe& entry = pending[j];
                        const cohort_state& cohort = cohorts_[entry.cohort];
                        probe_request request;
                        request.cohort = cohort.key;
                        request.sweep_mv = sweep_mv;
                        request.content = entry.content;
                        request.seed =
                            derive_task_seed(spec_.seed, entry.content);
                        request.members = cohort.members;
                        probe_ledger& ledger = ledgers[j];
                        // Replica 0's fault draws are keyed exactly as a
                        // quorum=1 plan's, so the defense-off schedule is
                        // byte-identical; redundant replicas re-key into
                        // their own fault streams.  A probe resolves only
                        // when EVERY replica does -- one exhausted rig
                        // defers the whole vote to the next round.
                        replicas[j].assign(
                            static_cast<std::size_t>(quorum), {});
                        int bucket = -1;
                        for (int r = 0; r < quorum; ++r) {
                            const std::uint64_t round_key =
                                replan_key(entry.content, round);
                            const std::uint64_t fault_key =
                                r == 0 ? round_key
                                       : derive_task_seed(
                                             round_key,
                                             replica_fault_domain +
                                                 static_cast<std::uint64_t>(
                                                     r));
                            bool replica_done = false;
                            for (int attempt = 0; attempt < attempts;
                                 ++attempt) {
                                const rig_fault fault =
                                    config_.faults == nullptr
                                        ? rig_fault::none
                                        : config_.faults->draw(fault_key,
                                                               attempt);
                                if (fault == rig_fault::none) {
                                    probe_result value = probe_(request);
                                    if (!poison.empty()) {
                                        const auto& decision =
                                            poison[j * static_cast<
                                                           std::size_t>(
                                                           quorum) +
                                                   static_cast<std::size_t>(
                                                       r)];
                                        if (decision) {
                                            value = apply_sdc(value,
                                                              *decision);
                                        }
                                    }
                                    replicas[j][static_cast<std::size_t>(
                                        r)] = value;
                                    if (r == 0) {
                                        bucket = value.bucket;
                                    }
                                    replica_done = true;
                                    break;
                                }
                                switch (fault) {
                                case rig_fault::hang_until_watchdog:
                                    ++ledger.watchdog_timeouts;
                                    break;
                                case rig_fault::board_crash:
                                    ++ledger.board_crashes;
                                    break;
                                case rig_fault::power_switch_failure:
                                    ++ledger.power_switch_failures;
                                    break;
                                case rig_fault::none:
                                    break;
                                }
                                ledger.downtime_s +=
                                    config_.faults->downtime_for(fault);
                                if (attempt + 1 < attempts) {
                                    ++ledger.retries;
                                }
                            }
                            if (!replica_done) {
                                ++ledger.exhausted_rounds;
                                return -1;
                            }
                        }
                        resolved[j] = 1;
                        return bucket;
                    },
                    first);
                trace_index_base_ += batch.size();
                outcome.stats.merge(stats);
                if (config_.shard_deadline_s > 0.0) {
                    // Shard watchdog: virtual rig downtime this batch
                    // accumulated beyond the deadline.  Observability
                    // only -- batch composition depends on the shard
                    // count, so this never reaches the snapshot.
                    double downtime_after = 0.0;
                    for (const std::size_t j : batch) {
                        downtime_after += ledgers[j].downtime_s;
                    }
                    if (downtime_after - downtime_before >
                        config_.shard_deadline_s) {
                        ++shard_watchdog_trips_;
                        if (mh_.registered) {
                            config_.metrics->add(
                                0, mh_.shard_watchdog_trips, 1);
                        }
                    }
                }
            }
            std::vector<std::size_t> still_open;
            for (const std::size_t j : open) {
                if (resolved[j] == 0) {
                    still_open.push_back(j);
                }
            }
            open = std::move(still_open);
        }
    }

    // 3. Commit serially in sorted cohort order: cache inserts, the
    // deterministic probe journal, and quarantine for probes that never
    // resolved.  Degraded probes are not cached and not journaled, so
    // the next request for the same content retries them; their ledgers
    // stay out of the snapshot stats (which lifetime ran them would
    // otherwise leak into the fold order) but reach the outcome.
    std::uint64_t executed = 0;
    std::set<std::uint64_t> newly_blacklisted;
    bool journal_dirty = false;
    for (std::size_t j = 0; j < pending.size(); ++j) {
        const pending_probe& entry = pending[j];
        cohort_state& cohort = cohorts_[entry.cohort];
        if (resolved[j] == 0) {
            cohort.probed = false;
            cohort.degraded = true;
            ++outcome.degraded;
            fold_ledger(outcome.stats, ledgers[j]);
            continue;
        }
        std::vector<std::uint32_t> provenance_rigs;
        if (integrity_on) {
            // Majority-of-N admission.  Replica r executed on the
            // content-pure rig `rig_for(seed, content, r)`; the winning
            // value is admitted with the assigned quorum's rigs as
            // provenance, dissenters are charged in the reputation
            // ledger, and a stalemate (possible only for even quorums or
            // multi-rig corruption) degrades the cohort conservatively --
            // with no majority, nobody can be blamed and nothing can be
            // admitted.
            const std::vector<probe_result>& votes = replicas[j];
            const quorum_tally tally =
                vote(votes.size(), [&](std::size_t a, std::size_t b) {
                    return same_result(votes[a], votes[b]);
                });
            replica_executions_ += votes.size();
            if (!tally.decided) {
                ++quorum_stalemates_;
                ++sdc_detected_;
                cohort.probed = false;
                cohort.degraded = true;
                ++outcome.degraded;
                fold_ledger(outcome.stats, ledgers[j]);
                continue;
            }
            for (const std::size_t d : tally.dissenters) {
                ++sdc_outvoted_;
                ++sdc_detected_;
                charge_dissent(rig_for(spec_.seed, entry.content,
                                       static_cast<int>(d),
                                       effective_rigs_),
                               newly_blacklisted);
            }
            provenance_rigs = assigned_rigs(entry.content);
            results[j] = votes[tally.winner];
            cache_.insert(entry.content, results[j], provenance_rigs);
        } else {
            results[j] = replicas[j].front();
            cache_.insert(entry.content, results[j]);
        }
        requested_contents_.insert(entry.content);
        cohort.last = results[j];
        cohort.probed = true;
        cohort.degraded = false;
        cohort_last_content_[entry.cohort] = entry.content;
        fold_ledger(ledger_stats_, ledgers[j]);
        fold_ledger(outcome.stats, ledgers[j]);
        append_probe_line(cohort.key, sweep_mv, entry.content, results[j],
                          ledgers[j],
                          integrity_on ? &provenance_rigs : nullptr);
        if (integrity_on && journal_) {
            journal_entries_.push_back({cohort.key, sweep_mv, entry.content,
                                        results[j], ledgers[j],
                                        provenance_rigs});
        }
        ++executed;
    }
    outcome.executed = executed;
    probes_executed_ += executed;

    // 3b. Integrity sweeps, still serial: re-verify the audit sample of
    // this campaign's scheduled hits, then re-execute whatever a freshly
    // blacklisted rig sole-sourced.  Both run before the node fan-out so
    // a repaired value reaches this campaign's bins and snapshot.
    if (integrity_on) {
        audit_scheduled_hits(sweep_mv, audit_candidates, newly_blacklisted,
                             journal_dirty);
        repair_blacklisted_entries(newly_blacklisted, journal_dirty);
        if (journal_dirty) {
            rewrite_journal();
        }
    }

    // 4. Fan cohort results out to the whole fleet in node-id order (a
    // fixed floating-point accumulation order, like every other sum).
    // Degraded cohorts serve the conservative answer: their nodes bin at
    // the nominal cap -- no exploitation without characterization -- and
    // contribute no measured power.
    bins_.clear();
    double nominal_w = 0.0;
    double binned_w = 0.0;
    const std::uint64_t nodes = spec_.node_count();
    for (std::uint64_t id = 0; id < nodes; ++id) {
        const fleet_node node = make_node(spec_, id);
        const cohort_state& cohort = cohorts_[cohort_of_.at(node.cohort)];
        GB_EXPECTS(cohort.probed || cohort.degraded);
        if (cohort.degraded) {
            const auto cap = static_cast<std::int64_t>(spec_.bin_cap_mv);
            ++bins_[cap];
            if (mh_.registered) {
                config_.metrics->observe(0, mh_.bin_mv,
                                         static_cast<std::uint64_t>(cap));
            }
            continue;
        }
        // Synthetic aging widens the *served* requirement only -- the
        // cached/journaled characterization stays drift-free, so the
        // timeline's drift-slope rules watch the same signal the binning
        // serves.  (Guarded so the default 0 keeps bins bit-identical.)
        double served_mv = cohort.last.requirement_mv;
        if (config_.aging_mv_per_epoch != 0.0) {
            served_mv += config_.aging_mv_per_epoch *
                         static_cast<double>(epoch_ - 1);
        }
        const double requirement = served_mv + node_jitter_mv(spec_, node);
        const double bin = bin_voltage_mv(spec_, requirement);
        ++bins_[std::llround(bin)];
        nominal_w += cohort.last.power_nominal_w;
        binned_w += cohort.last.power_point_w;
        if (mh_.registered) {
            config_.metrics->observe(
                0, mh_.bin_mv,
                static_cast<std::uint64_t>(std::llround(bin)));
        }
    }
    power_nominal_w_ = nominal_w;
    power_binned_w_ = binned_w;

    if (mh_.registered) {
        config_.metrics->add(0, mh_.nodes, nodes);
        config_.metrics->add(0, mh_.probes_executed, outcome.executed);
        config_.metrics->add(0, mh_.cache_hits, outcome.cache_hits);
        config_.metrics->set(0, mh_.power_nominal_w, epoch_,
                             power_nominal_w_);
        config_.metrics->set(0, mh_.power_binned_w, epoch_,
                             power_binned_w_);
        config_.metrics->set(0, mh_.degraded_cohorts, epoch_,
                             static_cast<double>(degraded_cohorts()));
        if (mh_.integrity) {
            const auto set = [&](const gauge_handle& handle,
                                 std::uint64_t value) {
                config_.metrics->set(0, handle, epoch_,
                                     static_cast<double>(value));
            };
            set(mh_.sdc_injected, sdc_injected());
            set(mh_.sdc_detected, sdc_detected_);
            set(mh_.sdc_outvoted, sdc_outvoted_);
            set(mh_.sdc_corrected, sdc_corrected_);
            set(mh_.sdc_escaped, sdc_escaped());
            set(mh_.audits, audits_);
            set(mh_.audit_mismatches, audit_mismatches_);
            set(mh_.dissents, reputation_.dissents());
            set(mh_.blacklisted_rigs, reputation_.blacklisted_count());
            set(mh_.quorum_stalemates, quorum_stalemates_);
            set(mh_.repaired_entries, repaired_entries_);
            set(mh_.replica_executions, replica_executions_);
        }
    }
    if (config_.timeline != nullptr) {
        observe_epoch();
    }
    publish_state();
    return outcome;
}

std::vector<std::pair<std::string, double>>
fleet_service::observatory_samples() const {
    // The epoch's fixed-order sample list.  Every value here already
    // appears in (or derives from) the content-pure state snapshot, so
    // the block is crash-invariant by construction; per-batch engine
    // observables (shard watchdog trips, physical cache hits) must stay
    // out for the same reason they stay out of the snapshot.
    std::vector<std::pair<std::string, double>> samples;
    samples.reserve(cohorts_.size() + 4);
    for (const cohort_state& cohort : cohorts_) {
        if (!cohort.probed) {
            continue;
        }
        double vmin = cohort.last.requirement_mv;
        if (config_.aging_mv_per_epoch != 0.0) {
            vmin += config_.aging_mv_per_epoch *
                    static_cast<double>(epoch_ - 1);
        }
        std::string series = "vmin.";
        series += to_string(cohort.key.corner);
        series += '.' + std::to_string(cohort.key.workload_class);
        series += '.' + std::to_string(cohort.key.operating_point);
        series += '.' + std::to_string(cohort.key.variant);
        samples.emplace_back(std::move(series), vmin);
    }
    samples.emplace_back("fleet.cache_hit_rate",
                         probes_requested_ > 0
                             ? static_cast<double>(scheduled_hits_) /
                                   static_cast<double>(probes_requested_)
                             : 0.0);
    samples.emplace_back("fleet.degraded_cohorts",
                         static_cast<double>(degraded_cohorts()));
    samples.emplace_back("fleet.power_binned_w", power_binned_w_);
    samples.emplace_back("fleet.power_nominal_w", power_nominal_w_);
    return samples;
}

void fleet_service::observe_epoch() {
    timeline_recorder& timeline = *config_.timeline;
    if (sealed_epochs_.contains(epoch_)) {
        // A previous lifetime journaled and sealed this epoch's whole
        // block; the warm replay already restored it.
        publish_timeline();
        return;
    }
    const auto samples = observatory_samples();
    const auto partial = warm_tline_counts_.find(epoch_);
    const std::uint64_t already =
        partial != warm_tline_counts_.end() ? partial->second : 0;
    // A partial block's samples are already in the recorder (warm replay)
    // at the tick the crashed lifetime drew; resume at that tick so the
    // suffix -- and everything downstream -- lands on the same bytes.
    const std::uint64_t tick = already > 0 ? warm_epoch_ticks_.at(epoch_)
                                           : timeline.advance();
    for (std::size_t s = static_cast<std::size_t>(already);
         s < samples.size(); ++s) {
        const auto& [series, value] = samples[s];
        timeline.append(series, tick, value);
        append_observatory_line(
            "tline epoch=" + std::to_string(epoch_) + " series=" + series +
            " tick=" + std::to_string(tick) +
            " value=" + format_double(value));
    }
    // Transitions already journaled by a crashed lifetime were replayed
    // into the engine, so re-evaluating emits exactly the not-yet-
    // journaled suffix (in the same rule-order x series-order the golden
    // run journals).
    std::uint64_t events =
        warm_alert_counts_.contains(epoch_) ? warm_alert_counts_[epoch_] : 0;
    if (alerts_ != nullptr) {
        for (const alert_event& event :
             alerts_->evaluate(timeline.snapshot(), tick)) {
            append_observatory_line(
                "alert epoch=" + std::to_string(epoch_) +
                " rule=" + event.rule + " series=" + event.series +
                " state=" + (event.firing ? "firing" : "resolved") +
                " tick=" + std::to_string(event.tick) +
                " value=" + format_double(event.value));
            ++events;
        }
    }
    append_observatory_line("tseal epoch=" + std::to_string(epoch_) +
                            " samples=" + std::to_string(samples.size()) +
                            " events=" + std::to_string(events));
    sealed_epochs_.insert(epoch_);
    publish_timeline();
}

std::string fleet_service::state_snapshot() const {
    // The snapshot *is* a final `--status` document -- load_status
    // ignores the extra "fleet" key -- so existing tooling (`gbreport
    // status`) reads fleet state with no changes.  Every field is
    // *content-pure*: a function of which probes the fleet's request
    // stream resolved, never of which service lifetime executed them, so
    // a crashed-and-recovered daemon's snapshot is bitwise identical to
    // an unfaulted one's (the recovery_check invariant).  Lifetime-local
    // facts -- journal restores, healed bytes, physical cache hits --
    // live in the metrics registry and accessors instead.
    campaign_status status;
    status.campaign = config_.campaign;
    status.running = false;
    status.tasks_total = probes_requested_;
    status.tasks_done = probes_requested_;
    status.retries = ledger_stats_.retries;
    status.injected_faults = ledger_stats_.injected_faults();
    status.aborted_rig = ledger_stats_.aborted_rig;
    status.replayed = scheduled_hits_;
    status.rig_downtime_ms = static_cast<std::uint64_t>(
        std::llround(ledger_stats_.rig_downtime_s * 1000.0));
    std::string line = write_status_json(status);
    const std::size_t close = line.find_last_of('}');
    GB_ENSURES(close != std::string::npos);
    line.erase(close);

    std::ostringstream fleet;
    fleet << ",\"fleet\":{\"epoch\":" << epoch_
          << ",\"nodes\":" << spec_.node_count()
          << ",\"cohorts\":" << cohorts_.size()
          << ",\"probes_executed\":" << requested_contents_.size()
          << ",\"cache_hits\":" << scheduled_hits_
          << ",\"cache_entries\":" << cache_.size()
          << ",\"power_nominal_w\":" << format_double(power_nominal_w_)
          << ",\"power_binned_w\":" << format_double(power_binned_w_)
          << ",\"supervised_cohorts\":" << supervised_.size()
          << ",\"supervised_epochs\":" << supervised_epochs_;
    fleet << ",\"bins\":[";
    bool first = true;
    for (const auto& [voltage, count] : bins_) {
        fleet << (first ? "" : ",") << '[' << voltage << ',' << count
              << ']';
        first = false;
    }
    fleet << ']';
    // Quarantine roster: which cohorts are being served degraded (capped
    // like cohorts_top; the counts always carry the truth).
    std::uint64_t degraded_count = 0;
    std::uint64_t degraded_nodes = 0;
    for (const cohort_state& cohort : cohorts_) {
        if (cohort.degraded) {
            ++degraded_count;
            degraded_nodes += cohort.members;
        }
    }
    constexpr std::size_t max_detail = 64;
    fleet << ",\"degraded\":{\"cohorts\":" << degraded_count
          << ",\"nodes\":" << degraded_nodes << ",\"quarantined\":[";
    std::size_t listed = 0;
    for (const cohort_state& cohort : cohorts_) {
        if (!cohort.degraded || listed == max_detail) {
            continue;
        }
        fleet << (listed == 0 ? "" : ",") << "{\"corner\":\""
              << to_string(cohort.key.corner)
              << "\",\"class\":" << cohort.key.workload_class
              << ",\"op\":" << cohort.key.operating_point
              << ",\"variant\":" << cohort.key.variant
              << ",\"members\":" << cohort.members << '}';
        ++listed;
    }
    fleet << "]}";
    // Cohort detail is capped so variant-unique mega-fleets keep the
    // endpoint small; `cohorts` above always carries the true count.
    fleet << ",\"cohorts_top\":[";
    const std::size_t detail = std::min(cohorts_.size(), max_detail);
    for (std::size_t c = 0; c < detail; ++c) {
        const cohort_state& cohort = cohorts_[c];
        fleet << (c == 0 ? "" : ",") << "{\"corner\":\""
              << to_string(cohort.key.corner) << "\",\"class\":"
              << cohort.key.workload_class
              << ",\"op\":" << cohort.key.operating_point
              << ",\"variant\":" << cohort.key.variant
              << ",\"members\":" << cohort.members
              << ",\"probes\":" << cohort.probes << ",\"req_mv\":"
              << format_double(cohort.probed ? cohort.last.requirement_mv
                                             : 0.0)
              << ",\"bucket\":" << (cohort.probed ? cohort.last.bucket : -1)
              << '}';
    }
    fleet << ']';
    // Observatory section, only when the timeline is configured (a
    // disabled observatory keeps the snapshot bytes unchanged; `gbreport
    // status` renders a stable placeholder for its absence).  Every field
    // replays from the journal, so it is crash-invariant like the rest.
    if (config_.timeline != nullptr) {
        fleet << ",\"timeline\":{\"series\":"
              << config_.timeline->series_count()
              << ",\"samples\":" << config_.timeline->sample_count()
              << ",\"rules\":" << alerts_->rules().size() << ",\"firing\":[";
        bool first_label = true;
        for (const std::string& label : alerts_->firing()) {
            fleet << (first_label ? "" : ",") << '"' << label << '"';
            first_label = false;
        }
        fleet << "],\"events\":" << alerts_->events().size() << '}';
    }
    fleet << '}';
    line += fleet.str();
    line += "}\n";
    return line;
}

bool fleet_service::publish_state() const {
    if (config_.state_path.empty()) {
        return false;
    }
    return publish_bytes(config_.state_path, state_snapshot(),
                         config_.chaos);
}

std::string fleet_service::timeline_snapshot() const {
    if (config_.timeline == nullptr) {
        return {};
    }
    std::ostringstream out;
    write_timeline_json(out, *config_.timeline, alerts_.get());
    return out.str();
}

bool fleet_service::publish_timeline() const {
    if (config_.timeline == nullptr || config_.timeline_path.empty()) {
        return false;
    }
    return publish_bytes(config_.timeline_path, timeline_snapshot(),
                         config_.chaos);
}

operating_point_supervisor& fleet_service::supervisor_for(
    const cohort_key& key, const supervisor_config& config,
    voltage_governor* governor) {
    auto it = supervised_.find(key);
    if (it == supervised_.end()) {
        supervised_cohort cohort;
        cohort.supervisor =
            std::make_unique<operating_point_supervisor>(config, governor);
        cohort.supervisor->set_trace(config_.trace, config_.metrics);
        it = supervised_.emplace(key, std::move(cohort)).first;
    }
    return *it->second.supervisor;
}

supervised_epoch fleet_service::run_epoch(
    const cohort_key& key, const epoch_request& request,
    const std::function<epoch_result(const epoch_plan&)>& execute) {
    const auto it = supervised_.find(key);
    GB_EXPECTS(it != supervised_.end());
    supervised_epoch epoch =
        run_supervised_epoch(*it->second.supervisor, request, execute);
    ++it->second.epochs;
    ++supervised_epochs_;
    return epoch;
}

} // namespace gb::fleet

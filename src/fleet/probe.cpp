#include "fleet/probe.hpp"

#include <memory>
#include <vector>

#include "chip/chip_model.hpp"
#include "chip/power.hpp"
#include "harness/framework.hpp"
#include "util/rng.hpp"
#include "workloads/cpu_profiles.hpp"

namespace gb::fleet {

namespace {

/// Shared immutable state behind one probe_fn.  The frameworks' profile
/// caches are concurrent-safe (framework.hpp); everything else is
/// read-only after construction.
struct probe_bank {
    fleet_spec spec;
    std::vector<std::unique_ptr<chip_model>> chips;
    std::vector<std::unique_ptr<characterization_framework>> frameworks;
};

constexpr double mhz_per_operating_point = 150.0;
constexpr double deployment_guard_mv = 10.0;

} // namespace

probe_fn make_xgene2_probe(const fleet_spec& spec) {
    auto bank = std::make_shared<probe_bank>();
    bank->spec = spec;
    for (const process_corner corner :
         {process_corner::ttt, process_corner::tff, process_corner::tss}) {
        bank->chips.push_back(std::make_unique<chip_model>(
            make_chip(corner), make_xgene2_pdn()));
        bank->frameworks.push_back(
            std::make_unique<characterization_framework>(
                *bank->chips.back(),
                spec.seed + static_cast<std::uint64_t>(corner)));
    }
    return [bank](const probe_request& request) {
        const auto corner_index =
            static_cast<std::size_t>(request.cohort.corner);
        characterization_framework& framework =
            *bank->frameworks[corner_index];
        const std::vector<cpu_benchmark>& suite = spec2006_suite();

        const megahertz frequency{
            nominal_core_frequency.value -
            mhz_per_operating_point * request.cohort.operating_point};
        std::vector<core_assignment> assignments;
        assignments.reserve(cores_per_chip);
        for (int core = 0; core < cores_per_chip; ++core) {
            const cpu_benchmark& benchmark =
                suite[(request.cohort.workload_class +
                       static_cast<std::size_t>(core)) %
                      suite.size()];
            assignments.push_back(core_assignment{
                core, &framework.profile_of(benchmark.loop, frequency),
                frequency});
        }

        // Unique-silicon cohorts analyze a jittered chip of the corner;
        // the chip derives from (spec seed, corner, variant) only, so the
        // same cohort sees the same silicon at every sweep point.
        const chip_model* chip = bank->chips[corner_index].get();
        std::unique_ptr<chip_model> variant_chip;
        if (request.cohort.variant != 0) {
            rng chip_rng(derive_task_seed(
                bank->spec.seed + 0x243f6a8885a308d3ULL,
                (static_cast<std::uint64_t>(request.cohort.variant) << 2) |
                    corner_index));
            variant_chip = std::make_unique<chip_model>(
                random_chip(request.cohort.corner, chip_rng),
                make_xgene2_pdn());
            chip = variant_chip.get();
        }

        probe_result result;
        result.requirement_mv =
            chip->analyze(assignments, request.seed).vmin.value +
            deployment_guard_mv + static_cast<double>(request.sweep_mv);
        const cpu_power_model power;
        result.power_nominal_w =
            power
                .pmd_domain_power(chip->config(), assignments,
                                  nominal_pmd_voltage, celsius{50.0})
                .value;
        result.power_point_w =
            power
                .pmd_domain_power(
                    chip->config(), assignments,
                    millivolts{bin_voltage_mv(bank->spec,
                                              result.requirement_mv)},
                    celsius{50.0})
                .value;
        result.bucket = static_cast<int>(request.cohort.corner);
        return result;
    };
}

} // namespace gb::fleet

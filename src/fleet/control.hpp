// Control-file protocol for the fleet daemon: one command per write,
// acknowledged by truncation.
//
// The wire is a plain file the daemon polls -- deliberately primitive, so
// any shell or orchestration layer can drive the daemon -- but the
// primitive wire has real failure modes the chaos harness (and a Scrooge
// -style undervolted server) exposes:
//
//   * a client killed mid-write leaves *partial* command bytes (no
//     terminating newline).  The daemon must not execute a prefix of a
//     command, so completeness is explicit: a command is only actionable
//     once its trailing '\n' is on disk;
//   * partial bytes that never complete are *stale* -- the daemon rejects
//     them (truncate + diagnostic) after a bounded number of unchanged
//     polls instead of wedging the control channel forever;
//   * the daemon dying between acting and truncating redelivers the
//     command on restart (at-least-once).  Every verb is idempotent:
//     `campaign` re-runs against the content-addressed cache, `publish`
//     rewrites the same bytes, `shutdown` exits again;
//   * the *client's* truncation ack can be lost (daemon killed first), so
//     waiting for it must be bounded: `await_control_ack` polls with a
//     deterministic exponential-backoff schedule and gives up instead of
//     spinning forever.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace gb::fleet {

/// One poll of the control file.
struct control_read {
    enum class state : std::uint8_t {
        empty,    ///< no pending command (missing or zero-length file)
        partial,  ///< bytes present but no complete line yet
        complete, ///< `command` holds the first complete line
        oversized ///< garbage beyond any plausible command; reject it
    };
    state status = state::empty;
    std::string command;      ///< first complete line, when complete
    std::uint64_t bytes = 0;  ///< raw bytes seen (stale-detection key)
};

/// Commands longer than this are not commands; the daemon truncates them
/// with a diagnostic instead of buffering unbounded garbage.
inline constexpr std::uint64_t max_control_bytes = 4096;

/// Read the control file's current state.  Never throws; unreadable files
/// report `empty`.
[[nodiscard]] control_read read_control(const std::string& path);

/// Write `command` plus the terminating '\n' in one stream write.  False
/// on I/O error.
bool write_control(const std::string& path, std::string_view command);

/// Acknowledge a command by truncating the file (the protocol's ack).
bool ack_control(const std::string& path);

/// Bounded ack-wait policy.  The total wait is the sum of the backoff
/// schedule -- deterministic, so tests pin it exactly.
struct ack_wait_config {
    int retries = 8;          ///< polls after the initial one
    int backoff_base_ms = 20; ///< delay before retry k: base * 2^k ...
    int backoff_cap_ms = 2000; ///< ... capped here
};

/// Delay in ms before retry `attempt` (0-based): min(base * 2^attempt,
/// cap).  Pure; the backoff-schedule determinism test pins it.
[[nodiscard]] int ack_backoff_ms(const ack_wait_config& config,
                                 int attempt);

/// Poll until the daemon acks (file empty or removed) or the retry
/// budget runs out.  `sleep_fn` receives each backoff delay -- the CLI
/// passes a real sleep, tests pass a recorder.  True when acked.
bool await_control_ack(const std::string& path,
                       const ack_wait_config& config,
                       const std::function<void(int delay_ms)>& sleep_fn);

} // namespace gb::fleet

// Crash-consistent recovery checker for the fleet service.
//
// The chaos harness (harness/chaos) makes the daemon die at its
// persistence seams; this module makes recovery a *verified property*
// instead of a hope.  `run_recovery_check` runs the same campaign
// schedule twice over one fleet spec:
//
//   * a **golden** run -- fresh service, no chaos, every sweep in order,
//     final snapshot published;
//   * a **chaos** run -- the same schedule with the caller's kill-points
//     armed.  Each time a kill-point fires the service object is
//     abandoned exactly as a killed process would leave it (the partial
//     on-disk bytes are the only survivors), and a new service
//     incarnation is constructed over those bytes: it self-heals the
//     journal's torn tail, warms its cache from the intact records, and
//     re-executes only the probes the crash lost.  Kill-points during
//     that warm are survived the same way (recovery of the recovery
//     path).
//
// Convergence is then asserted *bitwise*: the chaos run's final journal
// bytes and snapshot bytes must equal the golden run's.  That is the
// strongest possible statement of crash consistency -- not "the daemon
// restarts", but "after any armed crash, the persistent state the fleet
// serves is indistinguishable from one that never crashed".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/service.hpp"
#include "harness/chaos/chaos.hpp"

namespace gb::fleet {

struct recovery_check_config {
    fleet_spec spec;
    /// Campaign schedule, replayed from the start by every service
    /// incarnation (campaigns already journaled become cache hits).
    std::vector<std::int64_t> sweeps;
    /// Kill-points to arm.  The mode is forced to `throw_crash` -- the
    /// checker survives crashes in-process by abandoning the object.
    chaos_plan_config chaos;
    int shards = 1;
    int workers = 1;
    /// Scratch directory; `golden.journal/.state` and
    /// `chaos.journal/.state` are created (and clobbered) inside.
    std::string work_dir;
    probe_fn probe;
    /// Optional rig-fault plan, applied identically to both runs.
    const fault_plan* faults = nullptr;
    int retry_budget = 3;
    int replan_rounds = 2;
    double replan_backoff_base_s = 5.0;
    /// Optional integrity defenses (quorum, audit sampler, SDC plan),
    /// applied identically to both runs.  Note a shared `sdc` plan fires
    /// its one-shot triggers in whichever run executes first -- callers
    /// who want the golden run clean should arm SDC only via the chaos
    /// incarnations' own service config, or compare against a separate
    /// clean reference.
    fleet_integrity_config integrity;
    /// Observatory under test: when true each run gets its *own fresh*
    /// timeline recorder + alert engine per incarnation (in-memory
    /// observability dies with the process; only the journal survives),
    /// a `golden.timeline`/`chaos.timeline` artifact, and the report
    /// additionally asserts bitwise timeline convergence.
    bool timeline = false;
    /// Alert rules for both runs (timeline only).
    std::vector<alert_rule> alerts;
    /// Synthetic Vmin aging drift per epoch for both runs.
    double aging_mv_per_epoch = 0.0;
};

struct recovery_report {
    std::uint64_t crashes = 0;      ///< chaos kills survived
    std::uint64_t lives = 0;        ///< service incarnations (>= 1)
    std::uint64_t fired = 0;        ///< kill-points that actually fired
    std::uint64_t restored = 0;     ///< cache entries warmed, final life
    std::uint64_t healed_bytes = 0; ///< torn-tail bytes truncated, total
    std::uint64_t degraded = 0;     ///< degraded cohorts, final snapshot
    bool journal_match = false;     ///< chaos journal == golden journal
    bool snapshot_match = false;    ///< chaos snapshot == golden snapshot
    /// chaos timeline.json == golden timeline.json (true when the
    /// observatory is off: nothing to diverge).
    bool timeline_match = true;
    std::string failure;            ///< first divergence; empty if none
    [[nodiscard]] bool converged() const {
        return journal_match && snapshot_match && timeline_match &&
               failure.empty();
    }
};

/// Run the golden and chaos campaigns and compare their persistent state
/// byte for byte.  Throws only on harness misuse (missing probe,
/// unwritable work_dir); chaos outcomes are reported, not thrown.
[[nodiscard]] recovery_report run_recovery_check(
    const recovery_check_config& config);

} // namespace gb::fleet

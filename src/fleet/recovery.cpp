#include "fleet/recovery.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/contracts.hpp"

namespace gb::fleet {

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// First byte offset where the two strings differ (or the shorter length).
std::size_t first_divergence(const std::string& a, const std::string& b) {
    const std::size_t bound = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < bound; ++i) {
        if (a[i] != b[i]) {
            return i;
        }
    }
    return bound;
}

} // namespace

recovery_report run_recovery_check(const recovery_check_config& config) {
    GB_EXPECTS(static_cast<bool>(config.probe));
    GB_EXPECTS(!config.work_dir.empty());
    std::filesystem::create_directories(config.work_dir);

    const std::string golden_journal = config.work_dir + "/golden.journal";
    const std::string golden_state = config.work_dir + "/golden.state";
    const std::string golden_timeline = config.work_dir + "/golden.timeline";
    const std::string chaos_journal = config.work_dir + "/chaos.journal";
    const std::string chaos_state = config.work_dir + "/chaos.state";
    const std::string chaos_timeline = config.work_dir + "/chaos.timeline";
    for (const std::string& stale :
         {golden_journal, golden_state, golden_timeline, chaos_journal,
          chaos_state, chaos_timeline}) {
        std::error_code ec;
        std::filesystem::remove(stale, ec);
        std::filesystem::remove(stale + ".tmp", ec);
    }

    const auto service_config = [&config](const std::string& journal,
                                          const std::string& state,
                                          const std::string& timeline_path,
                                          timeline_recorder* timeline,
                                          chaos_plan* chaos) {
        fleet_service_config sc;
        sc.campaign = "recovery-check";
        sc.shards = config.shards;
        sc.workers = config.workers;
        sc.journal_path = journal;
        sc.state_path = state;
        sc.faults = config.faults;
        sc.retry_budget = config.retry_budget;
        sc.replan_rounds = config.replan_rounds;
        sc.replan_backoff_base_s = config.replan_backoff_base_s;
        sc.chaos = chaos;
        sc.integrity = config.integrity;
        sc.aging_mv_per_epoch = config.aging_mv_per_epoch;
        if (timeline != nullptr) {
            sc.timeline = timeline;
            sc.alerts = config.alerts;
            sc.timeline_path = timeline_path;
        }
        return sc;
    };
    const auto run_schedule = [&config](fleet_service& service) {
        for (const std::int64_t sweep : config.sweeps) {
            (void)service.run_campaign(sweep);
        }
        (void)service.publish_state();
    };

    recovery_report report;

    // Golden run: the bytes every chaos incarnation must converge to.
    {
        timeline_recorder golden_recorder;
        fleet_service golden(
            config.spec,
            service_config(golden_journal, golden_state, golden_timeline,
                           config.timeline ? &golden_recorder : nullptr,
                           nullptr),
            config.probe);
        run_schedule(golden);
    }

    // Chaos run: one shared plan across incarnations (triggers are
    // one-shot, so each fires in exactly one life) in throw mode, each
    // crash abandoning the object mid-flight like a killed process.
    chaos_plan_config chaos_config = config.chaos;
    chaos_config.mode = chaos_plan_config::kill_mode::throw_crash;
    chaos_plan chaos(chaos_config);
    // Every trigger can kill at most one life, so convergence within
    // `triggers + 1` lives is part of the property being checked.
    const std::uint64_t max_lives = chaos_config.triggers.size() + 1;
    bool finished = false;
    while (!finished) {
        if (report.lives == max_lives) {
            report.failure = "no convergence after " +
                             std::to_string(max_lives) +
                             " lives (kill-points kept firing)";
            report.fired = chaos.fired();
            return report;
        }
        ++report.lives;
        try {
            // A fresh recorder + alert engine per life: in-memory
            // observability dies with the process, only the journal's
            // observatory records survive and re-warm it.
            timeline_recorder life_recorder;
            fleet_service incarnation(
                config.spec,
                service_config(chaos_journal, chaos_state, chaos_timeline,
                               config.timeline ? &life_recorder : nullptr,
                               &chaos),
                config.probe);
            // The warm (and any torn-tail heal) happened in the
            // constructor, so record it before the campaigns can crash --
            // heals by intermediate lives count toward the total.
            report.restored = incarnation.restored();
            report.healed_bytes += incarnation.healed_bytes();
            run_schedule(incarnation);
            report.degraded = incarnation.degraded_cohorts();
            finished = true;
        } catch (const chaos_crash&) {
            ++report.crashes;
        }
    }
    report.fired = chaos.fired();

    const std::string golden_journal_bytes = slurp(golden_journal);
    const std::string chaos_journal_bytes = slurp(chaos_journal);
    report.journal_match = golden_journal_bytes == chaos_journal_bytes;
    const std::string golden_state_bytes = slurp(golden_state);
    const std::string chaos_state_bytes = slurp(chaos_state);
    report.snapshot_match = golden_state_bytes == chaos_state_bytes;
    std::string golden_timeline_bytes;
    std::string chaos_timeline_bytes;
    if (config.timeline) {
        golden_timeline_bytes = slurp(golden_timeline);
        chaos_timeline_bytes = slurp(chaos_timeline);
        report.timeline_match =
            golden_timeline_bytes == chaos_timeline_bytes;
    }
    if (!report.journal_match) {
        report.failure =
            "journal diverged at byte " +
            std::to_string(first_divergence(golden_journal_bytes,
                                            chaos_journal_bytes)) +
            " (golden " + std::to_string(golden_journal_bytes.size()) +
            " bytes, chaos " +
            std::to_string(chaos_journal_bytes.size()) + ")";
    } else if (!report.snapshot_match) {
        report.failure =
            "snapshot diverged at byte " +
            std::to_string(first_divergence(golden_state_bytes,
                                            chaos_state_bytes)) +
            " (golden " + std::to_string(golden_state_bytes.size()) +
            " bytes, chaos " + std::to_string(chaos_state_bytes.size()) +
            ")";
    } else if (!report.timeline_match) {
        report.failure =
            "timeline diverged at byte " +
            std::to_string(first_divergence(golden_timeline_bytes,
                                            chaos_timeline_bytes)) +
            " (golden " + std::to_string(golden_timeline_bytes.size()) +
            " bytes, chaos " +
            std::to_string(chaos_timeline_bytes.size()) + ")";
    }
    return report;
}

} // namespace gb::fleet

// Content-addressed probe-result cache.
//
// A characterization probe is expensive (a full Vmin descent on real
// hardware, a chip-model analysis here) and its result depends only on
// its content id (fleet.hpp's probe_content).  The cache maps content id
// -> result so each distinct experiment executes once per service
// lifetime and fans out to every cohort, campaign and epoch that asks
// again -- the fleet-scale analogue of the per-framework profile cache in
// harness/framework.hpp.
//
// Hit/miss counters are exact and deterministic: lookups happen at serial
// points of the campaign loop (between engine runs), in sorted cohort
// order, so tests assert equality, not bounds.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace gb::fleet {

/// One probe's outcome: the revealed safe supply requirement (guard
/// included) and the power picture that prices exploiting it.
struct probe_result {
    double requirement_mv = 0.0; ///< revealed Vmin + guard
    double power_nominal_w = 0.0; ///< at the manufacturer point
    double power_point_w = 0.0;   ///< at the revealed (binned) point
    /// Outcome bucket for the engine histogram / journal (e.g. the probed
    /// corner); negative means unbucketed.
    int bucket = -1;
};

class probe_cache {
public:
    /// Result for a content id, or nullptr.  Counts exactly one hit or
    /// one miss.  The pointer stays valid until the cache is destroyed
    /// (std::map nodes are stable).
    [[nodiscard]] const probe_result* lookup(std::uint64_t content);

    /// Peek without touching the counters (state rendering, tests).
    [[nodiscard]] const probe_result* peek(std::uint64_t content) const;

    /// Insert or overwrite (re-probing the same content is idempotent by
    /// construction, so overwrite == insert).
    void insert(std::uint64_t content, const probe_result& result);

    /// Insert with the rigs that vouched for the value (the configured
    /// quorum's assigned rigs, sorted).  Provenance drives blacklist
    /// repair: entries sourced only from blacklisted rigs re-execute.
    void insert(std::uint64_t content, const probe_result& result,
                std::vector<std::uint32_t> rigs);

    /// The vouching rigs of an entry (empty when unknown / integrity off).
    [[nodiscard]] const std::vector<std::uint32_t>* provenance(
        std::uint64_t content) const;

    /// Overwrite a poisoned entry with the arbitrated truth and its new
    /// provenance.  Counts one repair.
    void repair(std::uint64_t content, const probe_result& result,
                std::vector<std::uint32_t> rigs);

    /// Count one outvoted dissent observed at admission time.
    void record_dissent() { ++dissents_; }

    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }
    [[nodiscard]] std::uint64_t dissents() const { return dissents_; }
    [[nodiscard]] std::uint64_t repaired() const { return repaired_; }
    [[nodiscard]] std::uint64_t size() const { return entries_.size(); }

private:
    struct entry {
        probe_result result;
        std::vector<std::uint32_t> rigs; ///< sorted vouching rigs
    };
    std::map<std::uint64_t, entry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t dissents_ = 0;
    std::uint64_t repaired_ = 0;
};

} // namespace gb::fleet

// Electromagnetic-emanation probe model.
//
// X-Gene2 exposes no fine-grained on-die voltage sensing, so the paper (after
// Hadjilambrou et al., IEEE CAL 2017 [14]) guides its GA with the amplitude
// of the CPU's radiated EM emissions instead: radiated field strength is
// proportional to dI/dt in the package loops, so maximizing EM amplitude at
// the PDN resonance maximizes voltage noise.  The Vmin test then validates
// the virus.
//
// Here the probe computes the spectral amplitude of the discrete derivative
// of the core current trace at a tunable carrier frequency (Goertzel single
// bin), plus optional measurement noise.  The GA never sees die voltage --
// the same indirection as on the real hardware.
#pragma once

#include <optional>
#include <span>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace gb {

class em_probe {
public:
    /// Probe tuned to `carrier_hz` on a machine clocked at `clock`.
    em_probe(double carrier_hz, megahertz clock);

    /// Radiated amplitude (arbitrary units, normalized per cycle) of a
    /// per-cycle current trace.
    [[nodiscard]] double amplitude(std::span<const double> current_trace) const;

    /// Amplitude with multiplicative measurement noise of the given relative
    /// sigma, as a real spectrum analyzer reading would have.
    [[nodiscard]] double noisy_amplitude(std::span<const double> current_trace,
                                         double relative_sigma,
                                         rng& noise_rng) const;

    [[nodiscard]] double carrier_hz() const { return carrier_hz_; }

private:
    double carrier_hz_;
    double cycles_per_sample_;
};

} // namespace gb

#include "em/em_probe.hpp"

#include <vector>

#include "util/contracts.hpp"
#include "util/fft.hpp"

namespace gb {

em_probe::em_probe(double carrier_hz, megahertz clock)
    : carrier_hz_(carrier_hz),
      cycles_per_sample_(carrier_hz / clock.hertz()) {
    GB_EXPECTS(carrier_hz > 0.0);
    GB_EXPECTS(cycles_per_sample_ > 0.0 && cycles_per_sample_ <= 0.5);
}

double em_probe::amplitude(std::span<const double> current_trace) const {
    GB_EXPECTS(current_trace.size() >= 2);
    // Radiated field ~ dI/dt: discrete first difference of the current.
    std::vector<double> didt(current_trace.size() - 1);
    for (std::size_t k = 0; k + 1 < current_trace.size(); ++k) {
        didt[k] = current_trace[k + 1] - current_trace[k];
    }
    // Normalize by trace length so amplitudes of different-length loops are
    // comparable (the Goertzel magnitude grows linearly with N).
    return goertzel(didt, cycles_per_sample_) /
           static_cast<double>(didt.size());
}

double em_probe::noisy_amplitude(std::span<const double> current_trace,
                                 double relative_sigma, rng& noise_rng) const {
    GB_EXPECTS(relative_sigma >= 0.0);
    const double clean = amplitude(current_trace);
    return clean * (1.0 + noise_rng.normal(0.0, relative_sigma));
}

} // namespace gb

// Power-delivery network (PDN) model.
//
// The paper's dI/dt viruses "cause the CPU power consumption to switch
// between high and low power at a rate equal to [the] PDN 1st-order resonant
// frequency", maximizing voltage noise.  To make that behaviour emergent
// rather than scripted, the die supply is modelled as the canonical
// second-order circuit used in the voltage-noise literature (Reddi MICRO'10,
// Bertran MICRO'14):
//
//     regulator --- R --- L ---+--- die
//                              |
//                              C   (on-die + package decap)
//                              |
//                             gnd        die draws I(t)
//
// State equations (semi-implicit Euler, one step per core clock cycle):
//     L dI_L/dt = V_reg - R I_L - V_die
//     C dV_die/dt = I_L - I_die(t)
//
// A workload is a per-cycle current trace; the model convolves it into a die
// voltage waveform.  A square-wave current at f_res = 1/(2 pi sqrt(LC))
// resonates and produces the worst droop -- exactly what the GA discovers.
#pragma once

#include <span>
#include <vector>

#include "util/units.hpp"

namespace gb {

/// Electrical parameters of the PDN.
struct pdn_parameters {
    double resistance_ohm = 0.0;
    double inductance_h = 0.0;
    double capacitance_f = 0.0;

    [[nodiscard]] double resonant_frequency_hz() const;
    [[nodiscard]] double damping_ratio() const;
    /// Impedance magnitude seen by the die at a given frequency (ohms).
    [[nodiscard]] double impedance_ohm(double frequency_hz) const;

    /// Construct parameters with a target resonant frequency and damping
    /// ratio for a given decap value.
    static pdn_parameters for_resonance(double resonant_frequency_hz,
                                        double damping_ratio,
                                        double capacitance_f);
};

/// Discrete-time PDN simulator.  One `step` per core clock cycle.
class pdn_model {
public:
    pdn_model(const pdn_parameters& params, millivolts nominal_voltage,
              megahertz clock);

    /// Reset to the DC steady state for a given standing current.
    void reset(amperes standing_current);

    /// Advance one clock cycle with the given die current; returns the die
    /// voltage after the step.
    millivolts step(amperes die_current);

    [[nodiscard]] millivolts nominal_voltage() const { return nominal_; }
    [[nodiscard]] const pdn_parameters& parameters() const { return params_; }
    /// PDN resonance expressed in cycles of the core clock per period.
    [[nodiscard]] double resonance_period_cycles() const;

    /// Simulate a whole per-cycle current trace (amperes); returns the die
    /// voltage per cycle in millivolts.  Starts from the DC steady state of
    /// the trace's mean current so that the reported droop is the dynamic
    /// (resonant) part on top of the IR drop.
    [[nodiscard]] std::vector<double> simulate_voltage(
        std::span<const double> current_trace) const;

    /// Worst-case droop below nominal (mV) over a current trace, after one
    /// warm-up pass of the trace so start-up transients don't count.
    ///
    /// This is the hot kernel of every Vmin search: the implementation keeps
    /// the two integrator states in registers and hoists the dt/L, dt/C
    /// coefficients out of the loop (an FFT-free incremental convolution over
    /// the trace ring).  Bitwise-identical to worst_droop_reference() by
    /// construction -- the per-step arithmetic is unchanged, only divisions
    /// and member loads are hoisted -- and tests/kernel_equivalence_test.cpp
    /// holds the two to exact-double equality over randomized corners.
    [[nodiscard]] millivolts worst_droop(
        std::span<const double> current_trace) const;

    /// Retained reference implementation of worst_droop (one step() call per
    /// cycle, exactly the pre-optimization code path).  Kept as the
    /// differential-testing twin; do not use in hot paths.
    [[nodiscard]] millivolts worst_droop_reference(
        std::span<const double> current_trace) const;

private:
    pdn_parameters params_;
    millivolts nominal_;
    double dt_s_;
    double v_die_ = 0.0;
    double i_l_ = 0.0;
};

} // namespace gb

#include "pdn/pdn.hpp"

#include <cmath>
#include <numbers>

#include "util/contracts.hpp"

namespace gb {

double pdn_parameters::resonant_frequency_hz() const {
    GB_EXPECTS(inductance_h > 0.0 && capacitance_f > 0.0);
    return 1.0 / (2.0 * std::numbers::pi *
                  std::sqrt(inductance_h * capacitance_f));
}

double pdn_parameters::damping_ratio() const {
    GB_EXPECTS(inductance_h > 0.0 && capacitance_f > 0.0);
    return (resistance_ohm / 2.0) * std::sqrt(capacitance_f / inductance_h);
}

double pdn_parameters::impedance_ohm(double frequency_hz) const {
    GB_EXPECTS(frequency_hz >= 0.0);
    // Impedance seen by the die: C in parallel with the series R-L branch.
    const double omega = 2.0 * std::numbers::pi * frequency_hz;
    if (omega == 0.0) {
        return resistance_ohm;
    }
    // Z_RL = R + j wL ; Z_C = 1 / (j wC) ; Z = Z_RL Z_C / (Z_RL + Z_C).
    const double r = resistance_ohm;
    const double xl = omega * inductance_h;
    const double xc = -1.0 / (omega * capacitance_f);
    // numerator = (r + j xl)(j xc) = -xl*xc + j r*xc
    const double num_re = -xl * xc;
    const double num_im = r * xc;
    const double den_re = r;
    const double den_im = xl + xc;
    const double den_mag2 = den_re * den_re + den_im * den_im;
    GB_ASSERT(den_mag2 > 0.0);
    const double re = (num_re * den_re + num_im * den_im) / den_mag2;
    const double im = (num_im * den_re - num_re * den_im) / den_mag2;
    return std::sqrt(re * re + im * im);
}

pdn_parameters pdn_parameters::for_resonance(double resonant_frequency_hz,
                                             double damping_ratio,
                                             double capacitance_f) {
    GB_EXPECTS(resonant_frequency_hz > 0.0);
    GB_EXPECTS(damping_ratio > 0.0);
    GB_EXPECTS(capacitance_f > 0.0);
    const double omega0 = 2.0 * std::numbers::pi * resonant_frequency_hz;
    pdn_parameters params;
    params.capacitance_f = capacitance_f;
    params.inductance_h = 1.0 / (omega0 * omega0 * capacitance_f);
    params.resistance_ohm =
        2.0 * damping_ratio * std::sqrt(params.inductance_h / capacitance_f);
    return params;
}

pdn_model::pdn_model(const pdn_parameters& params, millivolts nominal_voltage,
                     megahertz clock)
    : params_(params), nominal_(nominal_voltage),
      dt_s_(1.0 / clock.hertz()) {
    GB_EXPECTS(params.resistance_ohm > 0.0);
    GB_EXPECTS(params.inductance_h > 0.0);
    GB_EXPECTS(params.capacitance_f > 0.0);
    GB_EXPECTS(nominal_voltage.value > 0.0);
    GB_EXPECTS(clock.value > 0.0);
    // Semi-implicit Euler is stable for omega0 * dt < 2; the PDN resonance is
    // tens of MHz against a GHz-range clock, so this holds by construction.
    const double omega0 =
        2.0 * std::numbers::pi * params.resonant_frequency_hz();
    GB_EXPECTS(omega0 * dt_s_ < 1.0);
    reset(amperes{0.0});
}

void pdn_model::reset(amperes standing_current) {
    // DC steady state: inductor carries the standing current, die sits at
    // V_reg - R * I.
    i_l_ = standing_current.value;
    v_die_ = nominal_.volts() - params_.resistance_ohm * i_l_;
}

millivolts pdn_model::step(amperes die_current) {
    // Semi-implicit (symplectic) Euler: update the inductor from the old die
    // voltage, then the capacitor from the new inductor current.
    const double v_reg = nominal_.volts();
    i_l_ += dt_s_ / params_.inductance_h *
            (v_reg - params_.resistance_ohm * i_l_ - v_die_);
    v_die_ += dt_s_ / params_.capacitance_f * (i_l_ - die_current.value);
    return millivolts::from_volts(v_die_);
}

double pdn_model::resonance_period_cycles() const {
    return 1.0 / (params_.resonant_frequency_hz() * dt_s_);
}

std::vector<double> pdn_model::simulate_voltage(
    std::span<const double> current_trace) const {
    GB_EXPECTS(!current_trace.empty());
    double sum = 0.0;
    for (const double i : current_trace) {
        sum += i;
    }
    pdn_model scratch = *this;
    scratch.reset(amperes{sum / static_cast<double>(current_trace.size())});
    std::vector<double> voltage(current_trace.size());
    for (std::size_t k = 0; k < current_trace.size(); ++k) {
        voltage[k] = scratch.step(amperes{current_trace[k]}).value;
    }
    return voltage;
}

millivolts pdn_model::worst_droop(
    std::span<const double> current_trace) const {
    GB_EXPECTS(!current_trace.empty());
    double sum = 0.0;
    for (const double i : current_trace) {
        sum += i;
    }
    // The whole simulation lives in two scalars; hoist the coefficients so
    // the loop body is three fused multiply-adds and a min.  step() computes
    // `dt_s_ / L * (...)`, which groups as `(dt_s_ / L) * (...)`, so the
    // precomputed coefficients reproduce its arithmetic bit for bit.
    const double k_l = dt_s_ / params_.inductance_h;
    const double k_c = dt_s_ / params_.capacitance_f;
    const double r = params_.resistance_ohm;
    const double v_reg = nominal_.volts();
    double i_l = sum / static_cast<double>(current_trace.size());
    double v_die = v_reg - r * i_l;
    // Warm-up pass: let the loop reach its periodic steady state.
    for (const double i : current_trace) {
        i_l += k_l * (v_reg - r * i_l - v_die);
        v_die += k_c * (i_l - i);
    }
    double v_min = nominal_.value;
    for (const double i : current_trace) {
        i_l += k_l * (v_reg - r * i_l - v_die);
        v_die += k_c * (i_l - i);
        v_min = std::min(v_min, v_die * 1000.0);
    }
    return millivolts{nominal_.value - v_min};
}

millivolts pdn_model::worst_droop_reference(
    std::span<const double> current_trace) const {
    GB_EXPECTS(!current_trace.empty());
    double sum = 0.0;
    for (const double i : current_trace) {
        sum += i;
    }
    pdn_model scratch = *this;
    scratch.reset(amperes{sum / static_cast<double>(current_trace.size())});
    // Warm-up pass: let the loop reach its periodic steady state.
    for (const double i : current_trace) {
        (void)scratch.step(amperes{i});
    }
    double v_min = nominal_.value;
    for (const double i : current_trace) {
        v_min = std::min(v_min, scratch.step(amperes{i}).value);
    }
    return millivolts{nominal_.value - v_min};
}

} // namespace gb

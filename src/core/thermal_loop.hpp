// Power/temperature fixed point of the SoC.
//
// Leakage grows exponentially with die temperature, and die temperature is
// ambient plus thermal resistance times power: the two couple into a fixed
// point (and, with poor cooling, thermal runaway).  Undervolting therefore
// compounds: lower voltage -> less power -> cooler die -> less leakage.
// SLIMpro exposes exactly the sensors this loop needs (SoC temperature and
// per-domain power); this module solves the fixed point and quantifies the
// compounding term the flat-temperature Fig 9 accounting leaves out.
#pragma once

#include "chip/power.hpp"
#include "util/units.hpp"

namespace gb {

struct thermal_loop_config {
    celsius ambient{35.0};
    /// Junction-to-ambient thermal resistance of the SoC + heatsink (C/W)
    /// applied to the PMD-domain power (the dominant heat source).
    double theta_ja_c_per_w = 1.6;
    /// Fixed-point iteration control.
    int max_iterations = 200;
    double tolerance_c = 0.01;
};

struct thermal_operating_point {
    celsius die_temperature{0.0};
    watts pmd_power{0.0};
    bool converged = false;
    int iterations = 0;
};

/// Solve T = ambient + theta_ja * P(T) for a set of core runs at a given
/// PMD voltage.  Diverging (thermal runaway) returns converged = false with
/// the last iterate.
[[nodiscard]] thermal_operating_point solve_thermal_operating_point(
    const chip_config& chip, std::span<const core_assignment> assignments,
    millivolts voltage, const thermal_loop_config& config = {});

/// The compounding saving: power at the coupled fixed point for `tuned`
/// relative to `nominal`, versus the flat-temperature comparison at
/// `reference_temperature`.
struct compounded_savings {
    thermal_operating_point nominal;
    thermal_operating_point tuned;
    /// Saving fraction with the thermal loop closed.
    double coupled_saving = 0.0;
    /// Saving fraction with both points pinned at the reference temperature
    /// (the Fig 9-style accounting).
    double flat_saving = 0.0;
};

[[nodiscard]] compounded_savings compare_with_thermal_loop(
    const chip_config& chip, std::span<const core_assignment> assignments,
    millivolts nominal, millivolts tuned, celsius reference_temperature,
    const thermal_loop_config& config = {});

} // namespace gb

// Vmin-aware task placement (paper Section IV.A: "the predictor, apart from
// predicting the safe Vmin, can also assist task scheduling in conjunction
// to frequency scaling according to the current workload on the system").
//
// The chip's supply requirement is the maximum over cores of
// (core offset + workload droop term): pairing the noisiest workloads with
// the strongest cores minimizes that maximum and lowers the shared safe
// voltage.  For sums inside a max, the rearrangement argument makes the
// anti-sorted pairing (largest workload term on the smallest offset)
// optimal; `optimize_placement` uses it and reports the voltage it buys.
#pragma once

#include <vector>

#include "harness/framework.hpp"
#include "isa/kernel.hpp"
#include "util/units.hpp"

namespace gb {

struct placement_result {
    /// program index -> core, for the optimized placement.
    std::vector<int> core_of_program;
    millivolts naive_vmin{0.0};     ///< program i on core i
    millivolts optimized_vmin{0.0}; ///< anti-sorted pairing
    /// Voltage the placement buys (naive minus optimized requirement).
    [[nodiscard]] millivolts gain() const {
        return naive_vmin - optimized_vmin;
    }
};

/// Place one program per core (exactly 8 programs) to minimize the chip's
/// supply requirement at nominal frequency.
[[nodiscard]] placement_result optimize_placement(
    characterization_framework& framework,
    const std::vector<const kernel*>& programs);

/// Requirement of an explicit placement (program i on core_of_program[i]).
[[nodiscard]] millivolts placement_requirement(
    characterization_framework& framework,
    const std::vector<const kernel*>& programs,
    const std::vector<int>& core_of_program);

} // namespace gb

#include "core/refresh_policy.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace gb {

adaptive_refresh_policy::adaptive_refresh_policy(refresh_policy_config config)
    : config_(config) {
    GB_EXPECTS(config.anchor_period.value >= nominal_refresh_period.value);
    GB_EXPECTS(config.halving_celsius > 0.0);
    GB_EXPECTS(config.derating > 0.0 && config.derating <= 1.0);
    GB_EXPECTS(config.max_relaxation >= 1.0);
}

milliseconds adaptive_refresh_policy::period_for(celsius temperature) const {
    // Retention scales 2^((T_anchor - T)/halving); so does the safe period.
    const double scale = std::exp2(
        (config_.anchor_temperature.value - temperature.value) /
        config_.halving_celsius);
    const double period_ms =
        config_.anchor_period.value * scale * config_.derating;
    const double clamped =
        std::clamp(period_ms, nominal_refresh_period.value,
                   nominal_refresh_period.value * config_.max_relaxation);
    return milliseconds{clamped};
}

milliseconds adaptive_refresh_policy::staged_toward_nominal(
    milliseconds desired, int stage, int total_stages) {
    GB_EXPECTS(total_stages >= 1);
    GB_EXPECTS(stage >= 0 && stage <= total_stages);
    GB_EXPECTS(desired.value >= nominal_refresh_period.value);
    if (stage == 0) {
        return desired;
    }
    if (stage == total_stages) {
        return nominal_refresh_period;
    }
    // Geometric interpolation: the relaxation exponent shrinks linearly
    // with the stage, so the period moves toward nominal in equal
    // multiplicative steps (the exposure halves per stage for a 2^n
    // relaxation, mirroring retention's halving law).
    const double relaxation = desired.value / nominal_refresh_period.value;
    const double share = 1.0 - static_cast<double>(stage) /
                                   static_cast<double>(total_stages);
    return milliseconds{nominal_refresh_period.value *
                        std::pow(relaxation, share)};
}

milliseconds adaptive_refresh_policy::apply(memory_system& memory) const {
    celsius hottest = memory.dimm_temperature(0);
    for (int dimm = 1; dimm < memory.geometry().dimms; ++dimm) {
        hottest = std::max(hottest, memory.dimm_temperature(dimm));
    }
    milliseconds period = period_for(hottest);
    // Respect the study limits the memory was materialized for.
    period = std::min(period, config_.anchor_period);
    memory.set_refresh_period(period);
    return period;
}

} // namespace gb

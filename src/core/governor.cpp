#include "core/governor.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace gb {

voltage_governor::voltage_governor(const vmin_predictor& predictor,
                                   governor_config config)
    : predictor_(predictor), config_(config),
      guard_(config.initial_guard) {
    GB_EXPECTS(predictor.trained());
    GB_EXPECTS(config.min_guard.value > 0.0);
    GB_EXPECTS(config.min_guard <= config.initial_guard);
    GB_EXPECTS(config.initial_guard <= config.max_guard);
    GB_EXPECTS(config.target_failure_probability > 0.0 &&
               config.target_failure_probability < 1.0);
    // Enforce the relax_step invariant (see governor_config): a step wider
    // than the guard span oscillates rail-to-rail, a non-positive step
    // never relaxes.  Clamp and warn instead of silently misbehaving.
    const millivolts span = config_.max_guard - config_.min_guard;
    if (config_.relax_step.value <= 0.0) {
        const millivolts fixed{std::max(span.value / 64.0, 1.0e-3)};
        log_warn("governor: relax_step ", config_.relax_step.value,
                 " mV is not positive; clamping to ", fixed.value, " mV");
        config_.relax_step = fixed;
    } else if (config_.relax_step > span && span.value > 0.0) {
        log_warn("governor: relax_step ", config_.relax_step.value,
                 " mV exceeds the guard span ", span.value,
                 " mV and would oscillate; clamping to the span");
        config_.relax_step = span;
    }
}

millivolts voltage_governor::choose_voltage(
    const execution_profile& profile) const {
    millivolts v = predictor_.predict(profile) + guard_;
    if (history_.size() >= config_.min_history) {
        v = std::max(v, history_.voltage_for_failure_probability(
                            config_.target_failure_probability));
    }
    return std::min(v, nominal_pmd_voltage);
}

void voltage_governor::observe(run_outcome outcome, millivolts requirement) {
    history_.record(requirement);
    if (is_disruption(outcome)) {
        guard_ += config_.disruption_backoff;
    } else if (outcome == run_outcome::corrected_error) {
        guard_ += config_.corrected_backoff;
    } else {
        guard_ -= config_.relax_step;
    }
    guard_ = std::clamp(guard_, config_.min_guard, config_.max_guard);
}

void voltage_governor::force_backoff(millivolts extra,
                                     millivolts requirement) {
    GB_EXPECTS(extra.value >= 0.0);
    history_.record(requirement);
    guard_ = std::clamp(guard_ + extra, config_.min_guard,
                        config_.max_guard);
}

void voltage_governor::reset_history() { history_.clear(); }

governor_simulation simulate_governor(
    characterization_framework& framework, voltage_governor& governor,
    const std::vector<std::string>& schedule, rng& r) {
    GB_EXPECTS(!schedule.empty());

    const chip_model& chip = framework.chip();
    const cpu_power_model power;
    governor_simulation simulation;
    simulation.epochs.reserve(schedule.size());

    double power_sum = 0.0;
    double nominal_sum = 0.0;
    for (const std::string& name : schedule) {
        const cpu_benchmark& benchmark = find_cpu_benchmark(name);
        const execution_profile& profile =
            framework.profile_of(benchmark.loop, nominal_core_frequency);
        std::vector<core_assignment> assignments;
        for (int core = 0; core < cores_per_chip; ++core) {
            assignments.push_back(
                core_assignment{core, &profile, nominal_core_frequency});
        }
        const std::uint64_t phase_seed = hash_label(name);

        millivolts v = governor.choose_voltage(profile);
        run_evaluation eval =
            chip.evaluate_run(assignments, v, phase_seed, r);
        const millivolts requirement =
            chip.analyze(assignments, phase_seed).vmin;
        governor.observe(eval.outcome, requirement);

        if (is_disruption(eval.outcome)) {
            ++simulation.disruptions;
            // Lost epoch: re-execute at the backed-off voltage.
            v = governor.choose_voltage(profile);
            eval = chip.evaluate_run(assignments, v, phase_seed, r);
            governor.observe(eval.outcome, requirement);
        }
        if (eval.outcome == run_outcome::corrected_error) {
            ++simulation.corrected;
        }

        governor_epoch epoch;
        epoch.workload = name;
        epoch.voltage = v;
        epoch.outcome = eval.outcome;
        epoch.pmd_power = power.pmd_domain_power(chip.config(), assignments,
                                                 v, celsius{50.0});
        power_sum += epoch.pmd_power.value;
        nominal_sum += power
                           .pmd_domain_power(chip.config(), assignments,
                                             nominal_pmd_voltage,
                                             celsius{50.0})
                           .value;
        simulation.epochs.push_back(std::move(epoch));
    }
    simulation.mean_pmd_power =
        watts{power_sum / static_cast<double>(simulation.epochs.size())};
    simulation.nominal_pmd_power =
        watts{nominal_sum / static_cast<double>(simulation.epochs.size())};
    return simulation;
}

} // namespace gb

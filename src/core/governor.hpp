// Online voltage governor: the "robust and efficient online voltage
// adoption mechanism" the paper proposes as future work (Section IV.D).
//
// Per epoch the governor combines three signals:
//   * the workload-dependent Vmin predictor (performance counters -> Vmin),
//   * the droop history's failure-probability inversion (what voltage keeps
//     the chance of crossing the requirement below the target), and
//   * an adaptive guard band that backs off on observed errors and creeps
//     back down through quiet epochs.
// The chosen voltage is the maximum of the three, clamped to nominal.
//
// `simulate_governor` drives the governor against a chip model over a
// schedule of workload phases and accounts energy against always-nominal
// operation -- the experiment behind bench/ablation_governor.
#pragma once

#include <string>
#include <vector>

#include "chip/power.hpp"
#include "core/history.hpp"
#include "core/predictor.hpp"
#include "harness/framework.hpp"
#include "util/units.hpp"
#include "workloads/cpu_profiles.hpp"

namespace gb {

struct governor_config {
    millivolts initial_guard{12.0};
    millivolts min_guard{8.0};
    millivolts max_guard{40.0};
    /// Added to the guard on a disruption (the epoch's work is lost).
    millivolts disruption_backoff{15.0};
    /// Added on a corrected error (a near miss).
    millivolts corrected_backoff{6.0};
    /// Removed per clean epoch (slow re-probe toward the margin; relaxing
    /// faster than this oscillates the guard into the failure zone).
    /// Invariant: 0 < relax_step <= max_guard - min_guard.  A step larger
    /// than the guard span would swing the guard rail-to-rail every epoch
    /// (relax straight to min_guard, fail, back off to max_guard, repeat);
    /// a zero or negative step would never relax at all.  Out-of-range
    /// values are clamped into the invariant with a warning at
    /// construction rather than silently oscillating.
    millivolts relax_step{0.5};
    /// Acceptable probability of an epoch requirement exceeding the chosen
    /// voltage (drives the droop-history floor).
    double target_failure_probability = 1.0e-3;
    /// History epochs required before the probabilistic floor engages.
    std::size_t min_history = 32;
};

class voltage_governor {
public:
    voltage_governor(const vmin_predictor& predictor,
                     governor_config config = {});

    /// Voltage for the next epoch, given the workload's counter profile.
    [[nodiscard]] millivolts choose_voltage(
        const execution_profile& profile) const;

    /// Feedback from the completed epoch: its outcome and the requirement
    /// the telemetry inferred for it.
    void observe(run_outcome outcome, millivolts requirement);

    /// Supervisor trip hook: a circuit breaker fired on this operating
    /// point, so back the guard off by `extra` beyond the normal error
    /// backoff and pin the elevated `requirement` into the droop history
    /// (the probabilistic floor must remember the storm, not just the
    /// per-epoch outcomes).
    void force_backoff(millivolts extra, millivolts requirement);

    /// Supervisor recovery hook: a quarantine lifted and the operating
    /// point is being re-probed from scratch; the storm-era history would
    /// otherwise pin the probabilistic floor at the tripped level forever.
    void reset_history();

    [[nodiscard]] millivolts current_guard() const { return guard_; }
    [[nodiscard]] const droop_history& history() const { return history_; }

private:
    const vmin_predictor& predictor_;
    governor_config config_;
    millivolts guard_;
    droop_history history_;
};

/// One epoch of a governor simulation.
struct governor_epoch {
    std::string workload;
    millivolts voltage{0.0};
    run_outcome outcome = run_outcome::ok;
    watts pmd_power{0.0};
};

struct governor_simulation {
    std::vector<governor_epoch> epochs;
    std::uint64_t disruptions = 0;
    std::uint64_t corrected = 0;
    watts mean_pmd_power{0.0};
    watts nominal_pmd_power{0.0};

    [[nodiscard]] double energy_saving() const {
        return nominal_pmd_power.value <= 0.0
                   ? 0.0
                   : 1.0 - mean_pmd_power.value / nominal_pmd_power.value;
    }
};

/// Run `schedule` (one workload name per epoch, 8 instances each) under the
/// governor on the framework's chip; disrupted epochs are retried once at
/// the backed-off voltage, as a real deployment would re-execute lost work.
[[nodiscard]] governor_simulation simulate_governor(
    characterization_framework& framework, voltage_governor& governor,
    const std::vector<std::string>& schedule, rng& r);

} // namespace gb

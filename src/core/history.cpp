#include "core/history.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace gb {

droop_history::droop_history(std::size_t capacity) : capacity_(capacity) {
    GB_EXPECTS(capacity >= 16);
    values_.reserve(capacity);
}

void droop_history::record(millivolts requirement) {
    GB_EXPECTS(requirement.value > 0.0);
    if (values_.size() < capacity_) {
        values_.push_back(requirement.value);
    } else {
        values_[next_] = requirement.value;
        next_ = (next_ + 1) % capacity_;
    }
}

void droop_history::clear() {
    values_.clear();
    next_ = 0;
}

millivolts droop_history::max_requirement() const {
    GB_EXPECTS(!values_.empty());
    return millivolts{*std::max_element(values_.begin(), values_.end())};
}

millivolts droop_history::quantile(double q) const {
    GB_EXPECTS(!values_.empty());
    return millivolts{percentile(values_, q)};
}

double droop_history::exceedance_probability(millivolts v) const {
    GB_EXPECTS(!values_.empty());
    const auto n = static_cast<double>(values_.size());
    const double exceeding = static_cast<double>(
        std::count_if(values_.begin(), values_.end(),
                      [&](double x) { return x > v.value; }));
    if (exceeding > 0.0) {
        return exceeding / n;
    }
    // Peaks-over-threshold: exponential excesses above the 90th percentile.
    const double threshold = percentile(values_, 0.9);
    double excess_sum = 0.0;
    double excess_count = 0.0;
    for (const double x : values_) {
        if (x > threshold) {
            excess_sum += x - threshold;
            excess_count += 1.0;
        }
    }
    if (excess_count == 0.0 || excess_sum <= 0.0) {
        // Degenerate history (all identical): step function at the max.
        return v.value > values_.front() ? 0.0 : 1.0;
    }
    const double mean_excess = excess_sum / excess_count;
    const double p_threshold = excess_count / n;
    return p_threshold * std::exp(-(v.value - threshold) / mean_excess);
}

millivolts droop_history::voltage_for_failure_probability(
    double target) const {
    GB_EXPECTS(target > 0.0 && target < 1.0);
    GB_EXPECTS(!values_.empty());
    // Invert: start from the empirical quantile, then push into the
    // exponential tail if the target is rarer than 1/n.
    const auto n = static_cast<double>(values_.size());
    if (target >= 1.0 / n) {
        return quantile(1.0 - target);
    }
    const double threshold = percentile(values_, 0.9);
    double excess_sum = 0.0;
    double excess_count = 0.0;
    for (const double x : values_) {
        if (x > threshold) {
            excess_sum += x - threshold;
            excess_count += 1.0;
        }
    }
    if (excess_count == 0.0 || excess_sum <= 0.0) {
        return max_requirement();
    }
    const double mean_excess = excess_sum / excess_count;
    const double p_threshold = excess_count / n;
    // Solve p_threshold * exp(-(v - u)/m) = target for v.
    const double v = threshold + mean_excess * std::log(p_threshold / target);
    return millivolts{std::max(v, max_requirement().value)};
}

} // namespace gb

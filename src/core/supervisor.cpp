#include "core/supervisor.hpp"

#include <algorithm>
#include <cmath>

#include "core/governor.hpp"
#include "core/refresh_policy.hpp"
#include "harness/timeseries/timeseries.hpp"
#include "harness/trace/trace.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gb {

std::string_view to_string(supervisor_state state) {
    switch (state) {
    case supervisor_state::nominal: return "nominal";
    case supervisor_state::probing: return "probing";
    case supervisor_state::exploiting: return "exploiting";
    case supervisor_state::degraded: return "degraded";
    case supervisor_state::quarantined: return "quarantined";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// epoch_fault_plan

epoch_fault_plan::epoch_fault_plan(epoch_fault_config config)
    : config_(config) {
    GB_EXPECTS(config.sdc_rate >= 0.0 && config.sdc_rate <= 1.0);
    GB_EXPECTS(config.ce_burst_rate >= 0.0 && config.ce_burst_rate <= 1.0);
    GB_EXPECTS(config.hang_rate >= 0.0 && config.hang_rate <= 1.0);
}

double epoch_fault_plan::draw(std::uint64_t epoch, std::uint64_t salt) const {
    // Counter-mode splitmix64 over (seed, epoch, fault kind): stateless, so
    // the injected fault schedule is a pure function of the epoch index and
    // identical at any worker count or evaluation order.
    std::uint64_t state =
        config_.seed ^ (epoch * 0x9e3779b97f4a7c15ULL) ^ (salt << 32);
    const std::uint64_t bits = splitmix64(state);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool epoch_fault_plan::inject_sdc(std::uint64_t epoch) const {
    return draw(epoch, 1) < config_.sdc_rate;
}

bool epoch_fault_plan::inject_ce_burst(std::uint64_t epoch) const {
    return draw(epoch, 2) < config_.ce_burst_rate;
}

bool epoch_fault_plan::inject_hang(std::uint64_t epoch) const {
    return draw(epoch, 3) < config_.hang_rate;
}

void epoch_fault_plan::apply(std::uint64_t epoch, epoch_result& result) const {
    // A hang dominates everything except a crash (both lose the epoch; keep
    // the model's crash if it already happened).
    if (inject_hang(epoch) && result.outcome != run_outcome::crash) {
        result.outcome = run_outcome::hang;
    }
    // Injected SDC only lands on an otherwise-clean epoch: a corrupted run
    // that also crashed is not *silent*.
    if (inject_sdc(epoch) && result.outcome == run_outcome::ok) {
        result.outcome = run_outcome::silent_data_corruption;
    }
    if (inject_ce_burst(epoch)) {
        result.dram_ce_words += config_.ce_burst_words;
    }
}

// ---------------------------------------------------------------------------
// operating_point_supervisor

operating_point_supervisor::operating_point_supervisor(
    supervisor_config config, voltage_governor* governor)
    : config_(config), governor_(governor),
      stage_(config.degradation_stages) {
    GB_EXPECTS(config.degradation_stages >= 1);
    GB_EXPECTS(config.voltage_stage.value > 0.0);
    GB_EXPECTS(config.breaker.window >= 1);
    GB_EXPECTS(config.breaker.trip_score > 0.0);
    GB_EXPECTS(config.breaker.quarantine_ttl >= 1);
    GB_EXPECTS(config.sentinel_sdc_budget > 0.0);
    GB_EXPECTS(config.max_sentinel_interval >= 1);
    GB_EXPECTS(config.sentinel_overhead >= 0.0);
    GB_EXPECTS(config.promote_after_clean >= 1);
}

void operating_point_supervisor::set_trace(tracer* trace,
                                           metrics_registry* metrics) {
    if constexpr (!trace_compiled_in) {
        return;
    }
    trace_ = trace;
    metrics_ = metrics;
    trace_minor_ = 0;
    if (trace_ != nullptr) {
        trace_phase_ = trace_->allocate_phase();
    }
    if (metrics_ != nullptr) {
        mh_.epochs = metrics_->counter("supervisor.epochs");
        mh_.breaker_trips = metrics_->counter("supervisor.breaker_trips");
        mh_.watchdog_aborts =
            metrics_->counter("supervisor.watchdog_aborts");
        mh_.detected_sdc = metrics_->counter("supervisor.detected_sdc");
        mh_.quarantine_lifts =
            metrics_->counter("supervisor.quarantine_lifts");
        mh_.epoch_score_centi = metrics_->histogram(
            "supervisor.epoch_score_centi", {0, 25, 100, 150, 300, 600});
    }
}

void operating_point_supervisor::trace_event(
    const char* name,
    std::vector<std::pair<std::string, std::string>> args) {
    if constexpr (!trace_compiled_in) {
        return;
    }
    if (trace_ == nullptr) {
        return;
    }
    trace_span event;
    event.name = name;
    event.category = "supervisor";
    // The in-flight epoch's index: telemetry_.epochs only advances when the
    // epoch settles, so pre-settle events (watchdog aborts, trips) land in
    // the same slot as the epoch span that eventually commits.
    event.at = trace_point{track_supervisor, trace_phase_, telemetry_.epochs,
                           ++trace_minor_};
    event.start_ticks = trace_minor_;
    event.instant = true;
    event.args = std::move(args);
    trace_->record(0, std::move(event));
}

operating_point_supervisor::breaker_key
operating_point_supervisor::key_of(const epoch_request& request) const {
    return breaker_key{request.pmd, request.workload_class};
}

millivolts operating_point_supervisor::staged_voltage(millivolts desired,
                                                      int stage) const {
    if (stage >= config_.degradation_stages) {
        return nominal_pmd_voltage; // final stage is exactly nominal
    }
    const double staged =
        desired.value + static_cast<double>(stage) * config_.voltage_stage.value;
    return millivolts{std::min(staged, nominal_pmd_voltage.value)};
}

supervisor_state operating_point_supervisor::state() const {
    if (stage_ == 0) {
        return supervisor_state::exploiting;
    }
    if (descending_) {
        return stage_ == config_.degradation_stages
                   ? supervisor_state::nominal
                   : supervisor_state::probing;
    }
    return supervisor_state::degraded;
}

bool operating_point_supervisor::is_quarantined(
    int pmd, std::string_view workload_class) const {
    return quarantine_.find(breaker_key{
               pmd, std::string(workload_class)}) != quarantine_.end();
}

epoch_plan operating_point_supervisor::plan(
    const epoch_request& request) const {
    GB_EXPECTS(request.predicted_sdc >= 0.0 && request.predicted_sdc <= 1.0);
    epoch_plan p;
    const bool quarantined = is_quarantined(request.pmd,
                                            request.workload_class);
    // A quarantined operating point runs at exactly nominal for the TTL; the
    // rest of the machine keeps its current stage.
    p.stage = quarantined ? config_.degradation_stages : stage_;
    p.state = quarantined ? supervisor_state::quarantined : state();
    p.voltage = staged_voltage(request.desired_voltage, p.stage);
    p.refresh = adaptive_refresh_policy::staged_toward_nominal(
        request.desired_refresh, p.stage, config_.degradation_stages);
    // Sentinels only pay off below nominal, where the marginal region's SDC
    // mass is live.  Arm one when the accumulated predicted SDC probability
    // reaches the budget, or the latency bound expires.
    p.sentinel =
        p.stage < config_.degradation_stages &&
        (sentinel_accum_ + request.predicted_sdc >= config_.sentinel_sdc_budget ||
         since_sentinel_ + 1 >= config_.max_sentinel_interval);
    return p;
}

void operating_point_supervisor::demote() {
    stage_ = std::min(stage_ + 1, config_.degradation_stages);
    descending_ = false;
    clean_streak_ = 0;
    trace_event("demote", {{"stage", std::to_string(stage_)}});
}

void operating_point_supervisor::score_breaker(const epoch_request& request,
                                               double score,
                                               millivolts observed) {
    const breaker_config& bc = config_.breaker;
    const breaker_key key = key_of(request);
    breaker_window& breaker = breakers_[key];
    breaker.scores.push_back(score);
    breaker.sum += score;
    while (breaker.scores.size() > bc.window) {
        breaker.sum -= breaker.scores.front();
        breaker.scores.pop_front();
    }
    if (breaker.sum < bc.trip_score) {
        return;
    }
    ++telemetry_.breaker_trips;
    quarantine_[key] = bc.quarantine_ttl;
    fresh_quarantine_.push_back(key);
    if constexpr (trace_compiled_in) {
        if (metrics_ != nullptr) {
            metrics_->add(0, mh_.breaker_trips);
        }
    }
    trace_event("breaker_trip",
                {{"pmd", std::to_string(key.first)},
                 {"class", key.second},
                 {"window_score_centi",
                  std::to_string(std::llround(breaker.sum * 100.0))}});
    breaker.scores.clear();
    breaker.sum = 0.0;
    demote();
    if (governor_ != nullptr) {
        const millivolts requirement =
            observed.value > 0.0
                ? observed
                : millivolts{request.desired_voltage.value +
                             config_.trip_backoff.value};
        governor_->force_backoff(config_.trip_backoff, requirement);
    }
}

void operating_point_supervisor::settle_epoch(const epoch_request& request,
                                              const epoch_plan& plan,
                                              const epoch_result& result,
                                              epoch_disposition disposition) {
    // --- sentinel bookkeeping -------------------------------------------
    if (plan.sentinel) {
        sentinel_accum_ = 0.0;
        since_sentinel_ = 0;
        telemetry_.sentinel_overhead_w_epochs +=
            config_.sentinel_overhead * result.epoch_power_w;
    } else {
        sentinel_accum_ += request.predicted_sdc;
        ++since_sentinel_;
    }

    // --- score the epoch's observable events ----------------------------
    const breaker_config& bc = config_.breaker;
    double score = 0.0;
    bool sentinel_caught_sdc = false;
    switch (result.outcome) {
    case run_outcome::ok:
        break;
    case run_outcome::corrected_error:
        score += bc.ce_weight;
        break;
    case run_outcome::uncorrectable_error:
        score += bc.ue_weight;
        break;
    case run_outcome::silent_data_corruption:
        // Only a sentinel epoch *sees* silent corruption; anywhere else it
        // passes unnoticed and is ground-truth accounting only.
        if (plan.sentinel) {
            score += bc.sdc_weight;
            ++telemetry_.detected_sdc;
            sentinel_caught_sdc = true;
            if constexpr (trace_compiled_in) {
                if (metrics_ != nullptr) {
                    metrics_->add(0, mh_.detected_sdc);
                }
            }
        } else {
            ++telemetry_.undetected_sdc;
        }
        break;
    case run_outcome::crash:
    case run_outcome::hang:
    case run_outcome::aborted_rig:
        score += bc.disruption_weight;
        break;
    }
    if (result.dram_ce_words >= config_.dram_ce_burst_words) {
        score += bc.dram_burst_weight;
        ++telemetry_.dram_ce_bursts;
    }
    if (result.dram_ue_words > 0) {
        score += bc.ue_weight;
    }

    if (plan.sentinel) {
        trace_event("sentinel", {{"verdict", sentinel_caught_sdc
                                                 ? "sdc_detected"
                                                 : "clean"}});
    }

    // --- slide the breaker window, trip if it crosses -------------------
    if (plan.state != supervisor_state::quarantined) {
        score_breaker(request, score, result.observed_requirement);
    }

    // --- promotion hysteresis -------------------------------------------
    // The initial probing descent moves one stage per clean epoch; only
    // recovery after a trip or abort pays the full clean-streak hysteresis.
    const std::size_t promote_after =
        descending_ ? 1 : config_.promote_after_clean;
    if (score == 0.0 && result.outcome == run_outcome::ok) {
        ++clean_streak_;
        if (clean_streak_ >= promote_after && stage_ > 0) {
            --stage_;
            clean_streak_ = 0;
            trace_event("promote", {{"stage", std::to_string(stage_)}});
        }
    } else {
        clean_streak_ = 0;
    }

    // --- quarantine TTL tick (one global epoch elapsed) -----------------
    // Quarantines created while this epoch was in flight are exempt: their
    // TTL counts *subsequent* epochs.  Without the exemption a ttl=1
    // quarantine would expire in the very epoch whose trip created it --
    // never pinning anything -- and the governor's reset_history() could
    // fire in the same epoch force_backoff pinned the storm requirement.
    telemetry_.quarantine_occupancy += quarantine_.size();
    for (auto it = quarantine_.begin(); it != quarantine_.end();) {
        const bool fresh =
            std::find(fresh_quarantine_.begin(), fresh_quarantine_.end(),
                      it->first) != fresh_quarantine_.end();
        if (!fresh && --it->second == 0) {
            trace_event("quarantine_lift",
                        {{"pmd", std::to_string(it->first.first)},
                         {"class", it->first.second}});
            if constexpr (trace_compiled_in) {
                if (metrics_ != nullptr) {
                    metrics_->add(0, mh_.quarantine_lifts);
                }
            }
            it = quarantine_.erase(it);
            if (quarantine_.empty() && governor_ != nullptr) {
                // Last quarantine lifted: drop the storm-era droop history so
                // the probabilistic floor re-learns the recovered regime.
                governor_->reset_history();
            }
        } else {
            ++it;
        }
    }
    fresh_quarantine_.clear();

    // --- energy accounting of staying safe ------------------------------
    if (plan.stage > 0 &&
        result.epoch_power_w > result.unsupervised_power_w) {
        telemetry_.degradation_overhead_w_epochs +=
            result.epoch_power_w - result.unsupervised_power_w;
    }
    if (plan.state == supervisor_state::degraded ||
        plan.state == supervisor_state::quarantined) {
        ++telemetry_.degraded_epochs;
    }

    if constexpr (trace_compiled_in) {
        if (metrics_ != nullptr) {
            metrics_->add(0, mh_.epochs);
            metrics_->observe(
                0, mh_.epoch_score_centi,
                static_cast<std::uint64_t>(std::llround(score * 100.0)));
        }
        if (trace_ != nullptr) {
            // The epoch span, recorded before account() so its major is the
            // same index the epoch's instant events used.
            trace_span span;
            span.name = "epoch";
            span.category = "supervisor";
            span.at = trace_point{track_supervisor, trace_phase_,
                                  telemetry_.epochs, 0};
            span.duration_ticks = 100;
            span.args.emplace_back("disposition",
                                   std::string(to_string(disposition)));
            span.args.emplace_back("state",
                                   std::string(to_string(plan.state)));
            span.args.emplace_back("stage", std::to_string(plan.stage));
            span.args.emplace_back(
                "voltage_mv",
                std::to_string(std::llround(plan.voltage.value)));
            trace_->record(0, std::move(span));
        }
        trace_minor_ = 0;
    }

    telemetry_.account(disposition);

    if (timeline_ != nullptr) {
        // One virtual tick per settled epoch; the appended values are all
        // settled-state counters, so the series are a pure function of the
        // epoch sequence.
        const std::uint64_t tick = timeline_->advance();
        timeline_->append("supervisor.stage", tick,
                          static_cast<double>(stage_));
        timeline_->append("supervisor.quarantines", tick,
                          static_cast<double>(quarantine_.size()));
        timeline_->append("supervisor.breaker_trips", tick,
                          static_cast<double>(telemetry_.breaker_trips));
        timeline_->append("supervisor.detected_sdc", tick,
                          static_cast<double>(telemetry_.detected_sdc));
    }
}

epoch_disposition operating_point_supervisor::observe(
    const epoch_request& request, const epoch_plan& plan,
    const epoch_result& result) {
    epoch_disposition disposition = epoch_disposition::committed;
    if (plan.state == supervisor_state::quarantined) {
        disposition = epoch_disposition::quarantined;
    } else if (plan.sentinel) {
        disposition = epoch_disposition::sentinel;
    }
    settle_epoch(request, plan, result, disposition);
    return disposition;
}

void operating_point_supervisor::observe_watchdog_abort(
    const epoch_request& request, const epoch_plan& plan) {
    ++telemetry_.watchdog_aborts;
    if constexpr (trace_compiled_in) {
        if (metrics_ != nullptr) {
            metrics_->add(0, mh_.watchdog_aborts);
        }
    }
    trace_event("watchdog_abort",
                {{"stage", std::to_string(plan.stage)},
                 {"class", request.workload_class}});
    // The hang is a disruption the breaker must see even though the epoch
    // itself settles later, with the replay's result.
    demote();
    if (plan.state != supervisor_state::quarantined) {
        score_breaker(request, config_.breaker.disruption_weight,
                      millivolts{0.0});
    }
}

epoch_disposition operating_point_supervisor::observe_replay(
    const epoch_request& request, const epoch_plan& plan,
    const epoch_result& result, double lost_power_w) {
    GB_EXPECTS(lost_power_w >= 0.0);
    telemetry_.degradation_overhead_w_epochs += lost_power_w;
    const epoch_disposition disposition =
        result.outcome == run_outcome::hang ? epoch_disposition::aborted
                                            : epoch_disposition::replayed;
    settle_epoch(request, plan, result, disposition);
    return disposition;
}

// ---------------------------------------------------------------------------
// run_supervised_epoch

supervised_epoch run_supervised_epoch(
    operating_point_supervisor& supervisor, const epoch_request& request,
    const std::function<epoch_result(const epoch_plan&)>& execute) {
    supervised_epoch epoch;
    epoch.plan = supervisor.plan(request);
    epoch.result = execute(epoch.plan);
    if (epoch.result.outcome != run_outcome::hang) {
        epoch.disposition = supervisor.observe(request, epoch.plan,
                                               epoch.result);
        return epoch;
    }
    // Watchdog: the deadline expired.  Account the lost attempt's energy,
    // demote one stage and replay once at the degraded point.
    supervisor.observe_watchdog_abort(request, epoch.plan);
    epoch.lost_power_w = epoch.result.epoch_power_w;
    epoch.plan = supervisor.plan(request);
    epoch.result = execute(epoch.plan);
    epoch.disposition = supervisor.observe_replay(
        request, epoch.plan, epoch.result, epoch.lost_power_w);
    return epoch;
}

} // namespace gb

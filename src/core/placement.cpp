#include "core/placement.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace gb {

namespace {

std::vector<core_assignment> assignments_for(
    characterization_framework& framework,
    const std::vector<const kernel*>& programs,
    const std::vector<int>& core_of_program) {
    std::vector<core_assignment> assignments;
    assignments.reserve(programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        assignments.push_back(core_assignment{
            core_of_program[i],
            &framework.profile_of(*programs[i], nominal_core_frequency),
            nominal_core_frequency});
    }
    return assignments;
}

/// The shared-launch alignment used for placement comparisons.
constexpr std::uint64_t placement_phase_seed = 12345;

} // namespace

millivolts placement_requirement(
    characterization_framework& framework,
    const std::vector<const kernel*>& programs,
    const std::vector<int>& core_of_program) {
    GB_EXPECTS(programs.size() == core_of_program.size());
    GB_EXPECTS(!programs.empty());
    const std::vector<core_assignment> assignments =
        assignments_for(framework, programs, core_of_program);
    return framework.chip().analyze(assignments, placement_phase_seed).vmin;
}

placement_result optimize_placement(
    characterization_framework& framework,
    const std::vector<const kernel*>& programs) {
    GB_EXPECTS(programs.size() == static_cast<std::size_t>(cores_per_chip));
    for (const kernel* program : programs) {
        GB_EXPECTS(program != nullptr);
    }

    placement_result result;

    // Naive placement: program i on core i.
    std::vector<int> naive(programs.size());
    std::iota(naive.begin(), naive.end(), 0);
    result.naive_vmin =
        placement_requirement(framework, programs, naive);

    // Rank each program by its own supply requirement on a reference core
    // (the droop term), and each core by its offset; pair the largest
    // requirement with the smallest offset.
    const chip_config& chip = framework.chip().config();
    std::vector<std::size_t> programs_by_noise(programs.size());
    std::iota(programs_by_noise.begin(), programs_by_noise.end(), 0u);
    std::vector<double> solo_requirement(programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        solo_requirement[i] =
            framework.chip()
                .analyze_single(framework.profile_of(*programs[i],
                                                     nominal_core_frequency),
                                /*core=*/0)
                .vmin.value;
    }
    std::sort(programs_by_noise.begin(), programs_by_noise.end(),
              [&](std::size_t a, std::size_t b) {
                  return solo_requirement[a] > solo_requirement[b];
              });
    std::vector<int> cores_by_strength(cores_per_chip);
    std::iota(cores_by_strength.begin(), cores_by_strength.end(), 0);
    std::sort(cores_by_strength.begin(), cores_by_strength.end(),
              [&](int a, int b) {
                  return chip.core_offset(a) < chip.core_offset(b);
              });

    result.core_of_program.resize(programs.size());
    for (std::size_t rank = 0; rank < programs.size(); ++rank) {
        result.core_of_program[programs_by_noise[rank]] =
            cores_by_strength[rank];
    }
    result.optimized_vmin = placement_requirement(framework, programs,
                                                  result.core_of_program);
    GB_ENSURES(result.optimized_vmin <= result.naive_vmin);
    return result;
}

} // namespace gb

// Temperature-adaptive refresh policy: the operational closing of the
// paper's DRAM loop ("the characterization results could help guide the
// operation of the underlying hardware components within 'safe' operating
// points").
//
// The characterization establishes one safe (temperature, period) anchor --
// e.g. 35x at 60 C with every error corrected.  Retention halves per
// ~10 C, so the safe period scales as 2^((T_anchor - T)/10): a cooler DIMM
// can relax further, a hotter one must tighten.  The policy reads the
// per-DIMM sensors through the testbed/SLIMpro path, applies a safety
// derating, and programs the MCU -- per DIMM-set, bounded by the JEDEC
// nominal below and the characterized anchor's scaling above.
#pragma once

#include "dram/memory_system.hpp"
#include "util/units.hpp"

namespace gb {

struct refresh_policy_config {
    /// The characterized safe anchor (paper: 2.283 s at 60 C, all errors
    /// corrected by ECC).
    celsius anchor_temperature{60.0};
    milliseconds anchor_period{2283.0};
    /// Retention halving constant of the parts (matches retention_model).
    double halving_celsius = 10.0;
    /// Fraction of the scaled safe period actually used (sensor error,
    /// hot spots within the DIMM, VRT surprises).
    double derating = 0.8;
    /// Never relax beyond this multiple of nominal (controller register
    /// limit), never tighten below nominal.
    double max_relaxation = 64.0;
};

class adaptive_refresh_policy {
public:
    explicit adaptive_refresh_policy(refresh_policy_config config = {});

    /// Safe refresh period at a measured DIMM temperature.
    [[nodiscard]] milliseconds period_for(celsius temperature) const;

    /// Read the memory's hottest DIMM sensor and program its refresh
    /// period accordingly; returns the chosen period.
    milliseconds apply(memory_system& memory) const;

    /// Staged rollback toward the JEDEC nominal (supervisor degradation
    /// hook): stage 0 keeps `desired`, each further stage halves the
    /// relaxation geometrically, and the final stage is exactly nominal --
    /// refresh backs off in bounded steps under an error burst instead of
    /// snapping all-at-once.  Requires 0 <= stage <= total_stages,
    /// total_stages >= 1, desired >= nominal.
    [[nodiscard]] static milliseconds staged_toward_nominal(
        milliseconds desired, int stage, int total_stages);

    [[nodiscard]] const refresh_policy_config& config() const {
        return config_;
    }

private:
    refresh_policy_config config_;
};

} // namespace gb

// Droop / supply-requirement history (paper Section IV.D: "Such a model can
// take also into consideration the history of voltage droops occurred over
// time.  Then based on a chip's intrinsic Vmin ... and the history of
// droops, we can predict the probability of the operating voltage crossing
// the intrinsic Vmin").
//
// The history stores the per-epoch supply requirement (intrinsic Vmin plus
// that epoch's worst droop, as the governor's telemetry would infer it) in
// a bounded ring.  Failure probability at a candidate voltage is the
// empirical exceedance within the sample, extended beyond the observed
// maximum by a peaks-over-threshold exponential tail — droop extremes are
// light-tailed, so the exponential excess model is the standard choice.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace gb {

class droop_history {
public:
    explicit droop_history(std::size_t capacity = 1024);

    /// Record one epoch's observed supply requirement.
    void record(millivolts requirement);

    /// Forget everything (supervisor recovery hook: after a quarantine
    /// lifts, the storm-era requirements would pin the probabilistic floor
    /// at the tripped level; re-probing starts a fresh sample instead).
    void clear();

    [[nodiscard]] std::size_t size() const { return values_.size(); }
    [[nodiscard]] bool empty() const { return values_.empty(); }
    [[nodiscard]] millivolts max_requirement() const;

    /// Empirical quantile (q in [0, 1]) of the recorded requirements.
    [[nodiscard]] millivolts quantile(double q) const;

    /// P(requirement of a future epoch > v): empirical within the sample,
    /// exponential excess above the 90th percentile beyond it.
    [[nodiscard]] double exceedance_probability(millivolts v) const;

    /// Smallest voltage whose exceedance probability is <= target.
    [[nodiscard]] millivolts voltage_for_failure_probability(
        double target) const;

private:
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::vector<double> values_; ///< ring buffer once at capacity
};

} // namespace gb

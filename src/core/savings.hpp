// Pricing revealed guardbands: compare server power at the nominal operating
// point against a tuned 'safe' point for the same workload (the paper's
// Fig 9 decomposition into PMD / SoC / DRAM / other domains).
#pragma once

#include "util/units.hpp"
#include "xgene/server.hpp"

namespace gb {

struct domain_savings {
    watts nominal{0.0};
    watts tuned{0.0};

    [[nodiscard]] double saving_fraction() const {
        return nominal.value <= 0.0
                   ? 0.0
                   : (nominal.value - tuned.value) / nominal.value;
    }
};

struct server_savings {
    domain_savings pmd;
    domain_savings soc;
    domain_savings dram;
    domain_savings other;
    domain_savings total;
};

/// Measure the same workload snapshot at two operating points.  Both points
/// must keep the snapshot's core frequencies (voltage/refresh-only tuning);
/// the server is left configured at `tuned`.
[[nodiscard]] server_savings compare_operating_points(
    xgene2_server& server, const workload_snapshot& snapshot,
    const operating_point& nominal, const operating_point& tuned);

/// Savings net of resilience cost.  A supervised deployment spends energy
/// on staying safe -- duplicated sentinel epochs, staged degradation after
/// breaker trips, replayed aborted epochs -- and an honest power number
/// charges that overhead against the tuned side (the supervisor's
/// health_telemetry supplies it as mean watts over the run).
struct supervised_savings {
    domain_savings gross;            ///< nominal vs tuned, overhead excluded
    watts resilience_overhead{0.0};  ///< mean extra watts spent staying safe

    [[nodiscard]] double net_saving_fraction() const {
        return gross.nominal.value <= 0.0
                   ? 0.0
                   : (gross.nominal.value - gross.tuned.value -
                      resilience_overhead.value) /
                         gross.nominal.value;
    }
};

[[nodiscard]] inline supervised_savings net_of_resilience(
    domain_savings gross, watts overhead) {
    return supervised_savings{gross, overhead};
}

} // namespace gb

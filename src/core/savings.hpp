// Pricing revealed guardbands: compare server power at the nominal operating
// point against a tuned 'safe' point for the same workload (the paper's
// Fig 9 decomposition into PMD / SoC / DRAM / other domains).
#pragma once

#include "util/units.hpp"
#include "xgene/server.hpp"

namespace gb {

struct domain_savings {
    watts nominal{0.0};
    watts tuned{0.0};

    [[nodiscard]] double saving_fraction() const {
        return nominal.value <= 0.0
                   ? 0.0
                   : (nominal.value - tuned.value) / nominal.value;
    }
};

struct server_savings {
    domain_savings pmd;
    domain_savings soc;
    domain_savings dram;
    domain_savings other;
    domain_savings total;
};

/// Measure the same workload snapshot at two operating points.  Both points
/// must keep the snapshot's core frequencies (voltage/refresh-only tuning);
/// the server is left configured at `tuned`.
[[nodiscard]] server_savings compare_operating_points(
    xgene2_server& server, const workload_snapshot& snapshot,
    const operating_point& nominal, const operating_point& tuned);

} // namespace gb

#include "core/predictor.hpp"

#include "util/contracts.hpp"

namespace gb {

predictor_features predictor_features::from_profile(
    const execution_profile& profile) {
    predictor_features features;
    features.ipc = profile.counters.ipc();
    features.fp_fraction = profile.counters.fp_fraction();
    features.memory_intensity = profile.counters.memory_intensity();
    features.l1d_utilization = profile.activity.of(cpu_component::l1d);
    features.l2_utilization = profile.activity.of(cpu_component::l2);
    features.average_current_a = profile.average_current_a();
    return features;
}

std::vector<double> predictor_features::to_vector() const {
    return {ipc,       fp_fraction,    memory_intensity,
            l1d_utilization, l2_utilization, average_current_a};
}

void vmin_predictor::add_sample(const execution_profile& profile,
                                millivolts vmin) {
    GB_EXPECTS(vmin.value > 0.0);
    features_.push_back(predictor_features::from_profile(profile).to_vector());
    measured_mv_.push_back(vmin.value);
    trained_ = false;
}

void vmin_predictor::train() {
    GB_EXPECTS(!features_.empty());
    GB_EXPECTS(features_.size() > features_.front().size());
    fit_ = fit_ols(features_, measured_mv_);
    trained_ = true;
}

double vmin_predictor::r_squared() const {
    GB_EXPECTS(trained_);
    return fit_.r_squared;
}

millivolts vmin_predictor::predict(const execution_profile& profile) const {
    GB_EXPECTS(trained_);
    const std::vector<double> x =
        predictor_features::from_profile(profile).to_vector();
    return millivolts{fit_.predict(x)};
}

millivolts vmin_predictor::safe_voltage(const execution_profile& profile,
                                        millivolts guard) const {
    GB_EXPECTS(guard.value >= 0.0);
    return predict(profile) + guard;
}

} // namespace gb

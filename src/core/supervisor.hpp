// Operating-point supervisor: the recovery state machine that wraps the
// exploitation stack (governor + adaptive refresh + placement) so reduced
// guardbands survive contact with silent data corruption and
// correctable-error storms.
//
// The paper's exploitation results assume every failure announces itself;
// the literature says otherwise (SDC regions precede crashes as margins
// shrink, and DRAM under relaxed refresh degrades gradually through CE
// volume long before the first UE).  The supervisor closes that gap with
// four mechanisms, all seed-deterministic:
//
//   * SDC sentinels: duplicated golden-checksum epochs, armed whenever the
//     accumulated SDC probability predicted by the chip model's marginal
//     region (chip_model::sdc_probability) exceeds a budget -- corruption
//     is caught within a bounded number of epochs instead of never.
//   * Circuit breakers: per-(PMD, workload-class) sliding windows of
//     weighted CE/UE/SDC/disruption scores; a window crossing its trip
//     threshold quarantines that operating point for a bounded TTL and
//     forces voltage and refresh back toward nominal in staged steps.
//   * Watchdog: a hung epoch is converted into an accounted aborted epoch
//     and replayed once at the next degraded stage (run_supervised_epoch).
//   * Staged recovery with hysteresis: demotion toward nominal is
//     immediate but one stage at a time; promotion back toward the
//     exploited point requires a clean streak per stage
//     (nominal -> probing -> exploiting -> degraded -> quarantined).
//
// Every epoch ends in exactly one health_telemetry disposition, so the
// energy cost of resilience (sentinel duplicates, degradation, replays) is
// exported and reported savings can be made net of it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "chip/chip_model.hpp"
#include "dram/memory_system.hpp"
#include "harness/telemetry.hpp"
#include "harness/trace/metrics.hpp"
#include "util/units.hpp"

namespace gb {

class voltage_governor;
class tracer;
class timeline_recorder;

enum class supervisor_state : std::uint8_t {
    nominal,    ///< at the manufacturer point, not yet descended
    probing,    ///< initial staged descent toward the exploited point
    exploiting, ///< at the reduced-guardband point
    degraded,   ///< backed off one or more stages after trips/aborts
    quarantined ///< this epoch's operating point is quarantined (at nominal)
};

[[nodiscard]] std::string_view to_string(supervisor_state state);

/// One circuit breaker: a sliding window of weighted error scores per
/// (PMD, workload-class) operating point.
struct breaker_config {
    std::size_t window = 24;        ///< epochs in the sliding window
    double trip_score = 3.0;        ///< window sum that trips the breaker
    double ce_weight = 0.25;        ///< corrected error (near miss)
    double ue_weight = 1.5;         ///< uncorrectable error
    double sdc_weight = 3.0;        ///< sentinel-detected silent corruption
    double disruption_weight = 1.0; ///< crash / hang / aborted rig
    double dram_burst_weight = 0.75; ///< CE-burst scan from the DIMMs
    std::size_t quarantine_ttl = 16; ///< epochs a tripped point stays out
};

struct supervisor_config {
    breaker_config breaker;
    /// A sentinel epoch is armed once the accumulated predicted SDC
    /// probability since the last sentinel reaches this budget...
    double sentinel_sdc_budget = 0.04;
    /// ...or after this many epochs regardless (bounds detection latency).
    std::size_t max_sentinel_interval = 24;
    /// Energy overhead of a sentinel epoch (the duplicate run plus the
    /// checksum pass) as a fraction of the epoch's power.
    double sentinel_overhead = 0.10;
    /// Staged degradation ladder: stage 0 is the exploited point, stage
    /// `degradation_stages` is exactly nominal.
    int degradation_stages = 3;
    /// Voltage added per degradation stage (clamped to nominal).
    millivolts voltage_stage{20.0};
    /// Hysteresis: clean epochs required to promote one stage back down
    /// after a trip or abort.  The initial probing descent moves one stage
    /// per clean epoch regardless -- caution is for recovery, not
    /// commissioning.
    std::size_t promote_after_clean = 3;
    /// CE words in one DRAM scan that count as a burst for the breaker.
    std::uint64_t dram_ce_burst_words = 8;
    /// Extra guard fed to the governor when a breaker trips.
    millivolts trip_backoff{10.0};
};

/// What the exploitation stack wants to run this epoch.
struct epoch_request {
    int pmd = 0; ///< critical PMD of the placement (breaker key)
    std::string workload_class;        ///< breaker key
    millivolts desired_voltage{0.0};   ///< governor's unsupervised choice
    milliseconds desired_refresh{64.0}; ///< refresh policy's choice
    double predicted_sdc = 0.0; ///< chip_model::sdc_probability at desired
};

/// What the supervisor allows: the staged operating point for one epoch.
struct epoch_plan {
    millivolts voltage{0.0};
    milliseconds refresh{64.0};
    bool sentinel = false; ///< run duplicated with a golden checksum
    int stage = 0;         ///< 0 = exploited, degradation_stages = nominal
    supervisor_state state = supervisor_state::nominal;
};

/// What actually happened (model ground truth plus telemetry the rig
/// observes: ECC counters via SLIMpro, watchdog, machine checks).
struct epoch_result {
    run_outcome outcome = run_outcome::ok;
    std::uint64_t dram_ce_words = 0;
    std::uint64_t dram_ue_words = 0;
    std::uint64_t dram_sdc_words = 0;
    double epoch_power_w = 0.0;        ///< drawn at the planned point
    double unsupervised_power_w = 0.0; ///< what the desired point would draw
    /// Telemetry-inferred supply requirement (for the governor's history
    /// when a trip pins it); <= 0 if unknown.
    millivolts observed_requirement{0.0};
};

/// Deterministic injected epoch faults (SDC, DRAM CE bursts, hangs) for
/// exercising the supervisor end-to-end.  Every decision derives from
/// (seed, epoch index, fault kind), so runs reproduce bitwise at any
/// worker count, like the harness's rig-level fault_plan.
struct epoch_fault_config {
    std::uint64_t seed = 0;
    double sdc_rate = 0.0;
    double ce_burst_rate = 0.0;
    double hang_rate = 0.0;
    std::uint64_t ce_burst_words = 16;
};

class epoch_fault_plan {
public:
    epoch_fault_plan() = default;
    explicit epoch_fault_plan(epoch_fault_config config);

    [[nodiscard]] bool inject_sdc(std::uint64_t epoch) const;
    [[nodiscard]] bool inject_ce_burst(std::uint64_t epoch) const;
    [[nodiscard]] bool inject_hang(std::uint64_t epoch) const;

    /// Overlay this epoch's injected faults on a model-produced result.
    void apply(std::uint64_t epoch, epoch_result& result) const;

    [[nodiscard]] const epoch_fault_config& config() const {
        return config_;
    }

private:
    [[nodiscard]] double draw(std::uint64_t epoch, std::uint64_t salt) const;
    epoch_fault_config config_;
};

class operating_point_supervisor {
public:
    /// `governor` is optional: when present, breaker trips feed its guard
    /// (force_backoff) and a full quarantine lift resets its droop history
    /// so the probabilistic floor re-learns the recovered regime.
    explicit operating_point_supervisor(supervisor_config config = {},
                                        voltage_governor* governor = nullptr);

    /// The staged operating point for this epoch.  Pure: repeated calls
    /// between observations return the same plan.
    [[nodiscard]] epoch_plan plan(const epoch_request& request) const;

    /// Feedback for a normally-completed epoch (no watchdog involvement).
    /// Returns the accounted disposition.
    epoch_disposition observe(const epoch_request& request,
                              const epoch_plan& plan,
                              const epoch_result& result);

    /// The epoch's first attempt hung and the watchdog fired: demote one
    /// stage and score the disruption.  Does not account an epoch; the
    /// caller must replan, re-execute and call observe_replay.
    void observe_watchdog_abort(const epoch_request& request,
                                const epoch_plan& plan);

    /// Feedback for the replay attempt after a watchdog abort.
    /// `lost_power_w` is the power of the aborted first attempt, charged
    /// to degradation overhead.  Accounts the epoch as replayed (or
    /// aborted, if the replay hung as well).
    epoch_disposition observe_replay(const epoch_request& request,
                                     const epoch_plan& plan,
                                     const epoch_result& result,
                                     double lost_power_w);

    [[nodiscard]] supervisor_state state() const;
    [[nodiscard]] int stage() const { return stage_; }
    [[nodiscard]] bool is_quarantined(int pmd,
                                      std::string_view workload_class) const;
    [[nodiscard]] std::size_t active_quarantines() const {
        return quarantine_.size();
    }
    [[nodiscard]] const health_telemetry& telemetry() const {
        return telemetry_;
    }
    [[nodiscard]] const supervisor_config& config() const { return config_; }

    /// Attach deterministic observability sinks (either may be null).  One
    /// span per settled epoch lands on track_supervisor, with breaker
    /// trips, demotions/promotions, sentinel verdicts, watchdog aborts and
    /// quarantine lifts as instant events inside it.  The supervisor is
    /// serial, so everything records into shard 0.
    void set_trace(tracer* trace, metrics_registry* metrics);

    /// Attach a deterministic time-series sink (may be null to detach).
    /// Every settled epoch appends one sample per health series
    /// (`supervisor.stage`, `supervisor.quarantines`,
    /// `supervisor.breaker_trips`, `supervisor.detected_sdc`) at a fresh
    /// virtual tick; the supervisor is serial, so appends never race.
    void set_timeline(timeline_recorder* timeline) { timeline_ = timeline; }

private:
    using breaker_key = std::pair<int, std::string>;
    struct breaker_window {
        std::deque<double> scores;
        double sum = 0.0;
    };

    [[nodiscard]] breaker_key key_of(const epoch_request& request) const;
    [[nodiscard]] millivolts staged_voltage(millivolts desired,
                                            int stage) const;
    void demote();
    /// Push one epoch's score into the operating point's breaker window and
    /// trip (quarantine + demote + governor backoff) if it crosses.
    void score_breaker(const epoch_request& request, double score,
                       millivolts observed);
    /// Shared epoch bookkeeping: breaker scoring, hysteresis, quarantine
    /// TTL tick, overhead accounting.
    void settle_epoch(const epoch_request& request, const epoch_plan& plan,
                      const epoch_result& result,
                      epoch_disposition disposition);
    /// Record an instant event inside the current epoch's span (no-op when
    /// no tracer is attached).
    void trace_event(const char* name,
                     std::vector<std::pair<std::string, std::string>> args);

    supervisor_config config_;
    voltage_governor* governor_;
    health_telemetry telemetry_;
    std::map<breaker_key, breaker_window> breakers_;
    std::map<breaker_key, std::size_t> quarantine_; ///< remaining TTL
    /// Quarantines created while the current epoch is in flight.  The
    /// settle-time TTL tick skips these: a quarantine's TTL counts *later*
    /// epochs, not the epoch whose trip created it (otherwise ttl=1 would
    /// never pin anything and the governor's history could reset in the
    /// same epoch the trip pinned it).
    std::vector<breaker_key> fresh_quarantine_;
    int stage_;
    bool descending_ = true; ///< initial probing descent vs post-trip
    std::size_t clean_streak_ = 0;
    double sentinel_accum_ = 0.0;
    std::size_t since_sentinel_ = 0;

    // Observability (see trace/trace.hpp); null when not attached.
    tracer* trace_ = nullptr;
    metrics_registry* metrics_ = nullptr;
    timeline_recorder* timeline_ = nullptr;
    std::uint32_t trace_phase_ = 0;
    std::uint32_t trace_minor_ = 0; ///< event sequence within the epoch
    struct {
        counter_handle epochs;
        counter_handle breaker_trips;
        counter_handle watchdog_aborts;
        counter_handle detected_sdc;
        counter_handle quarantine_lifts;
        histogram_handle epoch_score_centi;
    } mh_;
};

/// One fully-supervised epoch: plan, execute, and convert a hang into an
/// accounted aborted epoch via the watchdog with one replay at the next
/// degraded stage.  `execute` runs the epoch at a plan and reports its
/// result; it is called once, or twice after a watchdog abort.
struct supervised_epoch {
    epoch_plan plan;     ///< the plan whose result was committed
    epoch_result result; ///< final attempt's result
    epoch_disposition disposition = epoch_disposition::committed;
    double lost_power_w = 0.0; ///< aborted first attempt, if any
};

[[nodiscard]] supervised_epoch run_supervised_epoch(
    operating_point_supervisor& supervisor, const epoch_request& request,
    const std::function<epoch_result(const epoch_plan&)>& execute);

} // namespace gb

#include "core/thermal_loop.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace gb {

thermal_operating_point solve_thermal_operating_point(
    const chip_config& chip, std::span<const core_assignment> assignments,
    millivolts voltage, const thermal_loop_config& config) {
    GB_EXPECTS(config.theta_ja_c_per_w > 0.0);
    GB_EXPECTS(config.max_iterations >= 1);
    GB_EXPECTS(config.tolerance_c > 0.0);

    const cpu_power_model power;
    thermal_operating_point point;
    point.die_temperature = config.ambient;
    for (int i = 0; i < config.max_iterations; ++i) {
        point.iterations = i + 1;
        point.pmd_power = power.pmd_domain_power(chip, assignments, voltage,
                                                 point.die_temperature);
        const celsius next{config.ambient.value +
                           config.theta_ja_c_per_w * point.pmd_power.value};
        const double delta =
            std::abs(next.value - point.die_temperature.value);
        // Damped update: the exponential leakage makes the raw map stiff
        // near runaway.
        point.die_temperature =
            celsius{0.5 * point.die_temperature.value + 0.5 * next.value};
        if (delta < config.tolerance_c) {
            point.converged = true;
            return point;
        }
        if (point.die_temperature.value > 150.0) {
            // Physically: thermal shutdown territory.
            point.converged = false;
            return point;
        }
    }
    point.converged = false;
    return point;
}

compounded_savings compare_with_thermal_loop(
    const chip_config& chip, std::span<const core_assignment> assignments,
    millivolts nominal, millivolts tuned, celsius reference_temperature,
    const thermal_loop_config& config) {
    GB_EXPECTS(tuned <= nominal);

    compounded_savings result;
    result.nominal = solve_thermal_operating_point(chip, assignments,
                                                   nominal, config);
    result.tuned = solve_thermal_operating_point(chip, assignments, tuned,
                                                 config);
    if (result.nominal.converged && result.tuned.converged &&
        result.nominal.pmd_power.value > 0.0) {
        result.coupled_saving = 1.0 - result.tuned.pmd_power.value /
                                          result.nominal.pmd_power.value;
    }

    const cpu_power_model power;
    const watts flat_nominal = power.pmd_domain_power(
        chip, assignments, nominal, reference_temperature);
    const watts flat_tuned = power.pmd_domain_power(
        chip, assignments, tuned, reference_temperature);
    GB_ASSERT(flat_nominal.value > 0.0);
    result.flat_saving = 1.0 - flat_tuned.value / flat_nominal.value;
    return result;
}

} // namespace gb

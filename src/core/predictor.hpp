// Workload-dependent Vmin predictor (paper Section IV.D, after Papadimitriou
// et al. MICRO'17 [11]).
//
// The exploitation path needs a safe voltage for workloads that were never
// characterized.  The predictor regresses measured Vmin on performance-
// counter-derived features (IPC, FP fraction, memory intensity, cache
// utilization, average current draw); prediction plus a guard margin then
// feeds the governor's voltage choice.
#pragma once

#include <vector>

#include "isa/pipeline.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace gb {

/// Feature vector extracted from performance counters / power telemetry.
struct predictor_features {
    double ipc = 0.0;
    double fp_fraction = 0.0;
    double memory_intensity = 0.0; ///< DRAM accesses per kilo-instruction
    double l1d_utilization = 0.0;
    double l2_utilization = 0.0;
    double average_current_a = 0.0;

    [[nodiscard]] static predictor_features from_profile(
        const execution_profile& profile);
    [[nodiscard]] std::vector<double> to_vector() const;
};

class vmin_predictor {
public:
    /// Add one (workload, measured Vmin) training sample.
    void add_sample(const execution_profile& profile, millivolts vmin);
    [[nodiscard]] std::size_t sample_count() const { return features_.size(); }

    /// Fit the linear model; requires more samples than features (7+).
    void train();
    [[nodiscard]] bool trained() const { return trained_; }
    [[nodiscard]] double r_squared() const;

    /// Predicted Vmin for an uncharacterized workload.
    [[nodiscard]] millivolts predict(const execution_profile& profile) const;
    /// Prediction plus a guard margin: the voltage the governor would set.
    [[nodiscard]] millivolts safe_voltage(
        const execution_profile& profile,
        millivolts guard = millivolts{10.0}) const;

private:
    std::vector<std::vector<double>> features_;
    std::vector<double> measured_mv_;
    ols_fit fit_;
    bool trained_ = false;
};

} // namespace gb

#include "core/savings.hpp"

namespace gb {

server_savings compare_operating_points(xgene2_server& server,
                                        const workload_snapshot& snapshot,
                                        const operating_point& nominal,
                                        const operating_point& tuned) {
    server.apply(nominal);
    const sensor_readings before = server.read_sensors(snapshot);
    server.apply(tuned);
    const sensor_readings after = server.read_sensors(snapshot);

    server_savings savings;
    savings.pmd = domain_savings{before.pmd_power, after.pmd_power};
    savings.soc = domain_savings{before.soc_power, after.soc_power};
    savings.dram = domain_savings{before.dram_power, after.dram_power};
    savings.other = domain_savings{before.other_power, after.other_power};
    savings.total = domain_savings{before.total_power(), after.total_power()};
    return savings;
}

} // namespace gb

// Guardband exploration: the paper's primary contribution, assembled.
//
// Drives the characterization framework to measure per-core / per-chip /
// per-workload Vmin, builds the frequency-scaling trade-off ladder of Fig 5,
// and explores how far DRAM refresh can be relaxed while ECC still corrects
// every manifested error.  The output of an exploration is a set of 'safe'
// operating points that the exploitation layer (savings.hpp) prices.
#pragma once

#include <string>
#include <vector>

#include "dram/memory_system.hpp"
#include "harness/framework.hpp"
#include "util/units.hpp"
#include "workloads/cpu_profiles.hpp"

namespace gb {

struct vmin_measurement {
    std::string benchmark;
    int core = 0;
    millivolts vmin{0.0};
};

/// One rung of the Fig 5 power/performance ladder: slow the k weakest PMDs
/// to the reduced frequency, lower the shared supply to the new chip Vmin.
struct ladder_point {
    int slowed_pmds = 0;
    double relative_performance = 1.0;
    millivolts voltage{980.0};
    /// Relative power under the paper's projection model (dynamic V^2 f).
    double relative_power = 1.0;
};

/// Result of the DRAM refresh exploration at one temperature.
struct refresh_step {
    milliseconds period{64.0};
    scan_result worst_scan; ///< the pattern with the most failures
    bool fully_corrected = true;
};

struct refresh_exploration {
    std::vector<refresh_step> steps;
    milliseconds max_safe_period{64.0}; ///< largest fully-corrected period
};

class guardband_explorer {
public:
    explicit guardband_explorer(characterization_framework& framework);

    /// Safe Vmin of every benchmark in a suite on one core (Fig 4 rows).
    [[nodiscard]] std::vector<vmin_measurement> characterize_suite(
        const std::vector<cpu_benchmark>& suite, int core,
        int repetitions = 10);

    /// Safe Vmin of one benchmark on each of the 8 cores (core-to-core
    /// variation).
    [[nodiscard]] std::vector<vmin_measurement> characterize_cores(
        const cpu_benchmark& benchmark, int repetitions = 3);

    /// Experimentally determine the most robust core using a reference
    /// benchmark (lowest measured Vmin wins).
    [[nodiscard]] int most_robust_core(const cpu_benchmark& reference);

    /// Idle Vmin test (paper Section IV.D: "a chip's intrinsic Vmin -- this
    /// can be determined with idle Vmin test"): the supply floor of the
    /// most robust core under a no-op loop, i.e. the chip's requirement
    /// with essentially no droop.
    [[nodiscard]] millivolts intrinsic_vmin(int repetitions = 10);

    /// Build the Fig 5 ladder for a simultaneous mix (benchmark i on core
    /// i): rung k slows the k weakest PMDs to `reduced_frequency` and drops
    /// the supply to the resulting chip requirement (plus `guard`).
    [[nodiscard]] std::vector<ladder_point> dvfs_ladder(
        const std::vector<cpu_benchmark>& mix,
        megahertz reduced_frequency = megahertz{1200.0},
        millivolts guard = millivolts{0.0});

    /// Walk a ladder of refresh periods at the memory's current
    /// temperatures; a period is safe when every DPBench scan is fully
    /// corrected by ECC.
    [[nodiscard]] static refresh_exploration explore_refresh(
        memory_system& memory, const std::vector<milliseconds>& ladder,
        std::uint64_t pattern_seed = 2018);

private:
    characterization_framework& framework_;
};

} // namespace gb

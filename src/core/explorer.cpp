#include "core/explorer.hpp"

#include <algorithm>
#include <limits>

#include "harness/execution_engine.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace gb {

guardband_explorer::guardband_explorer(characterization_framework& framework)
    : framework_(framework) {}

std::vector<vmin_measurement> guardband_explorer::characterize_suite(
    const std::vector<cpu_benchmark>& suite, int core, int repetitions) {
    GB_EXPECTS(!suite.empty());
    std::vector<vmin_measurement> measurements;
    measurements.reserve(suite.size());
    for (const cpu_benchmark& benchmark : suite) {
        const millivolts vmin = framework_.find_vmin(
            benchmark.loop, {core}, nominal_core_frequency, repetitions);
        measurements.push_back(vmin_measurement{benchmark.name, core, vmin});
        log_info("vmin ", benchmark.name, " core ", core, ": ", vmin.value,
                 " mV");
    }
    return measurements;
}

std::vector<vmin_measurement> guardband_explorer::characterize_cores(
    const cpu_benchmark& benchmark, int repetitions) {
    std::vector<vmin_measurement> measurements;
    measurements.reserve(cores_per_chip);
    for (int core = 0; core < cores_per_chip; ++core) {
        const millivolts vmin = framework_.find_vmin(
            benchmark.loop, {core}, nominal_core_frequency, repetitions);
        measurements.push_back(vmin_measurement{benchmark.name, core, vmin});
    }
    return measurements;
}

int guardband_explorer::most_robust_core(const cpu_benchmark& reference) {
    const std::vector<vmin_measurement> per_core =
        characterize_cores(reference, /*repetitions=*/3);
    const auto best = std::min_element(
        per_core.begin(), per_core.end(),
        [](const vmin_measurement& a, const vmin_measurement& b) {
            return a.vmin < b.vmin;
        });
    return best->core;
}

millivolts guardband_explorer::intrinsic_vmin(int repetitions) {
    const kernel idle = make_component_virus(cpu_component::none);
    cpu_benchmark reference{"idle", "synthetic", idle};
    const int robust = most_robust_core(reference);
    return framework_.find_vmin(idle, {robust}, nominal_core_frequency,
                                repetitions);
}

std::vector<ladder_point> guardband_explorer::dvfs_ladder(
    const std::vector<cpu_benchmark>& mix, megahertz reduced_frequency,
    millivolts guard) {
    GB_EXPECTS(mix.size() == static_cast<std::size_t>(cores_per_chip));
    GB_EXPECTS(reduced_frequency.value > 0.0 &&
               reduced_frequency <= nominal_core_frequency);
    GB_EXPECTS(guard.value >= 0.0);

    const auto requirements_for =
        [&](const std::array<megahertz, 4>& pmd_frequency) {
            std::vector<core_assignment> assignments;
            assignments.reserve(mix.size());
            for (int core = 0; core < cores_per_chip; ++core) {
                const megahertz f = pmd_frequency[static_cast<std::size_t>(
                    core / cores_per_pmd)];
                assignments.push_back(core_assignment{
                    core,
                    &framework_.profile_of(
                        mix[static_cast<std::size_t>(core)].loop, f),
                    f});
            }
            return framework_.chip().core_requirements(assignments,
                                                       /*phase_seed=*/42);
        };

    // Rank PMDs weakest-first from the all-nominal run.
    std::array<megahertz, 4> nominal_frequencies{
        nominal_core_frequency, nominal_core_frequency,
        nominal_core_frequency, nominal_core_frequency};
    const std::vector<vmin_analysis> nominal_reqs =
        requirements_for(nominal_frequencies);
    std::array<double, 4> pmd_requirement_mv{};
    for (const vmin_analysis& req : nominal_reqs) {
        auto& slot = pmd_requirement_mv[static_cast<std::size_t>(
            req.critical_core / cores_per_pmd)];
        slot = std::max(slot, req.vmin.value);
    }
    std::array<int, 4> pmds_by_weakness{0, 1, 2, 3};
    std::sort(pmds_by_weakness.begin(), pmds_by_weakness.end(),
              [&](int a, int b) {
                  return pmd_requirement_mv[static_cast<std::size_t>(a)] >
                         pmd_requirement_mv[static_cast<std::size_t>(b)];
              });

    std::vector<ladder_point> ladder;
    for (int slowed = 0; slowed <= 4; ++slowed) {
        std::array<megahertz, 4> frequencies = nominal_frequencies;
        for (int k = 0; k < slowed; ++k) {
            frequencies[static_cast<std::size_t>(pmds_by_weakness[
                static_cast<std::size_t>(k)])] = reduced_frequency;
        }
        const std::vector<vmin_analysis> reqs = requirements_for(frequencies);
        double chip_vmin_mv = 0.0;
        for (const vmin_analysis& req : reqs) {
            chip_vmin_mv = std::max(chip_vmin_mv, req.vmin.value);
        }

        ladder_point point;
        point.slowed_pmds = slowed;
        double freq_sum = 0.0;
        for (const megahertz f : frequencies) {
            freq_sum += f.value;
        }
        point.relative_performance =
            freq_sum / (4.0 * nominal_core_frequency.value);
        point.voltage = millivolts{chip_vmin_mv} + guard;
        // The paper's projection: dynamic power scales as V^2 times the
        // aggregate frequency (Fig 5's power axis follows (V/Vnom)^2 * perf).
        const double v_ratio = point.voltage / nominal_pmd_voltage;
        point.relative_power =
            v_ratio * v_ratio * point.relative_performance;
        ladder.push_back(point);
    }
    return ladder;
}

refresh_exploration guardband_explorer::explore_refresh(
    memory_system& memory, const std::vector<milliseconds>& ladder,
    std::uint64_t pattern_seed) {
    GB_EXPECTS(!ladder.empty());

    // Every (period, pattern) scan is independent and const against the
    // memory system (the period is a scan parameter), so the whole ladder
    // runs as one engine sweep; the per-period reduction below consumes the
    // scans in submission order, keeping results worker-count-invariant.
    const std::array<data_pattern, 4>& patterns = all_data_patterns();
    std::vector<scan_result> scans(ladder.size() * patterns.size());
    execution_options options;
    options.campaign = "refresh_exploration";
    const execution_engine engine(options);
    engine.run(scans.size(), [&](const task_context& ctx) {
        const milliseconds period = ladder[ctx.index / patterns.size()];
        const data_pattern pattern = patterns[ctx.index % patterns.size()];
        scans[ctx.index] = memory.run_dpbench(pattern, pattern_seed, period);
        return scans[ctx.index].fully_corrected() ? 0 : 1;
    });

    refresh_exploration exploration;
    exploration.max_safe_period = milliseconds{0.0};
    for (std::size_t p = 0; p < ladder.size(); ++p) {
        refresh_step step;
        step.period = ladder[p];
        for (std::size_t i = 0; i < patterns.size(); ++i) {
            const scan_result& scan = scans[p * patterns.size() + i];
            if (scan.failed_cells >= step.worst_scan.failed_cells) {
                step.worst_scan = scan;
            }
            step.fully_corrected =
                step.fully_corrected && scan.fully_corrected();
        }
        if (step.fully_corrected &&
            step.period > exploration.max_safe_period) {
            exploration.max_safe_period = step.period;
        }
        exploration.steps.push_back(step);
    }
    if (exploration.max_safe_period.value == 0.0) {
        exploration.max_safe_period = nominal_refresh_period;
    }
    return exploration;
}

} // namespace gb

// CPU workload models: representative instruction loops for the benchmark
// suites the paper characterizes (SPEC CPU2006 for the Vmin study of Fig 4/5,
// NAS for the virus comparison of Fig 6), plus the Jammer detector's compute
// kernel.
//
// Each benchmark is modelled as a loop with the burst structure that matters
// for voltage noise: sustained FP phases, memory-stall phases, and the
// alternation between them.  Mixes are calibrated so the resulting droops
// put Vmin in the measured 860-885 mV band on the TTT chip with a realistic
// workload-to-workload spread.
#pragma once

#include <string>
#include <vector>

#include "isa/kernel.hpp"

namespace gb {

struct cpu_benchmark {
    std::string name;
    std::string suite;
    kernel loop;
};

/// The ten SPEC CPU2006 programs of the paper's undervolting study.
[[nodiscard]] const std::vector<cpu_benchmark>& spec2006_suite();

/// Eight further SPEC CPU2006 integer programs (suite tag "SPEC2006-INT"):
/// not part of the paper's Fig 4 set, used as held-out workloads for
/// predictor validation and governor schedules.
[[nodiscard]] const std::vector<cpu_benchmark>& spec2006_int_suite();

/// The eight benchmarks of the simultaneous 8-core mix of Fig 5.
[[nodiscard]] std::vector<cpu_benchmark> fig5_mix();

/// NAS Parallel Benchmarks (Fig 6 comparison set).
[[nodiscard]] const std::vector<cpu_benchmark>& nas_suite();

/// Look up a benchmark by name across both suites; throws if unknown.
[[nodiscard]] const cpu_benchmark& find_cpu_benchmark(const std::string& name);

/// Compute kernel of one Jammer-detector instance: FFT butterflies (SIMD
/// mul/add) over windows streamed from memory.
[[nodiscard]] kernel jammer_cpu_kernel();

/// Build a kernel from (opcode, run length) phases, repeated in order.  This
/// is the construction primitive for all benchmark models: run lengths set
/// the dI/dt burst structure.
[[nodiscard]] kernel make_phased_kernel(
    const std::string& name,
    const std::vector<std::pair<opcode, int>>& phases);

} // namespace gb

// Stencil access-pattern scheduling (paper Section IV.C, after Tovletoglou
// et al., IOLTS'17 [12]).
//
// Stencil sweeps touch every grid row once per time step, so each DRAM row
// is implicitly refreshed once per sweep.  Temporal blocking (running
// several time steps on a tile before moving on) improves locality but
// stretches the revisit interval of out-of-tile rows.  The scheduler's job
// is to pick the largest temporal blocking factor whose worst-case
// inter-access interval still fits inside the targeted refresh window, so
// accesses keep refreshing the rows and manifested errors stay contained.
#pragma once

#include "dram/memory_system.hpp"
#include "util/units.hpp"

namespace gb {

struct stencil_config {
    int grid_rows = 16384;      ///< grid rows, each mapped to one DRAM row
    int grid_cols = 8192;       ///< points per row
    double bytes_per_point = 8; ///< double-precision state
    double bandwidth_gbps = 12.0;
    int time_steps = 64; ///< total sweeps of the computation
};

/// A schedule is defined by its temporal blocking factor: the number of time
/// steps executed on a tile before moving to the next.  Factor 1 is the
/// naive full-grid sweep.
struct stencil_schedule {
    int tile_rows = 1024;
    int time_steps_per_tile = 1;
};

/// Worst-case and typical per-row re-access intervals of a schedule.
struct stencil_interval_analysis {
    double sweep_time_s = 0.0;        ///< one full pass over the grid
    double max_interval_s = 0.0;      ///< worst row revisit gap
    double typical_interval_s = 0.0;  ///< in-tile revisit gap
    /// Fraction of rows whose worst gap fits within `window`.
    [[nodiscard]] double fraction_rows_within(milliseconds window) const;
};

[[nodiscard]] stencil_interval_analysis analyze_stencil(
    const stencil_config& config, const stencil_schedule& schedule);

/// Largest temporal blocking factor whose worst-case interval stays within
/// `safety` (< 1) of the refresh window; at least 1.
[[nodiscard]] int max_safe_blocking_factor(const stencil_config& config,
                                           const stencil_schedule& schedule,
                                           milliseconds refresh_window,
                                           double safety = 0.8);

/// DRAM-side profile of a scheduled stencil: rows revisited within the
/// refresh window count as implicitly refreshed.
[[nodiscard]] access_profile stencil_access_profile(
    const stencil_config& config, const stencil_interval_analysis& analysis,
    milliseconds refresh_window);

} // namespace gb

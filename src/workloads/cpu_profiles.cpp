#include "workloads/cpu_profiles.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace gb {

kernel make_phased_kernel(
    const std::string& name,
    const std::vector<std::pair<opcode, int>>& phases) {
    GB_EXPECTS(!phases.empty());
    kernel k;
    k.name = name;
    for (const auto& [op, length] : phases) {
        GB_EXPECTS(length > 0);
        k.body.insert(k.body.end(), static_cast<std::size_t>(length), op);
    }
    return k;
}

namespace {

// Benchmark loop models.  Run lengths are in instructions; with the 50 MHz
// PDN resonance at 2.4 GHz, structure on the order of ~20-50 cycles per
// phase couples into the resonance, while very long phases (or very long
// DRAM stalls) average out.  FP-heavy codes with cache-miss interruptions
// droop the most; steady integer or fully memory-bound codes the least.

std::vector<cpu_benchmark> build_spec_suite() {
    std::vector<cpu_benchmark> suite;
    const auto add = [&](const std::string& name,
                         const std::vector<std::pair<opcode, int>>& phases) {
        suite.push_back(cpu_benchmark{name, "SPEC2006",
                                      make_phased_kernel(name, phases)});
    };

    // Loop periods count issue plus stall cycles (load_l2 = 8 cycles,
    // load_l3 = 29, load_dram ~ 181 at 2.4 GHz).  Codes whose burst period
    // lands near the 48-cycle PDN resonance droop hardest.

    // bwaves: blast-wave CFD -- SIMD sweeps broken by L2 stream refills;
    // 20 high + 24 low = 44-cycle period, close to resonance.
    add("bwaves", {{opcode::simd_mul, 20},
                   {opcode::load_l2, 2},
                   {opcode::load_l1, 8}});
    // cactusADM: staggered-grid relativity -- FP-dense tiles with L2
    // refills at a resonant period but lower amplitude than SIMD codes.
    add("cactusADM", {{opcode::fp_mul, 14},
                      {opcode::fp_alu, 10},
                      {opcode::load_l2, 3}});
    // dealII: adaptive FEM -- mixed FP/int with irregular L2/L3 access,
    // moderately bursty.
    add("dealII", {{opcode::fp_mul, 10},
                   {opcode::int_alu, 8},
                   {opcode::load_l2, 2},
                   {opcode::fp_alu, 8},
                   {opcode::load_l3, 1}});
    // gromacs: molecular dynamics inner loop -- dense SIMD with L1-resident
    // neighbour lists: the steadiest high-power code of the set (high
    // current, little dI/dt).
    add("gromacs", {{opcode::simd_mul, 26},
                    {opcode::load_l1, 6},
                    {opcode::simd_alu, 22},
                    {opcode::load_l1, 6}});
    // leslie3d: LES CFD -- SIMD bursts against L3-resident planes;
    // 16 high + 29 low = 45-cycle period.
    add("leslie3d", {{opcode::simd_mul, 16}, {opcode::load_l3, 1}});
    // mcf: pointer-chasing network simplex; almost entirely DRAM-bound,
    // long flat stalls far off resonance.
    add("mcf", {{opcode::load_dram, 1},
                {opcode::int_alu, 10},
                {opcode::branch, 4},
                {opcode::load_dram, 1},
                {opcode::int_alu, 6}});
    // milc: lattice QCD -- SU(3) SIMD blocks alternating with L2 gathers at
    // exactly the resonant period: the suite's strongest dI/dt.
    add("milc", {{opcode::simd_mul, 22}, {opcode::load_l2, 3}});
    // namd: molecular dynamics, FP-dense and cache-friendly, a 48-cycle
    // period of moderate swing.
    add("namd", {{opcode::fp_mul, 20},
                 {opcode::load_l1, 8},
                 {opcode::fp_alu, 12},
                 {opcode::load_l1, 8}});
    // gcc: integer/branch-heavy compilation with L2-resident IR walks.
    add("gcc", {{opcode::int_alu, 10},
                {opcode::branch, 6},
                {opcode::load_l2, 2},
                {opcode::int_mul, 4},
                {opcode::load_l1, 8}});
    // lbm: lattice Boltzmann -- streaming FP with steady DRAM traffic, a
    // long off-resonance period.
    add("lbm", {{opcode::fp_mul, 12},
                {opcode::fp_alu, 10},
                {opcode::load_dram, 1},
                {opcode::store_dram, 1}});
    return suite;
}

std::vector<cpu_benchmark> build_spec_int_suite() {
    std::vector<cpu_benchmark> suite;
    const auto add = [&](const std::string& name,
                         const std::vector<std::pair<opcode, int>>& phases) {
        suite.push_back(cpu_benchmark{name, "SPEC2006-INT",
                                      make_phased_kernel(name, phases)});
    };
    // perlbench: interpreter dispatch -- branchy integer with hash lookups.
    add("perlbench", {{opcode::int_alu, 8},
                      {opcode::branch, 5},
                      {opcode::load_l1, 8},
                      {opcode::load_l2, 1}});
    // bzip2: Burrows-Wheeler sort/move-to-front, L2-resident tables.
    add("bzip2", {{opcode::int_alu, 12},
                  {opcode::load_l2, 2},
                  {opcode::int_mul, 2},
                  {opcode::load_l1, 10}});
    // hmmer: profile HMM inner loop -- dense integer max/add chains.
    add("hmmer", {{opcode::int_alu, 20},
                  {opcode::int_mul, 6},
                  {opcode::load_l1, 12}});
    // sjeng: chess search -- branch-dominated with small tables.
    add("sjeng", {{opcode::branch, 8},
                  {opcode::int_alu, 10},
                  {opcode::load_l1, 8},
                  {opcode::load_l2, 1}});
    // libquantum: streaming gate application over a large state vector --
    // bursty integer work against DRAM streams.
    add("libquantum", {{opcode::int_alu, 14},
                       {opcode::load_dram, 1},
                       {opcode::store_dram, 1}});
    // h264ref: motion estimation -- SIMD absolute differences in bursts
    // with L2-resident reference windows (the noisiest INT code).
    add("h264ref", {{opcode::simd_alu, 18},
                    {opcode::load_l2, 2},
                    {opcode::simd_alu, 8},
                    {opcode::load_l1, 6}});
    // omnetpp: discrete-event simulation -- pointer-heavy heap walks.
    add("omnetpp", {{opcode::load_l3, 1},
                    {opcode::int_alu, 8},
                    {opcode::branch, 4},
                    {opcode::load_l2, 1}});
    // astar: pathfinding -- branchy graph walks with mixed locality.
    add("astar", {{opcode::int_alu, 9},
                  {opcode::branch, 4},
                  {opcode::load_l2, 2},
                  {opcode::load_l1, 6},
                  {opcode::load_l3, 1}});
    return suite;
}

std::vector<cpu_benchmark> build_nas_suite() {
    std::vector<cpu_benchmark> suite;
    const auto add = [&](const std::string& name,
                         const std::vector<std::pair<opcode, int>>& phases) {
        suite.push_back(
            cpu_benchmark{name, "NAS", make_phased_kernel(name, phases)});
    };
    // bt/sp: block-tridiagonal and scalar-pentadiagonal solvers.
    add("bt", {{opcode::fp_mul, 16},
               {opcode::fp_alu, 8},
               {opcode::load_l2, 3}});
    add("sp", {{opcode::fp_mul, 14},
               {opcode::fp_alu, 14},
               {opcode::load_l2, 2},
               {opcode::load_l1, 10}});
    // cg: sparse matrix-vector -- gathers dominate.
    add("cg", {{opcode::load_dram, 1},
               {opcode::fp_mul, 8},
               {opcode::load_l3, 1},
               {opcode::fp_alu, 6}});
    // ep: embarrassingly parallel random numbers -- pure FP, no memory.
    add("ep", {{opcode::fp_mul, 24}, {opcode::fp_alu, 24},
               {opcode::int_mul, 8}});
    // ft: 3-D FFT -- SIMD butterflies against L2-resident lines: the
    // noisiest NAS code, still short of the dI/dt virus.
    add("ft", {{opcode::simd_mul, 20},
               {opcode::load_l2, 2},
               {opcode::simd_alu, 8}});
    // is: integer sort -- int/branch with streaming stores.
    add("is", {{opcode::int_alu, 12},
               {opcode::branch, 4},
               {opcode::load_dram, 1},
               {opcode::store_dram, 1}});
    // lu: LU factorization -- FP with triangular L1/L2 reuse.
    add("lu", {{opcode::fp_mul, 18},
               {opcode::fp_alu, 10},
               {opcode::load_l1, 10},
               {opcode::load_l2, 2}});
    // mg: multigrid -- SIMD smoothing sweeps with level-crossing misses.
    add("mg", {{opcode::simd_alu, 16},
               {opcode::load_l2, 2},
               {opcode::fp_alu, 8},
               {opcode::load_l3, 1}});
    return suite;
}

} // namespace

const std::vector<cpu_benchmark>& spec2006_suite() {
    static const std::vector<cpu_benchmark> suite = build_spec_suite();
    return suite;
}

std::vector<cpu_benchmark> fig5_mix() {
    // The eight programs the paper runs simultaneously for Fig 5.
    const std::vector<std::string> names{"bwaves",   "cactusADM", "dealII",
                                         "gromacs",  "leslie3d",  "mcf",
                                         "milc",     "namd"};
    std::vector<cpu_benchmark> mix;
    mix.reserve(names.size());
    for (const std::string& name : names) {
        mix.push_back(find_cpu_benchmark(name));
    }
    return mix;
}

const std::vector<cpu_benchmark>& spec2006_int_suite() {
    static const std::vector<cpu_benchmark> suite = build_spec_int_suite();
    return suite;
}

const std::vector<cpu_benchmark>& nas_suite() {
    static const std::vector<cpu_benchmark> suite = build_nas_suite();
    return suite;
}

const cpu_benchmark& find_cpu_benchmark(const std::string& name) {
    for (const std::vector<cpu_benchmark>* suite :
         {&spec2006_suite(), &spec2006_int_suite(), &nas_suite()}) {
        for (const cpu_benchmark& b : *suite) {
            if (b.name == name) {
                return b;
            }
        }
    }
    throw std::invalid_argument("unknown CPU benchmark: " + name);
}

kernel jammer_cpu_kernel() {
    // Per spectrum window: FFT butterflies and magnitude scan (SIMD/FP)
    // over L1-resident windows; the IQ stream itself arrives by DMA, so the
    // cores stay compute-dense ("utilize the maximum CPU ... bandwidth").
    return make_phased_kernel("jammer",
                              {{opcode::simd_mul, 32},
                               {opcode::simd_alu, 18},
                               {opcode::fp_mul, 4},
                               {opcode::load_l1, 6}});
}

} // namespace gb

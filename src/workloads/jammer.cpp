#include "workloads/jammer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/contracts.hpp"
#include "util/fft.hpp"

namespace gb {

double detection_report::detection_rate() const {
    return events_injected == 0 ? 1.0
                                : static_cast<double>(events_detected) /
                                      static_cast<double>(events_injected);
}

double detection_report::false_alarm_rate() const {
    return windows_processed == 0
               ? 0.0
               : static_cast<double>(false_alarm_windows) /
                     static_cast<double>(windows_processed);
}

std::vector<jam_event> make_random_jam_events(int count, int total_windows,
                                              rng& r) {
    GB_EXPECTS(count >= 0);
    GB_EXPECTS(total_windows > 8 * count);
    std::vector<jam_event> events;
    events.reserve(static_cast<std::size_t>(count));
    const int slot = total_windows / std::max(count, 1);
    for (int i = 0; i < count; ++i) {
        jam_event event;
        const auto kind_draw = r.uniform_index(3);
        event.kind = static_cast<jam_kind>(kind_draw);
        event.duration_windows =
            4 + static_cast<int>(r.uniform_index(static_cast<std::uint64_t>(
                    std::max(2, slot / 2 - 4))));
        event.start_window =
            i * slot + static_cast<int>(r.uniform_index(static_cast<
                std::uint64_t>(std::max(1, slot - event.duration_windows))));
        event.center_frequency = r.uniform(0.05, 0.45);
        event.power_db = r.uniform(12.0, 25.0);
        events.push_back(event);
    }
    return events;
}

jammer_detector::jammer_detector(jammer_config config) : config_(config) {
    GB_EXPECTS(config.fft_size >= 64);
    GB_EXPECTS((config.fft_size & (config.fft_size - 1)) == 0);
    GB_EXPECTS(config.sample_rate_hz > 0.0);
    GB_EXPECTS(config.confirmation_windows >= 1);
}

namespace {

/// Instantaneous normalized frequency of an event within one window.
double event_frequency(const jam_event& event, int window) {
    switch (event.kind) {
    case jam_kind::cw_tone:
    case jam_kind::pulsed:
        return event.center_frequency;
    case jam_kind::sweep: {
        // Linear sweep of +/-0.05 around the centre over the event.
        const double progress =
            static_cast<double>(window - event.start_window) /
            static_cast<double>(std::max(1, event.duration_windows - 1));
        return std::clamp(event.center_frequency + 0.1 * (progress - 0.5),
                          0.01, 0.49);
    }
    }
    GB_ASSERT(false);
    return event.center_frequency;
}

bool event_active(const jam_event& event, int window) {
    if (window < event.start_window ||
        window >= event.start_window + event.duration_windows) {
        return false;
    }
    // Pulsed jammers are on every other window.
    if (event.kind == jam_kind::pulsed) {
        return ((window - event.start_window) & 1) == 0;
    }
    return true;
}

} // namespace

detection_report jammer_detector::run(int total_windows,
                                      const std::vector<jam_event>& events,
                                      rng& r) const {
    GB_EXPECTS(total_windows > 0);
    detection_report report;
    report.windows_processed = total_windows;
    report.events_injected = static_cast<int>(events.size());

    const auto n = static_cast<std::size_t>(config_.fft_size);
    std::vector<int> hot_streak_by_event(events.size(), 0);
    std::vector<bool> detected(events.size(), false);
    std::vector<int> latency(events.size(), 0);
    const double noise_sigma = 1.0;

    std::vector<std::complex<double>> window(n);
    for (int w = 0; w < total_windows; ++w) {
        // Synthesize one IQ window: complex Gaussian noise + active events.
        for (std::size_t k = 0; k < n; ++k) {
            window[k] = std::complex<double>(r.normal(0.0, noise_sigma),
                                             r.normal(0.0, noise_sigma));
        }
        bool any_active = false;
        for (const jam_event& event : events) {
            if (!event_active(event, w)) {
                continue;
            }
            any_active = true;
            // power_db is the event's FFT-bin power above the mean noise
            // bin power (2 sigma^2 n): amplitude such that |A n|^2 =
            // 10^(p/10) * 2 sigma^2 n.
            const double amplitude =
                noise_sigma * std::sqrt(2.0 / static_cast<double>(n)) *
                std::pow(10.0, event.power_db / 20.0);
            const double freq = event_frequency(event, w);
            const double phase0 = r.uniform(0.0, 2.0 * std::numbers::pi);
            for (std::size_t k = 0; k < n; ++k) {
                const double phase =
                    2.0 * std::numbers::pi * freq *
                        static_cast<double>(k) +
                    phase0;
                window[k] += amplitude *
                             std::complex<double>(std::cos(phase),
                                                  std::sin(phase));
            }
        }

        // Detector: FFT, power spectrum, median noise floor, threshold.
        std::vector<std::complex<double>> spectrum = window;
        fft(spectrum);
        std::vector<double> power(n);
        for (std::size_t k = 0; k < n; ++k) {
            power[k] = std::norm(spectrum[k]);
        }
        std::vector<double> sorted_power = power;
        std::nth_element(sorted_power.begin(),
                         sorted_power.begin() +
                             static_cast<std::ptrdiff_t>(n / 2),
                         sorted_power.end());
        const double noise_floor = sorted_power[n / 2];
        const double threshold =
            noise_floor * std::pow(10.0, config_.threshold_db / 10.0);

        std::vector<std::size_t> hot_bins;
        for (std::size_t k = 1; k < n / 2; ++k) {
            if (power[k] > threshold) {
                hot_bins.push_back(k);
            }
        }

        // Attribute hot bins to events; unattributed hot windows are false
        // alarms.
        bool attributed = false;
        for (std::size_t e = 0; e < events.size(); ++e) {
            const jam_event& event = events[e];
            if (!event_active(event, w)) {
                // Pulsed jammers are off every other window within their
                // span; only a window outside the span resets the streak.
                const bool in_span =
                    w >= event.start_window &&
                    w < event.start_window + event.duration_windows;
                if (!in_span) {
                    hot_streak_by_event[e] = 0;
                }
                continue;
            }
            const double freq = event_frequency(event, w);
            const auto expected_bin = static_cast<std::size_t>(
                freq * static_cast<double>(n) + 0.5);
            const bool hit = std::any_of(
                hot_bins.begin(), hot_bins.end(), [&](std::size_t bin) {
                    const std::size_t distance =
                        bin > expected_bin ? bin - expected_bin
                                           : expected_bin - bin;
                    return distance <= 2;
                });
            if (hit) {
                attributed = true;
                ++hot_streak_by_event[e];
                if (!detected[e] &&
                    hot_streak_by_event[e] >= config_.confirmation_windows) {
                    detected[e] = true;
                    latency[e] = w - event.start_window;
                }
            } else if (event.kind != jam_kind::pulsed) {
                hot_streak_by_event[e] = 0;
            }
        }
        if (!hot_bins.empty() && !attributed && !any_active) {
            ++report.false_alarm_windows;
        }
    }

    double latency_sum = 0.0;
    for (std::size_t e = 0; e < events.size(); ++e) {
        if (detected[e]) {
            ++report.events_detected;
            latency_sum += static_cast<double>(latency[e]);
        }
    }
    report.mean_detection_latency_windows =
        report.events_detected == 0
            ? 0.0
            : latency_sum / static_cast<double>(report.events_detected);
    return report;
}

double jammer_detector::cycles_per_window() const {
    const auto n = static_cast<double>(config_.fft_size);
    // ~8 cycles per butterfly on a SIMD FP unit, plus the linear magnitude
    // and threshold scan (~4 cycles per bin).
    return 8.0 * n * std::log2(n) + 4.0 * n;
}

bool jammer_detector::meets_qos(megahertz core_frequency, int instances,
                                int cores) const {
    GB_EXPECTS(instances >= 1 && cores >= 1);
    const double seconds_per_window =
        cycles_per_window() * static_cast<double>(instances) /
        (core_frequency.hertz() * static_cast<double>(cores));
    return seconds_per_window <= config_.window_duration_s();
}

} // namespace gb

#include "workloads/stencil.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace gb {

double stencil_interval_analysis::fraction_rows_within(
    milliseconds window) const {
    // The revisit gap is bimodal: almost all visits are the in-tile gap; the
    // worst gap happens once per tile residence change.  Rows are safe when
    // their worst gap fits.
    if (max_interval_s <= window.seconds()) {
        return 1.0;
    }
    if (typical_interval_s <= window.seconds()) {
        // Only the inter-residence gap exceeds the window; every row incurs
        // it, so no row is fully safe -- but accesses still cover the
        // in-tile portion.  Report the covered share of intervals.
        return 0.0;
    }
    return 0.0;
}

stencil_interval_analysis analyze_stencil(const stencil_config& config,
                                          const stencil_schedule& schedule) {
    GB_EXPECTS(config.grid_rows > 0 && config.grid_cols > 0);
    GB_EXPECTS(config.bytes_per_point > 0.0 && config.bandwidth_gbps > 0.0);
    GB_EXPECTS(schedule.tile_rows > 0 &&
               schedule.tile_rows <= config.grid_rows);
    GB_EXPECTS(schedule.time_steps_per_tile >= 1);

    const double bytes_per_sweep = static_cast<double>(config.grid_rows) *
                                   static_cast<double>(config.grid_cols) *
                                   config.bytes_per_point;
    const double sweep_time_s =
        bytes_per_sweep / (config.bandwidth_gbps * 1.0e9);

    stencil_interval_analysis analysis;
    analysis.sweep_time_s = sweep_time_s;

    const double tile_fraction = static_cast<double>(schedule.tile_rows) /
                                 static_cast<double>(config.grid_rows);
    const double tile_sweep_s = sweep_time_s * tile_fraction;

    // While resident, a tile's rows are revisited every tile sweep.  After
    // the schedule moves on, a row waits for the rest of the grid to receive
    // its time_steps_per_tile sweeps before its tile is resident again.
    analysis.typical_interval_s = tile_sweep_s;
    analysis.max_interval_s =
        sweep_time_s * static_cast<double>(schedule.time_steps_per_tile) *
        (1.0 - tile_fraction) +
        tile_sweep_s;
    return analysis;
}

int max_safe_blocking_factor(const stencil_config& config,
                             const stencil_schedule& schedule,
                             milliseconds refresh_window, double safety) {
    GB_EXPECTS(refresh_window.value > 0.0);
    GB_EXPECTS(safety > 0.0 && safety <= 1.0);
    int best = 1;
    for (int factor = 1; factor <= config.time_steps; ++factor) {
        stencil_schedule candidate = schedule;
        candidate.time_steps_per_tile = factor;
        const stencil_interval_analysis analysis =
            analyze_stencil(config, candidate);
        if (analysis.max_interval_s <=
            safety * refresh_window.seconds()) {
            best = factor;
        } else {
            break;
        }
    }
    return best;
}

access_profile stencil_access_profile(
    const stencil_config& config, const stencil_interval_analysis& analysis,
    milliseconds refresh_window) {
    access_profile profile;
    const double footprint_bytes = static_cast<double>(config.grid_rows) *
                                   static_cast<double>(config.grid_cols) *
                                   config.bytes_per_point;
    const double total_bytes = 32.0 * 1024.0 * 1024.0 * 1024.0;
    profile.footprint_fraction =
        std::min(1.0, footprint_bytes / total_bytes);
    profile.refreshed_fraction =
        analysis.fraction_rows_within(refresh_window);
    profile.ones_density = 0.45; // double-precision field data
    return profile;
}

} // namespace gb

// End-to-end Jammer-detector application (paper Section IV.D).
//
// The paper's exploitation showcase is a multi-threaded denial-of-service
// (jamming) detector that monitors the wireless spectrum through SDR
// front-ends.  Here the SDR front-end is synthetic -- an IQ sample stream of
// complex Gaussian noise plus injected jammer events (CW tones, sweeps,
// pulsed carriers) -- and the detector is real signal processing: windowed
// FFT, median-based noise-floor estimation, and an energy detector with a
// configurable threshold.  Quality-of-Service is a real-time constraint:
// every window must be processed before the next one arrives, which couples
// the detector to the CPU frequency chosen by the guardband exploitation.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace gb {

enum class jam_kind : std::uint8_t { cw_tone, sweep, pulsed };

/// One injected jamming event, in units of windows and normalized frequency.
struct jam_event {
    jam_kind kind = jam_kind::cw_tone;
    int start_window = 0;
    int duration_windows = 0;
    double center_frequency = 0.25; ///< fraction of sample rate, 0..0.5
    double power_db = 15.0;         ///< bin power above mean noise power
};

struct jammer_config {
    int fft_size = 1024;
    double sample_rate_hz = 20.0e6;
    /// Detection threshold above the estimated (median) noise floor.
    double threshold_db = 12.0;
    /// Consecutive hot windows required to declare a jammer.
    int confirmation_windows = 2;

    [[nodiscard]] double window_duration_s() const {
        return static_cast<double>(fft_size) / sample_rate_hz;
    }
};

struct detection_report {
    int windows_processed = 0;
    int events_injected = 0;
    int events_detected = 0;
    int false_alarm_windows = 0;
    double mean_detection_latency_windows = 0.0;

    [[nodiscard]] double detection_rate() const;
    [[nodiscard]] double false_alarm_rate() const;
};

/// Generate a reproducible set of non-overlapping jam events.
[[nodiscard]] std::vector<jam_event> make_random_jam_events(int count,
                                                            int total_windows,
                                                            rng& r);

class jammer_detector {
public:
    explicit jammer_detector(jammer_config config);

    /// Synthesize `total_windows` of spectrum containing `events` and run
    /// the detector over them.
    [[nodiscard]] detection_report run(int total_windows,
                                       const std::vector<jam_event>& events,
                                       rng& r) const;

    /// Estimated CPU cycles to process one window (synthesis excluded):
    /// FFT butterflies plus the magnitude/threshold scan.
    [[nodiscard]] double cycles_per_window() const;

    /// Real-time QoS: with `instances` detectors sharing `cores` cores at
    /// frequency f, does per-window processing fit in the window duration?
    [[nodiscard]] bool meets_qos(megahertz core_frequency, int instances,
                                 int cores) const;

    [[nodiscard]] const jammer_config& config() const { return config_; }

private:
    jammer_config config_;
};

} // namespace gb

// Memory-side behaviour of the HPC applications of the DRAM study (Fig 8:
// Rodinia backprop / kmeans / nw / srad) and of the Jammer detector.
//
// Each profile carries what the refresh-relaxation analysis needs: the
// resident-data footprint and bit statistics (for error exposure), the
// fraction of the footprint whose rows the application re-touches faster
// than the refresh period (implicit refresh), and the sustained DRAM
// bandwidth (for the power model).  Bandwidths are calibrated so the Fig 8b
// savings spread (27.3% for nw down to 9.4% for kmeans) is reproduced by the
// dram_power_model.
#pragma once

#include <string>
#include <vector>

#include "dram/memory_system.hpp"

namespace gb {

struct dram_workload {
    std::string name;
    access_profile profile;
    double bandwidth_gbps = 0.0;
};

/// The four Rodinia applications of the paper's Fig 8.
[[nodiscard]] const std::vector<dram_workload>& rodinia_suite();

/// DRAM-side profile of one Jammer-detector instance set (4 instances).
[[nodiscard]] const dram_workload& jammer_dram_workload();

/// Look up by name; throws if unknown.
[[nodiscard]] const dram_workload& find_dram_workload(const std::string& name);

} // namespace gb

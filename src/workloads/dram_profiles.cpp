#include "workloads/dram_profiles.hpp"

#include <stdexcept>

namespace gb {

const std::vector<dram_workload>& rodinia_suite() {
    // footprint_fraction: share of the 32 GB the working set occupies.
    // refreshed_fraction: rows re-touched faster than the (relaxed) refresh
    //   period -- streaming codes sweep their arrays continuously, wavefront
    //   codes leave most rows cold for long stretches.
    // ones_density: bit statistics of resident data (near-solid float arrays
    //   of small magnitudes vs high-entropy integer/index data).
    // bandwidth_gbps: sustained DRAM traffic, sized so the dram_power_model
    //   reproduces Fig 8b (kmeans is bandwidth-bound, nw latency-bound).
    static const std::vector<dram_workload> suite{
        // backprop: dense layer sweeps, moderate reuse, float weights.
        {"backprop", access_profile{0.50, 0.55, 0.45}, 10.0},
        // kmeans: streaming distance pass over all points every iteration.
        {"kmeans", access_profile{0.60, 0.70, 0.50}, 28.7},
        // nw: Needleman-Wunsch wavefront -- touches each anti-diagonal once,
        // then the matrix sits cold: least implicit refresh, least traffic.
        {"nw", access_profile{0.45, 0.15, 0.55}, 2.6},
        // srad: structured-grid diffusion, alternating read/write sweeps.
        {"srad", access_profile{0.55, 0.60, 0.40}, 18.0},
    };
    return suite;
}

const dram_workload& jammer_dram_workload() {
    // Four detector instances stream IQ windows through small ring buffers:
    // tiny footprint, constantly re-touched, low sustained bandwidth.
    static const dram_workload workload{
        "jammer", access_profile{0.08, 0.90, 0.50}, 0.33};
    return workload;
}

const dram_workload& find_dram_workload(const std::string& name) {
    for (const dram_workload& w : rodinia_suite()) {
        if (w.name == name) {
            return w;
        }
    }
    if (name == jammer_dram_workload().name) {
        return jammer_dram_workload();
    }
    throw std::invalid_argument("unknown DRAM workload: " + name);
}

} // namespace gb

// Minimal leveled logger.  The characterization framework logs the effects of
// every run; tests silence it, examples turn it up.
//
// Thread safety: campaign workers log concurrently, so the process-wide
// sink is mutex-guarded -- each message is rendered to a single string
// first and emitted as one write, so lines never interleave.  The level is
// atomic (the common level check stays lock-free); set_sink/set_level are
// safe to call at any time, though reconfiguring while workers are running
// applies to subsequent messages only.
#pragma once

#include <atomic>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace gb {

enum class log_level { debug, info, warn, error, off };

/// Process-wide log configuration.
class logger {
public:
    static logger& instance();

    void set_level(log_level level) {
        level_.store(level, std::memory_order_relaxed);
    }
    [[nodiscard]] log_level level() const {
        return level_.load(std::memory_order_relaxed);
    }

    /// Redirect output (default std::clog).  Pass nullptr to restore default.
    void set_sink(std::ostream* sink);

    void write(log_level level, const std::string& message);

private:
    logger() = default;
    std::atomic<log_level> level_{log_level::warn};
    std::ostream* sink_ = nullptr; ///< guarded by mutex_
    std::mutex mutex_;             ///< serializes sink access and writes
};

namespace detail {

template <typename... Args>
void log_at(log_level level, Args&&... args) {
    if (level < logger::instance().level()) {
        return;
    }
    std::ostringstream oss;
    (oss << ... << args);
    logger::instance().write(level, oss.str());
}

} // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
    detail::log_at(log_level::debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
    detail::log_at(log_level::info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
    detail::log_at(log_level::warn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
    detail::log_at(log_level::error, std::forward<Args>(args)...);
}

} // namespace gb

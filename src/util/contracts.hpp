// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  Violations throw so that
// tests can assert on them; they are never compiled out because the library
// is a simulator whose correctness matters more than the last few percent of
// speed on contract checks.
#pragma once

#include <stdexcept>
#include <string>

namespace gb {

/// Thrown when a precondition, postcondition or invariant is violated.
class contract_violation : public std::logic_error {
public:
    explicit contract_violation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw contract_violation(std::string(kind) + " failed: " + expr + " at " +
                             file + ":" + std::to_string(line));
}

} // namespace detail

} // namespace gb

/// Precondition check: argument/state requirements at function entry.
#define GB_EXPECTS(cond)                                                      \
    ((cond) ? static_cast<void>(0)                                            \
            : ::gb::detail::contract_fail("precondition", #cond, __FILE__,   \
                                          __LINE__))

/// Postcondition check: guarantees at function exit.
#define GB_ENSURES(cond)                                                      \
    ((cond) ? static_cast<void>(0)                                            \
            : ::gb::detail::contract_fail("postcondition", #cond, __FILE__,  \
                                          __LINE__))

/// Internal invariant check.
#define GB_ASSERT(cond)                                                       \
    ((cond) ? static_cast<void>(0)                                            \
            : ::gb::detail::contract_fail("invariant", #cond, __FILE__,      \
                                          __LINE__))

#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/contracts.hpp"

namespace gb {

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {
    GB_EXPECTS(!header_.empty());
}

void text_table::add_row(std::vector<std::string> row) {
    GB_EXPECTS(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void text_table::render(std::ostream& out) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    const auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "" : "  ");
            out << row[c];
            out << std::string(widths[c] - row[c].size(), ' ');
        }
        out << '\n';
    };
    emit_row(header_);
    std::size_t total = 0;
    for (const std::size_t w : widths) {
        total += w;
    }
    total += 2 * (widths.size() - 1);
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        emit_row(row);
    }
}

std::string format_number(double value, int precision) {
    GB_EXPECTS(precision >= 0 && precision <= 17);
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
    return buffer;
}

std::string format_percent(double fraction, int precision) {
    return format_number(fraction * 100.0, precision) + "%";
}

} // namespace gb

// CSV emission for the parsing phase of the characterization framework.  The
// paper's framework (Fig 2) ends in a "Final CSV Results" stage; campaigns in
// this library produce the same artifact.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gb {

/// Quote a field per RFC 4180 if it contains separators, quotes or newlines.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Streaming CSV writer: header first, then one row at a time.  All rows must
/// have exactly as many fields as the header.
class csv_writer {
public:
    csv_writer(std::ostream& out, std::vector<std::string> header);

    void write_row(const std::vector<std::string>& fields);

    [[nodiscard]] std::size_t rows_written() const { return rows_; }

private:
    std::ostream& out_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

/// Format a double with fixed precision (default 3 decimal places).
[[nodiscard]] std::string csv_number(double value, int precision = 3);

} // namespace gb

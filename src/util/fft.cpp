#include "util/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/contracts.hpp"

namespace gb {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_impl(std::vector<std::complex<double>>& data, bool inverse) {
    const std::size_t n = data.size();
    GB_EXPECTS(is_power_of_two(n));

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j ^= bit;
        if (i < j) {
            std::swap(data[i], data[j]);
        }
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                             static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t start = 0; start < n; start += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> even = data[start + k];
                const std::complex<double> odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        for (auto& x : data) {
            x /= static_cast<double>(n);
        }
    }
}

} // namespace

void fft(std::vector<std::complex<double>>& data) { fft_impl(data, false); }

void ifft(std::vector<std::complex<double>>& data) { fft_impl(data, true); }

std::vector<double> magnitude_spectrum(std::span<const double> signal) {
    GB_EXPECTS(!signal.empty());
    const std::size_t n = next_power_of_two(signal.size());
    std::vector<std::complex<double>> data(n);
    for (std::size_t i = 0; i < signal.size(); ++i) {
        data[i] = std::complex<double>(signal[i], 0.0);
    }
    fft(data);
    std::vector<double> mags(n / 2 + 1);
    for (std::size_t i = 0; i < mags.size(); ++i) {
        mags[i] = std::abs(data[i]);
    }
    return mags;
}

double goertzel(std::span<const double> signal, double cycles_per_sample) {
    GB_EXPECTS(!signal.empty());
    GB_EXPECTS(cycles_per_sample >= 0.0 && cycles_per_sample <= 0.5);
    const double omega = 2.0 * std::numbers::pi * cycles_per_sample;
    const double coeff = 2.0 * std::cos(omega);
    double s_prev = 0.0;
    double s_prev2 = 0.0;
    for (const double x : signal) {
        const double s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    const double power =
        s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
    return std::sqrt(std::max(power, 0.0));
}

std::size_t next_power_of_two(std::size_t n) {
    GB_EXPECTS(n >= 1);
    std::size_t p = 1;
    while (p < n) {
        p <<= 1;
    }
    return p;
}

} // namespace gb

// Checked command-line argument parsing for the examples and benches.
//
// The examples used to funnel argv through bare std::atoi/atof/atol, which
// return 0 on garbage and silently truncate trailing junk -- so
// `uniserver_autopilot 48x` ran zero phases without a word.  These helpers
// parse with std::from_chars in the same full-consume-plus-range-check style
// as the GB_JOBS environment parsing in the execution engine, and the
// positional-argument wrappers exit with a diagnostic instead of running a
// nonsense experiment.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace gb {

/// Strict integer parse: the whole string must be a base-10 integer.
/// Returns nullopt on empty input, trailing junk, or overflow.
[[nodiscard]] std::optional<long long> parse_integer(std::string_view text);

/// Strict floating-point parse: the whole string must be a finite number.
[[nodiscard]] std::optional<double> parse_number(std::string_view text);

/// Positional integer argument: argv[index] if present, else `fallback`.
/// Exits with status 2 and a diagnostic naming `name` when the argument is
/// present but not an integer in [min, max].
[[nodiscard]] long long int_arg(int argc, char** argv, int index,
                                long long fallback, std::string_view name,
                                long long min, long long max);

/// Positional floating-point argument, same contract as int_arg.
[[nodiscard]] double double_arg(int argc, char** argv, int index,
                                double fallback, std::string_view name,
                                double min, double max);

/// Find `--name value` (or `--name=value`) anywhere in argv, remove the
/// consumed elements in place (decrementing argc) and return the value, so
/// positional int_arg/double_arg indices keep working afterwards.  Every
/// occurrence is consumed; duplicates resolve last-wins with a one-line
/// stderr warning (a silently ignored repeat once hid a typoed override).
/// Exits with status 2 when the flag is present but its value is missing.
/// Returns nullopt when the flag is absent.
[[nodiscard]] std::optional<std::string> take_flag_value(
    int& argc, char** argv, std::string_view name);

} // namespace gb

// ASCII table rendering for the benchmark harnesses: every bench binary
// regenerates one of the paper's tables/figures as aligned rows on stdout.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gb {

/// Column-aligned text table.  Add a header and rows, then render.
class text_table {
public:
    explicit text_table(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);

    /// Render with a rule under the header, columns padded to fit.
    void render(std::ostream& out) const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision number formatting for table cells.
[[nodiscard]] std::string format_number(double value, int precision = 1);

/// Format as a percentage, e.g. 0.202 -> "20.2%".
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);

} // namespace gb

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/contracts.hpp"

namespace gb {

void running_stats::add(double x) {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double running_stats::mean() const {
    GB_EXPECTS(n_ > 0);
    return mean_;
}

double running_stats::variance() const {
    GB_EXPECTS(n_ >= 2);
    return m2_ / static_cast<double>(n_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::min() const {
    GB_EXPECTS(n_ > 0);
    return min_;
}

double running_stats::max() const {
    GB_EXPECTS(n_ > 0);
    return max_;
}

double percentile(std::span<const double> values, double q) {
    GB_EXPECTS(!values.empty());
    GB_EXPECTS(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
    GB_EXPECTS(!values.empty());
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
}

double quantile(std::span<const double> values, double q) {
    GB_EXPECTS(!values.empty());
    GB_EXPECTS(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    if (frac == 0.5) {
        return (sorted[lo] + sorted[hi]) / 2.0;
    }
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double p50(std::span<const double> values) { return quantile(values, 0.50); }
double p95(std::span<const double> values) { return quantile(values, 0.95); }
double p99(std::span<const double> values) { return quantile(values, 0.99); }

double mean(std::span<const double> values) {
    GB_EXPECTS(!values.empty());
    double sum = 0.0;
    for (const double v : values) {
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
    GB_EXPECTS(values.size() >= 2);
    const double m = mean(values);
    double m2 = 0.0;
    for (const double v : values) {
        m2 += (v - m) * (v - m);
    }
    return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

double normal_cdf(double z) {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double inverse_normal_cdf(double p) {
    GB_EXPECTS(p > 0.0 && p < 1.0);
    // Acklam's rational approximation in three regions.
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;

    double x = 0.0;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step against the true CDF.
    const double e = normal_cdf(x) - p;
    const double u = e * std::sqrt(2.0 * std::numbers::pi) *
                     std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

double ols_fit::predict(std::span<const double> features) const {
    GB_EXPECTS(features.size() == coefficients.size());
    double y = intercept;
    for (std::size_t i = 0; i < features.size(); ++i) {
        y += coefficients[i] * features[i];
    }
    return y;
}

namespace {

/// Solve A x = b in place by Gaussian elimination with partial pivoting.
std::vector<double> solve_linear(std::vector<std::vector<double>> a,
                                 std::vector<double> b) {
    const std::size_t n = a.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > std::abs(a[pivot][col])) {
                pivot = row;
            }
        }
        GB_ASSERT(std::abs(a[pivot][col]) > 1e-12);
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / a[col][col];
            for (std::size_t k = col; k < n; ++k) {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (std::size_t k = i + 1; k < n; ++k) {
            sum -= a[i][k] * x[k];
        }
        x[i] = sum / a[i][i];
    }
    return x;
}

} // namespace

ols_fit fit_ols(std::span<const std::vector<double>> rows,
                std::span<const double> y) {
    GB_EXPECTS(!rows.empty());
    GB_EXPECTS(rows.size() == y.size());
    const std::size_t dim = rows.front().size();
    for (const auto& row : rows) {
        GB_EXPECTS(row.size() == dim);
    }
    GB_EXPECTS(rows.size() > dim);

    // Augment with a constant column for the intercept and form the normal
    // equations (X^T X) beta = X^T y.
    const std::size_t n = dim + 1;
    std::vector<std::vector<double>> xtx(n, std::vector<double>(n, 0.0));
    std::vector<double> xty(n, 0.0);
    for (std::size_t obs = 0; obs < rows.size(); ++obs) {
        std::vector<double> x(n, 1.0);
        std::copy(rows[obs].begin(), rows[obs].end(), x.begin());
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                xtx[i][j] += x[i] * x[j];
            }
            xty[i] += x[i] * y[obs];
        }
    }
    const std::vector<double> beta = solve_linear(std::move(xtx),
                                                  std::move(xty));

    ols_fit fit;
    fit.coefficients.assign(beta.begin(), beta.begin() +
                                              static_cast<std::ptrdiff_t>(dim));
    fit.intercept = beta[dim];

    // R^2 against the mean model.
    const double y_mean = mean(y);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t obs = 0; obs < rows.size(); ++obs) {
        const double pred = fit.predict(rows[obs]);
        ss_res += (y[obs] - pred) * (y[obs] - pred);
        ss_tot += (y[obs] - y_mean) * (y[obs] - y_mean);
    }
    fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

} // namespace gb

// Small statistics toolkit used throughout the characterization pipeline:
// running summary statistics, percentiles, and ordinary least squares for the
// Vmin predictor (paper ref [11] trains a workload-dependent model on
// performance counters).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gb {

/// Incremental mean / variance / extrema (Welford's algorithm).
class running_stats {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const;
    /// Sample variance (n - 1 denominator).  Requires count() >= 2.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Percentile with linear interpolation; q in [0, 1].  Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Midpoint median of a non-empty sample: the middle element for odd counts,
/// the mean `(a + b) / 2` of the two middle elements for even counts.
/// Copies and sorts.  This exact form (not percentile(values, 0.5), which
/// rounds `a * (1-f) + b * f` differently in the last ulp) is what the perf
/// baselines publish as `wall.*` gauges, so it is pinned here and unit-tested
/// for both parities.
[[nodiscard]] double median(std::span<const double> values);

/// Quantile with linear interpolation, pinned to the midpoint form
/// `(a + b) / 2` whenever the interpolation fraction is exactly one half,
/// so `quantile(values, 0.5) == median(values)` bit-for-bit at both
/// parities (percentile() rounds that case differently in the last ulp).
/// The perf baselines publish `wall.*_p95_ms` through this.  q in [0, 1];
/// copies and sorts.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Named quantiles of the baseline schema.
[[nodiscard]] double p50(std::span<const double> values);
[[nodiscard]] double p95(std::span<const double> values);
[[nodiscard]] double p99(std::span<const double> values);

/// Arithmetic mean of a non-empty span.
[[nodiscard]] double mean(std::span<const double> values);

/// Sample standard deviation of a span with >= 2 elements.
[[nodiscard]] double stddev(std::span<const double> values);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-12 over (0, 1)).  Used to sample the deep
/// retention-time tail of DRAM cells by inverse transform.
[[nodiscard]] double inverse_normal_cdf(double p);

/// Result of an ordinary-least-squares fit y ~ X * beta.
struct ols_fit {
    std::vector<double> coefficients; ///< one per feature column
    double intercept = 0.0;
    double r_squared = 0.0;

    /// Predicted value for one feature vector.
    [[nodiscard]] double predict(std::span<const double> features) const;
};

/// Fit y = intercept + X * beta by solving the normal equations with
/// Gaussian elimination (partial pivoting).  `rows` holds one feature vector
/// per observation; all rows must have the same dimension and there must be
/// more observations than features.
[[nodiscard]] ols_fit fit_ols(std::span<const std::vector<double>> rows,
                              std::span<const double> y);

} // namespace gb

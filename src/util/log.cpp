#include "util/log.hpp"

#include <iostream>

namespace gb {

logger& logger::instance() {
    static logger the_logger;
    return the_logger;
}

void logger::set_sink(std::ostream* sink) {
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = sink;
}

void logger::write(log_level level, const std::string& message) {
    const char* tag = "?";
    switch (level) {
    case log_level::debug: tag = "DEBUG"; break;
    case log_level::info: tag = "INFO"; break;
    case log_level::warn: tag = "WARN"; break;
    case log_level::error: tag = "ERROR"; break;
    case log_level::off: return;
    }
    std::string line;
    line.reserve(message.size() + 16);
    line += '[';
    line += tag;
    line += "] ";
    line += message;
    line += '\n';
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
    out << line;
}

} // namespace gb

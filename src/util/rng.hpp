// Deterministic pseudo-random number generation for reproducible
// characterization runs.  xoshiro256** for the stream, splitmix64 for seeding
// and for deriving independent child streams from (seed, label) pairs so that
// e.g. every DRAM chip gets its own stable stream regardless of simulation
// order.
//
// Thread safety: there is no global or static generator state anywhere in
// this module -- every `rng` instance is self-contained, so distinct
// instances may be used from distinct threads freely.  A single instance is
// not synchronized; the parallel campaign engine gives every task its own
// instance seeded from (base_seed, task_index) instead of sharing one.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/contracts.hpp"

namespace gb {

/// splitmix64 step: the standard seeding/stream-splitting mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a label, for deriving named child streams.
[[nodiscard]] std::uint64_t hash_label(std::string_view label);

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type operator()();

    /// Derive an independent child stream identified by a label.  Children of
    /// the same (parent seed, label) are identical across runs.
    [[nodiscard]] rng child(std::string_view label) const;
    [[nodiscard]] rng child(std::uint64_t index) const;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform();
    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi);
    /// Uniform integer in [0, n).  Requires n > 0.
    [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);
    /// Standard normal via Box-Muller (no cached spare: keeps streams simple).
    [[nodiscard]] double normal();
    /// Normal with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev);
    /// Lognormal: exp(normal(mu, sigma)).
    [[nodiscard]] double lognormal(double mu, double sigma);
    /// Poisson-distributed count (Knuth for small lambda, normal approx above).
    [[nodiscard]] std::uint64_t poisson(double lambda);
    /// True with probability p.
    [[nodiscard]] bool bernoulli(double p);

    /// Pick a uniformly random element of a non-empty span.
    template <typename T>
    [[nodiscard]] const T& pick(std::span<const T> items) {
        GB_EXPECTS(!items.empty());
        return items[uniform_index(items.size())];
    }

private:
    std::uint64_t seed_;     // retained for child derivation
    std::uint64_t state_[4];
};

} // namespace gb

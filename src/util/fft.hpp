// Spectral analysis primitives.  Two consumers:
//   * gb_em uses the Goertzel probe to measure radiated amplitude at the PDN
//     resonance (the GA fitness in the paper's EM-guided virus generation);
//   * the jammer-detector application computes FFT spectrograms of IQ samples.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace gb {

/// In-place iterative radix-2 Cooley-Tukey FFT.  Size must be a power of two.
void fft(std::vector<std::complex<double>>& data);

/// Inverse FFT (normalized by 1/N).
void ifft(std::vector<std::complex<double>>& data);

/// Magnitude spectrum of a real signal, zero-padded to the next power of two.
/// Returns N/2 + 1 bins (DC .. Nyquist).
[[nodiscard]] std::vector<double> magnitude_spectrum(
    std::span<const double> signal);

/// Goertzel algorithm: single-bin DFT magnitude of `signal` at normalized
/// frequency `cycles_per_sample` in [0, 0.5].  O(N) per probe, exact bin-free
/// frequency, which is what an EM probe tuned to the PDN resonance sees.
[[nodiscard]] double goertzel(std::span<const double> signal,
                              double cycles_per_sample);

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

} // namespace gb

#include "util/cli.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gb {

std::optional<long long> parse_integer(std::string_view text) {
    long long parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
        return std::nullopt;
    }
    return parsed;
}

std::optional<double> parse_number(std::string_view text) {
    double parsed = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    if (ec != std::errc{} || ptr != text.data() + text.size() ||
        !std::isfinite(parsed)) {
        return std::nullopt;
    }
    return parsed;
}

namespace {

[[noreturn]] void bad_argument(std::string_view name, const char* value,
                               double min, double max) {
    std::fprintf(stderr,
                 "error: invalid %.*s '%s' (want a number in [%g, %g])\n",
                 static_cast<int>(name.size()), name.data(), value, min, max);
    std::exit(2);
}

} // namespace

long long int_arg(int argc, char** argv, int index, long long fallback,
                  std::string_view name, long long min, long long max) {
    if (index >= argc) {
        return fallback;
    }
    const auto parsed = parse_integer(argv[index]);
    if (!parsed || *parsed < min || *parsed > max) {
        bad_argument(name, argv[index], static_cast<double>(min),
                     static_cast<double>(max));
    }
    return *parsed;
}

double double_arg(int argc, char** argv, int index, double fallback,
                  std::string_view name, double min, double max) {
    if (index >= argc) {
        return fallback;
    }
    const auto parsed = parse_number(argv[index]);
    if (!parsed || *parsed < min || *parsed > max) {
        bad_argument(name, argv[index], min, max);
    }
    return *parsed;
}

std::optional<std::string> take_flag_value(int& argc, char** argv,
                                           std::string_view name) {
    std::optional<std::string> value;
    int occurrences = 0;
    int i = 1;
    while (i < argc) {
        const std::string_view arg(argv[i]);
        if (arg == name) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %.*s needs a value\n",
                             static_cast<int>(name.size()), name.data());
                std::exit(2);
            }
            value = argv[i + 1];
            ++occurrences;
            for (int j = i; j + 2 < argc; ++j) {
                argv[j] = argv[j + 2];
            }
            argc -= 2;
            continue; // argv[i] is now the next unseen argument
        }
        if (arg.size() > name.size() &&
            arg.substr(0, name.size()) == name && arg[name.size()] == '=') {
            value = arg.substr(name.size() + 1);
            ++occurrences;
            for (int j = i; j + 1 < argc; ++j) {
                argv[j] = argv[j + 1];
            }
            argc -= 1;
            continue;
        }
        ++i;
    }
    if (occurrences > 1) {
        std::fprintf(stderr,
                     "warning: %.*s given %d times, using last value '%s'\n",
                     static_cast<int>(name.size()), name.data(), occurrences,
                     value->c_str());
    }
    return value;
}

} // namespace gb

#include "util/cli.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gb {

std::optional<long long> parse_integer(std::string_view text) {
    long long parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
        return std::nullopt;
    }
    return parsed;
}

std::optional<double> parse_number(std::string_view text) {
    double parsed = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    if (ec != std::errc{} || ptr != text.data() + text.size() ||
        !std::isfinite(parsed)) {
        return std::nullopt;
    }
    return parsed;
}

namespace {

[[noreturn]] void bad_argument(std::string_view name, const char* value,
                               double min, double max) {
    std::fprintf(stderr,
                 "error: invalid %.*s '%s' (want a number in [%g, %g])\n",
                 static_cast<int>(name.size()), name.data(), value, min, max);
    std::exit(2);
}

} // namespace

long long int_arg(int argc, char** argv, int index, long long fallback,
                  std::string_view name, long long min, long long max) {
    if (index >= argc) {
        return fallback;
    }
    const auto parsed = parse_integer(argv[index]);
    if (!parsed || *parsed < min || *parsed > max) {
        bad_argument(name, argv[index], static_cast<double>(min),
                     static_cast<double>(max));
    }
    return *parsed;
}

double double_arg(int argc, char** argv, int index, double fallback,
                  std::string_view name, double min, double max) {
    if (index >= argc) {
        return fallback;
    }
    const auto parsed = parse_number(argv[index]);
    if (!parsed || *parsed < min || *parsed > max) {
        bad_argument(name, argv[index], min, max);
    }
    return *parsed;
}

} // namespace gb

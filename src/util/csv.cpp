#include "util/csv.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace gb {

std::string csv_escape(const std::string& field) {
    const bool needs_quoting =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting) {
        return field;
    }
    std::string quoted = "\"";
    for (const char c : field) {
        if (c == '"') {
            quoted += "\"\"";
        } else {
            quoted += c;
        }
    }
    quoted += '"';
    return quoted;
}

csv_writer::csv_writer(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
    GB_EXPECTS(!header.empty());
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i > 0) {
            out_ << ',';
        }
        out_ << csv_escape(header[i]);
    }
    out_ << '\n';
}

void csv_writer::write_row(const std::vector<std::string>& fields) {
    GB_EXPECTS(fields.size() == columns_);
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) {
            out_ << ',';
        }
        out_ << csv_escape(fields[i]);
    }
    out_ << '\n';
    ++rows_;
}

std::string csv_number(double value, int precision) {
    GB_EXPECTS(precision >= 0 && precision <= 17);
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
    return buffer;
}

} // namespace gb

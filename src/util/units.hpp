// Strong unit types for the physical quantities that flow through the
// simulator.  The characterization literature mixes millivolts, megahertz,
// milliseconds and degrees Celsius freely; strong types make it impossible to
// pass a refresh period where a voltage is expected (Core Guidelines I.4).
//
// Each quantity is a thin wrapper over double with arithmetic within the same
// dimension and scalar scaling.  Conversions between scales of the same
// dimension (e.g. mV <-> V) are explicit member functions.
#pragma once

#include <compare>
#include <cstdint>

namespace gb {

/// CRTP base providing arithmetic and comparison for a tagged scalar quantity.
template <typename Derived>
struct quantity {
    double value = 0.0;

    constexpr quantity() = default;
    constexpr explicit quantity(double v) : value(v) {}

    friend constexpr Derived operator+(Derived a, Derived b) {
        return Derived{a.value + b.value};
    }
    friend constexpr Derived operator-(Derived a, Derived b) {
        return Derived{a.value - b.value};
    }
    friend constexpr Derived operator*(Derived a, double s) {
        return Derived{a.value * s};
    }
    friend constexpr Derived operator*(double s, Derived a) {
        return Derived{a.value * s};
    }
    friend constexpr Derived operator/(Derived a, double s) {
        return Derived{a.value / s};
    }
    /// Ratio of two same-dimension quantities is dimensionless.
    friend constexpr double operator/(Derived a, Derived b) {
        return a.value / b.value;
    }
    friend constexpr auto operator<=>(Derived a, Derived b) {
        return a.value <=> b.value;
    }
    friend constexpr bool operator==(Derived a, Derived b) {
        return a.value == b.value;
    }
    constexpr Derived& operator+=(Derived b) {
        value += b.value;
        return static_cast<Derived&>(*this);
    }
    constexpr Derived& operator-=(Derived b) {
        value -= b.value;
        return static_cast<Derived&>(*this);
    }
};

/// Supply voltage in millivolts (the unit the paper reports Vmin in).
struct millivolts : quantity<millivolts> {
    using quantity::quantity;
    [[nodiscard]] constexpr double volts() const { return value / 1000.0; }
    static constexpr millivolts from_volts(double v) {
        return millivolts{v * 1000.0};
    }
};

/// Clock frequency in megahertz.
struct megahertz : quantity<megahertz> {
    using quantity::quantity;
    [[nodiscard]] constexpr double hertz() const { return value * 1.0e6; }
    [[nodiscard]] constexpr double gigahertz() const { return value / 1000.0; }
    static constexpr megahertz from_gigahertz(double g) {
        return megahertz{g * 1000.0};
    }
};

/// Time in milliseconds (refresh periods, retention times).
struct milliseconds : quantity<milliseconds> {
    using quantity::quantity;
    [[nodiscard]] constexpr double seconds() const { return value / 1000.0; }
    static constexpr milliseconds from_seconds(double s) {
        return milliseconds{s * 1000.0};
    }
};

/// Time in nanoseconds (cycle-level simulation).
struct nanoseconds : quantity<nanoseconds> {
    using quantity::quantity;
    [[nodiscard]] constexpr double seconds() const { return value * 1.0e-9; }
    [[nodiscard]] constexpr milliseconds to_milliseconds() const {
        return milliseconds{value * 1.0e-6};
    }
};

/// Temperature in degrees Celsius.
struct celsius : quantity<celsius> {
    using quantity::quantity;
    [[nodiscard]] constexpr double kelvin() const { return value + 273.15; }
};

/// Power in watts.
struct watts : quantity<watts> {
    using quantity::quantity;
    [[nodiscard]] constexpr double milliwatts() const { return value * 1000.0; }
};

/// Current in amperes.
struct amperes : quantity<amperes> {
    using quantity::quantity;
};

/// Energy in joules.
struct joules : quantity<joules> {
    using quantity::quantity;
};

/// P = V * I with unit-correct types.
constexpr watts operator*(millivolts v, amperes i) {
    return watts{v.volts() * i.value};
}
constexpr watts operator*(amperes i, millivolts v) { return v * i; }

} // namespace gb

#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace gb {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
    // FNV-1a, then a splitmix finalizer for better avalanche.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : label) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    std::uint64_t s = h;
    return splitmix64(s);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

} // namespace

rng::rng(std::uint64_t seed) : seed_(seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

rng::result_type rng::operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

rng rng::child(std::string_view label) const {
    return rng(seed_ ^ hash_label(label));
}

rng rng::child(std::uint64_t index) const {
    std::uint64_t s = seed_ + 0x632be59bd9b4e019ULL * (index + 1);
    return rng(splitmix64(s));
}

double rng::uniform() {
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
    GB_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t rng::uniform_index(std::uint64_t n) {
    GB_EXPECTS(n > 0);
    // Lemire's multiply-shift rejection method for unbiased bounded integers.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * n;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double rng::normal() {
    // Box-Muller; reject u1 == 0 to avoid log(0).
    double u1 = uniform();
    while (u1 <= 0.0) {
        u1 = uniform();
    }
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

double rng::normal(double mean, double stddev) {
    GB_EXPECTS(stddev >= 0.0);
    return mean + stddev * normal();
}

double rng::lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
}

std::uint64_t rng::poisson(double lambda) {
    GB_EXPECTS(lambda >= 0.0);
    if (lambda == 0.0) {
        return 0;
    }
    if (lambda < 30.0) {
        // Knuth's product-of-uniforms method.
        const double limit = std::exp(-lambda);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation with continuity correction for large lambda.
    const double x = normal(lambda, std::sqrt(lambda));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

bool rng::bernoulli(double p) {
    GB_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
}

} // namespace gb

// End-to-end Jammer-detector deployment (the paper's Section IV.D
// showcase): synthesize a contested spectrum, run the detector, verify QoS,
// then execute the whole thing on the simulated server at both the nominal
// and the revealed safe operating point and compare power -- and finally
// keep it running at the safe point under the operating-point supervisor
// through an injected fault burst, reporting savings net of the resilience
// overhead.
//
//   $ ./jammer_detector [windows] [events] [epochs] [--trace <path>]
//                       [--metrics <path>] [--status <path>]
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>

#include "core/savings.hpp"
#include "core/supervisor.hpp"
#include "harness/framework.hpp"
#include "harness/status.hpp"
#include "harness/trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/dram_profiles.hpp"
#include "workloads/jammer.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const std::optional<std::string> trace_path =
        take_flag_value(argc, argv, "--trace");
    const std::optional<std::string> metrics_path =
        take_flag_value(argc, argv, "--metrics");
    const std::optional<std::string> status_path =
        take_flag_value(argc, argv, "--status");
    const int windows =
        static_cast<int>(int_arg(argc, argv, 1, 600, "windows", 1, 1000000));
    const int events =
        static_cast<int>(int_arg(argc, argv, 2, 8, "events", 0, 10000));
    const int epochs =
        static_cast<int>(int_arg(argc, argv, 3, 96, "epochs", 1, 100000));

    // --- The application itself: spectrum monitoring. ---
    const jammer_detector detector{jammer_config{}};
    rng event_rng(5);
    const std::vector<jam_event> injected =
        make_random_jam_events(events, windows, event_rng);
    rng iq_rng(6);
    const detection_report report = detector.run(windows, injected, iq_rng);

    std::cout << "spectrum watch: " << windows << " windows ("
              << windows * detector.config().window_duration_s() * 1e3
              << " ms of air time), " << events << " jam events injected\n"
              << "detected " << report.events_detected << '/'
              << report.events_injected << " (mean latency "
              << report.mean_detection_latency_windows
              << " windows), false-alarm rate "
              << format_percent(report.false_alarm_rate(), 2) << '\n';

    // --- Real-time budget: 4 instances share the 8 cores. ---
    std::cout << "QoS (4 instances / 8 cores): 2.4 GHz "
              << (detector.meets_qos(megahertz{2400.0}, 4, 8) ? "met"
                                                              : "missed")
              << ", 1.2 GHz "
              << (detector.meets_qos(megahertz{1200.0}, 4, 8) ? "met"
                                                              : "missed")
              << "\n\n";

    // --- Deploy on the server at nominal vs safe operating points. ---
    xgene2_server server(make_ttt_chip(), 2018);
    characterization_framework framework(server.cpu(), 7);
    workload_snapshot snapshot;
    const execution_profile& profile =
        framework.profile_of(jammer_cpu_kernel(), nominal_core_frequency);
    for (int c = 0; c < 8; ++c) {
        snapshot.assignments.push_back({c, &profile,
                                        nominal_core_frequency});
    }
    snapshot.dram_bandwidth_gbps = jammer_dram_workload().bandwidth_gbps;

    operating_point safe = operating_point::nominal();
    safe.pmd_voltage = millivolts{930.0};
    safe.soc_voltage = millivolts{920.0};
    safe.refresh_period = milliseconds{2283.0};
    const server_savings savings = compare_operating_points(
        server, snapshot, operating_point::nominal(), safe);

    text_table table({"domain", "nominal W", "safe W", "saving"});
    table.add_row({"PMD", format_number(savings.pmd.nominal.value, 1),
                   format_number(savings.pmd.tuned.value, 1),
                   format_percent(savings.pmd.saving_fraction(), 1)});
    table.add_row({"SoC", format_number(savings.soc.nominal.value, 1),
                   format_number(savings.soc.tuned.value, 1),
                   format_percent(savings.soc.saving_fraction(), 1)});
    table.add_row({"DRAM", format_number(savings.dram.nominal.value, 1),
                   format_number(savings.dram.tuned.value, 1),
                   format_percent(savings.dram.saving_fraction(), 1)});
    table.add_row({"TOTAL", format_number(savings.total.nominal.value, 1),
                   format_number(savings.total.tuned.value, 1),
                   format_percent(savings.total.saving_fraction(), 1)});
    table.render(std::cout);

    // --- Keep it running: the safe point under the supervisor. ---
    // A deterministic fault burst (SDC, DRAM CE bursts, hangs at the
    // exploited point) lands mid-run; the supervisor trips its breaker,
    // degrades in stages, quarantines the point and recovers, with every
    // epoch accounted and the resilience cost charged against the savings.
    operating_point_supervisor supervisor;
    tracer trace;
    metrics_registry metrics;
    supervisor.set_trace(trace_path ? &trace : nullptr,
                         metrics_path ? &metrics : nullptr);
    const epoch_fault_plan faults(epoch_fault_config{
        /*seed=*/41, /*sdc_rate=*/0.4, /*ce_burst_rate=*/0.6,
        /*hang_rate=*/0.2, /*ce_burst_words=*/16});
    const int burst_begin = epochs / 4;
    const int burst_end = burst_begin + 8;

    rng run_rng(8);
    int disruptions = 0;
    double supervised_w = 0.0;
    const auto wall_start = std::chrono::steady_clock::now();
    campaign_status heartbeat;
    heartbeat.campaign = "jammer_detector";
    heartbeat.tasks_total = static_cast<std::uint64_t>(epochs);
    heartbeat.workers = 1;
    for (int i = 0; i < epochs; ++i) {
        if (status_path) {
            heartbeat.running = true;
            heartbeat.tasks_done = static_cast<std::uint64_t>(i);
            heartbeat.worker_task = {static_cast<std::int64_t>(i)};
            heartbeat.replayed = supervisor.telemetry().replayed;
            heartbeat.aborted_rig = supervisor.telemetry().aborted;
            heartbeat.wall_elapsed_s =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            publish_status(*status_path, heartbeat);
        }
        epoch_request request;
        request.pmd = 0;
        request.workload_class = "jammer";
        request.desired_voltage = safe.pmd_voltage;
        request.desired_refresh = safe.refresh_period;
        request.predicted_sdc = server.cpu().sdc_probability(
            snapshot.assignments, safe.pmd_voltage,
            static_cast<std::uint64_t>(i));

        const bool burst = i >= burst_begin && i < burst_end;
        const auto execute = [&](const epoch_plan& plan) {
            operating_point staged = safe;
            staged.pmd_voltage = plan.voltage;
            staged.refresh_period = plan.refresh;
            server.apply(staged);
            epoch_result result;
            result.outcome =
                server.execute(snapshot, static_cast<std::uint64_t>(i),
                               run_rng)
                    .outcome;
            result.epoch_power_w =
                server.read_sensors(snapshot).total_power().value;
            result.unsupervised_power_w = savings.total.tuned.value;
            if (burst && plan.stage == 0) {
                faults.apply(static_cast<std::uint64_t>(i), result);
            }
            return result;
        };
        const supervised_epoch epoch =
            run_supervised_epoch(supervisor, request, execute);
        disruptions += is_disruption(epoch.result.outcome) ? 1 : 0;
        supervised_w +=
            epoch.result.epoch_power_w + epoch.lost_power_w +
            (epoch.plan.sentinel
                 ? supervisor.config().sentinel_overhead *
                       epoch.result.epoch_power_w
                 : 0.0);
    }
    server.apply(safe);

    const health_telemetry& health = supervisor.telemetry();
    if (status_path) {
        // Final snapshot: a pure function of the supervised run's content
        // (deterministic at any GB_JOBS), no `live` object.
        campaign_status final_status;
        final_status.campaign = "jammer_detector";
        final_status.tasks_total = static_cast<std::uint64_t>(epochs);
        final_status.tasks_done = health.epochs;
        final_status.replayed = health.replayed;
        final_status.aborted_rig = health.aborted;
        publish_status(*status_path, final_status);
    }
    const double overhead_w_epochs = health.sentinel_overhead_w_epochs +
                                     health.degradation_overhead_w_epochs;
    const supervised_savings net = net_of_resilience(
        domain_savings{savings.total.nominal,
                       watts{(supervised_w - overhead_w_epochs) / epochs}},
        watts{overhead_w_epochs / epochs});

    std::cout << "\nsupervised deployment (" << epochs << " epochs): "
              << disruptions << " disrupted, " << health.breaker_trips
              << " breaker trips, " << health.watchdog_aborts
              << " watchdog aborts, " << health.detected_sdc << "+"
              << health.undetected_sdc << " SDC detected+missed\n"
              << "dispositions: " << health.committed << " committed, "
              << health.sentinel_epochs << " sentinel, " << health.replayed
              << " replayed, " << health.aborted << " aborted, "
              << health.quarantined_epochs << " quarantined\n"
              << "net saving at the supervised safe point: "
              << format_percent(net.net_saving_fraction(), 1)
              << " (resilience overhead "
              << format_number(net.resilience_overhead.value, 2)
              << " W), final state " << to_string(supervisor.state())
              << '\n';
    if (trace_path) {
        std::ofstream out(*trace_path);
        write_chrome_trace(out, trace);
        std::cerr << "trace written to " << *trace_path << " ("
                  << trace.size() << " events)\n";
    }
    if (metrics_path) {
        health.publish(metrics, 0, health.epochs);
        std::ofstream out(*metrics_path);
        write_metrics_json(out, metrics);
        std::cerr << "metrics written to " << *metrics_path << '\n';
    }
    if (!health.balanced()) {
        std::cerr << "FAIL: " << health.epochs - health.accounted()
                  << " unaccounted epochs\n";
        return 1;
    }
    if (epochs >= 96 && health.breaker_trips == 0) {
        std::cerr << "FAIL: the fault burst should trip >=1 breaker\n";
        return 1;
    }
    return 0;
}

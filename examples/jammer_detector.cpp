// End-to-end Jammer-detector deployment (the paper's Section IV.D
// showcase): synthesize a contested spectrum, run the detector, verify QoS,
// then execute the whole thing on the simulated server at both the nominal
// and the revealed safe operating point and compare power.
//
//   $ ./jammer_detector [windows] [events]
#include <cstdlib>
#include <iostream>

#include "core/savings.hpp"
#include "harness/framework.hpp"
#include "util/table.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/dram_profiles.hpp"
#include "workloads/jammer.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const int windows = argc > 1 ? std::atoi(argv[1]) : 600;
    const int events = argc > 2 ? std::atoi(argv[2]) : 8;

    // --- The application itself: spectrum monitoring. ---
    const jammer_detector detector{jammer_config{}};
    rng event_rng(5);
    const std::vector<jam_event> injected =
        make_random_jam_events(events, windows, event_rng);
    rng iq_rng(6);
    const detection_report report = detector.run(windows, injected, iq_rng);

    std::cout << "spectrum watch: " << windows << " windows ("
              << windows * detector.config().window_duration_s() * 1e3
              << " ms of air time), " << events << " jam events injected\n"
              << "detected " << report.events_detected << '/'
              << report.events_injected << " (mean latency "
              << report.mean_detection_latency_windows
              << " windows), false-alarm rate "
              << format_percent(report.false_alarm_rate(), 2) << '\n';

    // --- Real-time budget: 4 instances share the 8 cores. ---
    std::cout << "QoS (4 instances / 8 cores): 2.4 GHz "
              << (detector.meets_qos(megahertz{2400.0}, 4, 8) ? "met"
                                                              : "missed")
              << ", 1.2 GHz "
              << (detector.meets_qos(megahertz{1200.0}, 4, 8) ? "met"
                                                              : "missed")
              << "\n\n";

    // --- Deploy on the server at nominal vs safe operating points. ---
    xgene2_server server(make_ttt_chip(), 2018);
    characterization_framework framework(server.cpu(), 7);
    workload_snapshot snapshot;
    const execution_profile& profile =
        framework.profile_of(jammer_cpu_kernel(), nominal_core_frequency);
    for (int c = 0; c < 8; ++c) {
        snapshot.assignments.push_back({c, &profile,
                                        nominal_core_frequency});
    }
    snapshot.dram_bandwidth_gbps = jammer_dram_workload().bandwidth_gbps;

    operating_point safe = operating_point::nominal();
    safe.pmd_voltage = millivolts{930.0};
    safe.soc_voltage = millivolts{920.0};
    safe.refresh_period = milliseconds{2283.0};
    const server_savings savings = compare_operating_points(
        server, snapshot, operating_point::nominal(), safe);

    text_table table({"domain", "nominal W", "safe W", "saving"});
    table.add_row({"PMD", format_number(savings.pmd.nominal.value, 1),
                   format_number(savings.pmd.tuned.value, 1),
                   format_percent(savings.pmd.saving_fraction(), 1)});
    table.add_row({"SoC", format_number(savings.soc.nominal.value, 1),
                   format_number(savings.soc.tuned.value, 1),
                   format_percent(savings.soc.saving_fraction(), 1)});
    table.add_row({"DRAM", format_number(savings.dram.nominal.value, 1),
                   format_number(savings.dram.tuned.value, 1),
                   format_percent(savings.dram.saving_fraction(), 1)});
    table.add_row({"TOTAL", format_number(savings.total.nominal.value, 1),
                   format_number(savings.total.tuned.value, 1),
                   format_percent(savings.total.saving_fraction(), 1)});
    table.render(std::cout);

    // Prove the safe point is safe: repeated execution, no disruption.
    rng run_rng(8);
    int disruptions = 0;
    for (int i = 0; i < 50; ++i) {
        disruptions += is_disruption(
                           server.execute(snapshot,
                                          static_cast<std::uint64_t>(i),
                                          run_rng)
                               .outcome)
                           ? 1
                           : 0;
    }
    std::cout << "\ndisruptions across 50 runs at the safe point: "
              << disruptions << '\n';
    return 0;
}

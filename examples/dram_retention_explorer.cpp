// DRAM retention exploration under the thermal testbed: heat the DIMMs to a
// target temperature with the PID rig, walk a ladder of refresh periods, and
// report weak-cell exposure, ECC containment and the resulting safe period
// (the Section IV.C flow behind Table I and Fig 8).
//
//   $ ./dram_retention_explorer [temperature_c] [max_relaxation]
//     defaults: 60 C, 35x
#include <iostream>

#include "core/explorer.hpp"
#include "dram/power.hpp"
#include "thermal/testbed.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/dram_profiles.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const double target_c =
        double_arg(argc, argv, 1, 60.0, "temperature_c", 20.0, 90.0);
    const double max_relaxation =
        double_arg(argc, argv, 2, 35.0, "max_relaxation", 1.0, 64.0);
    const milliseconds max_period{64.0 * max_relaxation};

    memory_system memory(
        xgene2_memory_geometry(), retention_model{}, /*seed=*/2018,
        study_limits{celsius{target_c + 2.0}, max_period});

    // Regulate the DIMMs, then lock their temperatures into the model.
    thermal_testbed testbed(memory.geometry().dimms, thermal_plant_config{},
                            /*seed=*/7);
    testbed.set_all_targets(celsius{target_c});
    testbed.run(/*duration_s=*/3600.0, /*control_period_s=*/1.0,
                /*settle_s=*/900.0);
    testbed.apply_to(memory);
    std::cout << "DIMMs regulated to " << target_c << " C (max deviation "
              << format_number(testbed.max_deviation_c(0), 2) << " C)\n\n";

    // Walk the refresh ladder.
    std::vector<milliseconds> ladder;
    for (double factor = 1.0; factor <= max_relaxation; factor *= 2.0) {
        ladder.push_back(milliseconds{64.0 * factor});
    }
    ladder.push_back(max_period);
    const refresh_exploration exploration =
        guardband_explorer::explore_refresh(memory, ladder);

    text_table table({"TREFP ms", "relaxation", "worst failed bits",
                      "ECC contains"});
    for (const refresh_step& step : exploration.steps) {
        table.add_row({format_number(step.period.value, 0),
                       format_number(step.period.value / 64.0, 1) + "x",
                       std::to_string(step.worst_scan.failed_cells),
                       step.fully_corrected ? "yes" : "NO"});
    }
    table.render(std::cout);
    std::cout << "\nmax safe refresh period: "
              << exploration.max_safe_period.value << " ms ("
              << format_number(exploration.max_safe_period.value / 64.0, 1)
              << "x nominal)\n";

    // Price it for the Rodinia set.
    const dram_power_model power;
    std::cout << "\nDRAM power savings at the safe period:\n";
    for (const dram_workload& workload : rodinia_suite()) {
        std::cout << "  " << workload.name << ": "
                  << format_percent(power.refresh_relaxation_saving(
                                        exploration.max_safe_period,
                                        workload.bandwidth_gbps),
                                    1)
                  << '\n';
    }
    return 0;
}

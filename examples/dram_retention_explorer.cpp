// DRAM retention exploration under the thermal testbed: heat the DIMMs to a
// target temperature with the PID rig, walk a ladder of refresh periods, and
// report weak-cell exposure, ECC containment and the resulting safe period
// (the Section IV.C flow behind Table I and Fig 8).
//
//   $ ./dram_retention_explorer [temperature_c] [max_relaxation] [options]
//     defaults: 60 C, 35x
//     --trace <path>    write a deterministic Chrome trace_event JSON of
//                       the refresh ladder (one task span per step)
//     --metrics <path>  write the exploration counters/gauges as flat JSON
//     --status <path>   live heartbeat around the regulation/ladder phases;
//                       the final snapshot is deterministic
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/explorer.hpp"
#include "dram/power.hpp"
#include "harness/status.hpp"
#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"
#include "thermal/testbed.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/dram_profiles.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const std::optional<std::string> trace_path =
        take_flag_value(argc, argv, "--trace");
    const std::optional<std::string> metrics_path =
        take_flag_value(argc, argv, "--metrics");
    const std::optional<std::string> status_path =
        take_flag_value(argc, argv, "--status");
    const double target_c =
        double_arg(argc, argv, 1, 60.0, "temperature_c", 20.0, 90.0);
    const double max_relaxation =
        double_arg(argc, argv, 2, 35.0, "max_relaxation", 1.0, 64.0);
    const milliseconds max_period{64.0 * max_relaxation};

    // Heartbeat: the refresh ladder's steps are the exploration's tasks.
    const auto wall_start = std::chrono::steady_clock::now();
    campaign_status heartbeat;
    heartbeat.campaign = "dram_retention";
    heartbeat.workers = 1;
    const auto beat = [&](std::uint64_t total, std::uint64_t done) {
        if (!status_path) {
            return;
        }
        heartbeat.running = true;
        heartbeat.tasks_total = total;
        heartbeat.tasks_done = done;
        heartbeat.worker_task = {static_cast<std::int64_t>(done)};
        heartbeat.wall_elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall_start)
                .count();
        publish_status(*status_path, heartbeat);
    };
    beat(0, 0);

    memory_system memory(
        xgene2_memory_geometry(), retention_model{}, /*seed=*/2018,
        study_limits{celsius{target_c + 2.0}, max_period});

    // Regulate the DIMMs, then lock their temperatures into the model.
    thermal_testbed testbed(memory.geometry().dimms, thermal_plant_config{},
                            /*seed=*/7);
    testbed.set_all_targets(celsius{target_c});
    testbed.run(/*duration_s=*/3600.0, /*control_period_s=*/1.0,
                /*settle_s=*/900.0);
    testbed.apply_to(memory);
    std::cout << "DIMMs regulated to " << target_c << " C (max deviation "
              << format_number(testbed.max_deviation_c(0), 2) << " C)\n\n";

    // Walk the refresh ladder.
    std::vector<milliseconds> ladder;
    for (double factor = 1.0; factor <= max_relaxation; factor *= 2.0) {
        ladder.push_back(milliseconds{64.0 * factor});
    }
    ladder.push_back(max_period);
    beat(ladder.size(), 0);
    const refresh_exploration exploration =
        guardband_explorer::explore_refresh(memory, ladder);

    // Observability: the ladder as one campaign span owning one task span
    // per refresh step, ticks derived from content (failed cells), so the
    // artifacts feed the same gbreport analyses as the engine's traces.
    tracer trace;
    metrics_registry metrics;
    const std::uint32_t phase = trace.allocate_phase();
    const counter_handle m_steps = metrics.counter("dram.steps");
    const counter_handle m_cells = metrics.counter("dram.failed_cells");
    const counter_handle m_uncontained =
        metrics.counter("dram.uncontained_steps");
    const gauge_handle m_safe = metrics.gauge("dram.max_safe_period_ms");
    std::uint64_t ladder_ticks = 0;

    text_table table({"TREFP ms", "relaxation", "worst failed bits",
                      "ECC contains"});
    std::uint64_t step_index = 0;
    for (const refresh_step& step : exploration.steps) {
        table.add_row({format_number(step.period.value, 0),
                       format_number(step.period.value / 64.0, 1) + "x",
                       std::to_string(step.worst_scan.failed_cells),
                       step.fully_corrected ? "yes" : "NO"});
        trace_span span;
        span.name = "task";
        span.category = "engine";
        span.at = trace_point{track_rig, phase, step_index, 0};
        span.duration_ticks = 100 + step.worst_scan.failed_cells;
        span.args.emplace_back("index", std::to_string(step_index));
        trace.record(0, std::move(span));
        ladder_ticks += 100 + step.worst_scan.failed_cells;
        metrics.add(0, m_steps);
        metrics.add(0, m_cells, step.worst_scan.failed_cells);
        if (!step.fully_corrected) {
            metrics.add(0, m_uncontained);
        }
        ++step_index;
    }
    {
        trace_span span;
        span.name = "dram_retention";
        span.category = "campaign";
        span.at = trace_point{track_campaign, phase, 0, 0};
        span.duration_ticks = ladder_ticks;
        span.args.emplace_back("tasks", std::to_string(step_index));
        span.args.emplace_back("first_index", "0");
        span.args.emplace_back("faults", "0");
        trace.record(0, std::move(span));
    }
    metrics.set(0, m_safe, /*order=*/0, exploration.max_safe_period.value);
    table.render(std::cout);
    std::cout << "\nmax safe refresh period: "
              << exploration.max_safe_period.value << " ms ("
              << format_number(exploration.max_safe_period.value / 64.0, 1)
              << "x nominal)\n";

    // Price it for the Rodinia set.
    const dram_power_model power;
    std::cout << "\nDRAM power savings at the safe period:\n";
    for (const dram_workload& workload : rodinia_suite()) {
        std::cout << "  " << workload.name << ": "
                  << format_percent(power.refresh_relaxation_saving(
                                        exploration.max_safe_period,
                                        workload.bandwidth_gbps),
                                    1)
                  << '\n';
    }
    if (status_path) {
        // Final snapshot: pure function of the ladder's content, no `live`
        // object.
        campaign_status final_status;
        final_status.campaign = "dram_retention";
        final_status.tasks_total = step_index;
        final_status.tasks_done = step_index;
        publish_status(*status_path, final_status);
    }
    if (trace_path) {
        std::ofstream out(*trace_path);
        write_chrome_trace(out, trace);
        std::cerr << "trace written to " << *trace_path << " ("
                  << trace.size() << " events)\n";
    }
    if (metrics_path) {
        std::ofstream out(*metrics_path);
        write_metrics_json(out, metrics);
        std::cerr << "metrics written to " << *metrics_path << '\n';
    }
    return 0;
}

// Virus laboratory: evolve a dI/dt virus with the GA against the EM probe,
// inspect what it learned, and measure the margin it leaves on each of the
// three characterized chips (the Section III.C / Fig 6-7 methodology).
//
//   $ ./virus_lab [generations] [options]
//     --trace <path>    deterministic Chrome trace (GA + per-chip margin
//                       tasks under one campaign span)
//     --metrics <path>  evolution counters/gauges as flat JSON
//     --status <path>   live heartbeat (GA, then one tick per chip margin);
//                       the final snapshot is deterministic
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "chip/chip_model.hpp"
#include "em/em_probe.hpp"
#include "ga/virus_search.hpp"
#include "harness/status.hpp"
#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const std::optional<std::string> trace_path =
        take_flag_value(argc, argv, "--trace");
    const std::optional<std::string> metrics_path =
        take_flag_value(argc, argv, "--metrics");
    const std::optional<std::string> status_path =
        take_flag_value(argc, argv, "--status");
    const auto generations = static_cast<std::size_t>(
        int_arg(argc, argv, 1, 150, "generations", 1, 100000));

    // Heartbeat: the GA plus the three chip-margin analyses are the lab's
    // four tasks.
    const auto wall_start = std::chrono::steady_clock::now();
    campaign_status heartbeat;
    heartbeat.campaign = "virus_lab";
    heartbeat.tasks_total = 4;
    heartbeat.workers = 1;
    const auto beat = [&](std::uint64_t done) {
        if (!status_path) {
            return;
        }
        heartbeat.running = true;
        heartbeat.tasks_done = done;
        heartbeat.worker_task = {static_cast<std::int64_t>(done)};
        heartbeat.wall_elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall_start)
                .count();
        publish_status(*status_path, heartbeat);
    };
    beat(0);

    const pipeline_model pipeline(nominal_core_frequency);
    const pdn_parameters pdn = make_xgene2_pdn();
    std::cout << "PDN resonance: " << pdn.resonant_frequency_hz() / 1.0e6
              << " MHz = "
              << pdn_model(pdn, nominal_pmd_voltage, nominal_core_frequency)
                     .resonance_period_cycles()
              << " cycles at 2.4 GHz\n";

    ga_config config;
    config.population_size = 96;
    config.generations = generations;
    rng ga_rng(7);
    const virus_search_result result =
        evolve_didt_virus(pipeline, pdn, config, ga_rng);

    const em_probe probe(pdn.resonant_frequency_hz(), pipeline.clock());
    const double ideal = probe.amplitude(
        pipeline.execute(make_square_wave_kernel(24, 24), 4096)
            .current_trace);
    std::cout << "evolved EM amplitude " << result.em_amplitude << " ("
              << format_percent(result.em_amplitude / ideal, 0)
              << " of the square-wave ideal) after " << generations
              << " generations\n\nevolved loop:";
    opcode last = result.virus.body.front();
    int run = 0;
    for (const opcode op : result.virus.body) {
        if (op == last) {
            ++run;
            continue;
        }
        std::cout << ' ' << traits_of(last).name << 'x' << run;
        last = op;
        run = 1;
    }
    std::cout << ' ' << traits_of(last).name << 'x' << run << "\n\n";

    // Observability: the GA plus each chip's margin analysis as task spans
    // under one campaign span, ticks derived from content (generation
    // count, revealed Vmin), never from wall time.
    tracer trace;
    metrics_registry metrics;
    const std::uint32_t phase = trace.allocate_phase();
    const counter_handle m_generations = metrics.counter("virus.generations");
    const gauge_handle m_amplitude = metrics.gauge("virus.em_amplitude");
    metrics.add(0, m_generations, generations);
    metrics.set(0, m_amplitude, /*order=*/0, result.em_amplitude);
    std::uint64_t lab_ticks = 100 + generations;
    {
        trace_span span;
        span.name = "task";
        span.category = "engine";
        span.at = trace_point{track_rig, phase, 0, 0};
        span.duration_ticks = 100 + generations;
        span.args.emplace_back("index", "0");
        trace.record(0, std::move(span));
    }

    // Margins per chip, one virus instance per core.
    const execution_profile profile = pipeline.execute(result.virus, 8192);
    std::vector<core_assignment> all;
    for (int c = 0; c < cores_per_chip; ++c) {
        all.push_back({c, &profile, nominal_core_frequency});
    }
    text_table table({"chip", "virus Vmin mV", "margin to nominal mV"});
    const std::uint64_t launch = hash_label("ga_didt_virus");
    std::uint64_t task_index = 1;
    for (const chip_config& cfg :
         {make_ttt_chip(), make_tff_chip(), make_tss_chip()}) {
        beat(task_index);
        const chip_model chip(cfg, make_xgene2_pdn());
        const vmin_analysis analysis = chip.analyze(all, launch);
        table.add_row({cfg.name, format_number(analysis.vmin.value, 0),
                       format_number(
                           nominal_pmd_voltage.value - analysis.vmin.value,
                           0)});
        const auto vmin_ticks =
            static_cast<std::uint64_t>(std::llround(analysis.vmin.value));
        trace_span span;
        span.name = "task";
        span.category = "engine";
        span.at = trace_point{track_rig, phase, task_index, 0};
        span.duration_ticks = 100 + vmin_ticks;
        span.args.emplace_back("index", std::to_string(task_index));
        trace.record(0, std::move(span));
        lab_ticks += 100 + vmin_ticks;
        const gauge_handle m_vmin =
            metrics.gauge("virus.vmin_mv." + cfg.name);
        metrics.set(0, m_vmin, /*order=*/0, analysis.vmin.value);
        ++task_index;
    }
    table.render(std::cout);
    {
        trace_span span;
        span.name = "virus_lab";
        span.category = "campaign";
        span.at = trace_point{track_campaign, phase, 0, 0};
        span.duration_ticks = lab_ticks;
        span.args.emplace_back("tasks", std::to_string(task_index));
        span.args.emplace_back("first_index", "0");
        span.args.emplace_back("faults", "0");
        trace.record(0, std::move(span));
    }
    if (status_path) {
        // Final snapshot: pure function of the lab's content, no `live`
        // object.
        campaign_status final_status;
        final_status.campaign = "virus_lab";
        final_status.tasks_total = 4;
        final_status.tasks_done = task_index;
        publish_status(*status_path, final_status);
    }
    if (trace_path) {
        std::ofstream out(*trace_path);
        write_chrome_trace(out, trace);
        std::cerr << "trace written to " << *trace_path << " ("
                  << trace.size() << " events)\n";
    }
    if (metrics_path) {
        std::ofstream out(*metrics_path);
        write_metrics_json(out, metrics);
        std::cerr << "metrics written to " << *metrics_path << '\n';
    }
    return 0;
}

// Virus laboratory: evolve a dI/dt virus with the GA against the EM probe,
// inspect what it learned, and measure the margin it leaves on each of the
// three characterized chips (the Section III.C / Fig 6-7 methodology).
//
//   $ ./virus_lab [generations]
#include <iostream>

#include "chip/chip_model.hpp"
#include "em/em_probe.hpp"
#include "ga/virus_search.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const auto generations = static_cast<std::size_t>(
        int_arg(argc, argv, 1, 150, "generations", 1, 100000));

    const pipeline_model pipeline(nominal_core_frequency);
    const pdn_parameters pdn = make_xgene2_pdn();
    std::cout << "PDN resonance: " << pdn.resonant_frequency_hz() / 1.0e6
              << " MHz = "
              << pdn_model(pdn, nominal_pmd_voltage, nominal_core_frequency)
                     .resonance_period_cycles()
              << " cycles at 2.4 GHz\n";

    ga_config config;
    config.population_size = 96;
    config.generations = generations;
    rng ga_rng(7);
    const virus_search_result result =
        evolve_didt_virus(pipeline, pdn, config, ga_rng);

    const em_probe probe(pdn.resonant_frequency_hz(), pipeline.clock());
    const double ideal = probe.amplitude(
        pipeline.execute(make_square_wave_kernel(24, 24), 4096)
            .current_trace);
    std::cout << "evolved EM amplitude " << result.em_amplitude << " ("
              << format_percent(result.em_amplitude / ideal, 0)
              << " of the square-wave ideal) after " << generations
              << " generations\n\nevolved loop:";
    opcode last = result.virus.body.front();
    int run = 0;
    for (const opcode op : result.virus.body) {
        if (op == last) {
            ++run;
            continue;
        }
        std::cout << ' ' << traits_of(last).name << 'x' << run;
        last = op;
        run = 1;
    }
    std::cout << ' ' << traits_of(last).name << 'x' << run << "\n\n";

    // Margins per chip, one virus instance per core.
    const execution_profile profile = pipeline.execute(result.virus, 8192);
    std::vector<core_assignment> all;
    for (int c = 0; c < cores_per_chip; ++c) {
        all.push_back({c, &profile, nominal_core_frequency});
    }
    text_table table({"chip", "virus Vmin mV", "margin to nominal mV"});
    const std::uint64_t launch = hash_label("ga_didt_virus");
    for (const chip_config& cfg :
         {make_ttt_chip(), make_tff_chip(), make_tss_chip()}) {
        const chip_model chip(cfg, make_xgene2_pdn());
        const vmin_analysis analysis = chip.analyze(all, launch);
        table.add_row({cfg.name, format_number(analysis.vmin.value, 0),
                       format_number(
                           nominal_pmd_voltage.value - analysis.vmin.value,
                           0)});
    }
    table.render(std::cout);
    return 0;
}

// Quickstart: build a simulated X-Gene2 server, measure the Vmin guardband
// of one workload, and price the revealed margin.
//
//   $ ./quickstart
//
// Walks the three core steps of the library: (1) assemble a server from a
// chip corner and the DRAM testbed, (2) run an undervolting characterization
// through the framework, (3) read the power sensors at the revealed safe
// point.
#include <iostream>

#include "core/explorer.hpp"
#include "core/savings.hpp"
#include "workloads/cpu_profiles.hpp"

using namespace gb;

int main() {
    // (1) A typical (TTT-corner) chip with one DIMM of DDR3 behind it.
    xgene2_server server(make_ttt_chip(), /*seed=*/2018,
                         single_dimm_geometry());
    characterization_framework framework(server.cpu(), /*seed=*/1);
    guardband_explorer explorer(framework);

    // (2) Characterize: safe Vmin of one SPEC program on the best core,
    // ten repetitions per 5 mV step, exactly like the paper's campaigns.
    const cpu_benchmark& program = find_cpu_benchmark("milc");
    const int core = explorer.most_robust_core(program);
    const millivolts vmin =
        framework.find_vmin(program.loop, {core}, nominal_core_frequency,
                            /*repetitions=*/10);
    std::cout << program.name << " on core " << core << ": safe Vmin "
              << vmin.value << " mV (nominal "
              << nominal_pmd_voltage.value << " mV)\n";

    // (3) Exploit: what is that guardband worth?
    workload_snapshot snapshot;
    const execution_profile& profile =
        framework.profile_of(program.loop, nominal_core_frequency);
    for (int c = 0; c < 8; ++c) {
        snapshot.assignments.push_back({c, &profile,
                                        nominal_core_frequency});
    }
    snapshot.dram_bandwidth_gbps = 2.0;

    operating_point tuned = operating_point::nominal();
    tuned.pmd_voltage = vmin + millivolts{15.0}; // guarded safe point
    tuned.refresh_period = milliseconds{2283.0}; // 35x relaxed refresh

    const server_savings savings = compare_operating_points(
        server, snapshot, operating_point::nominal(), tuned);
    std::cout << "server power " << savings.total.nominal.value << " W -> "
              << savings.total.tuned.value << " W ("
              << 100.0 * savings.total.saving_fraction()
              << "% saved) at the guarded safe point\n";
    return 0;
}

// Full undervolting characterization campaign, the Fig 2 workflow:
// initialization (benchmark list x voltage ladder x cores), execution
// (repetitions with watchdog), parsing (classification + final CSV).
//
//   $ ./undervolt_campaign [chip] [options] [benchmark ...]
//     chip: TTT (default), TFF or TSS
//     --journal <path>  append every completed run to a crash-safe journal
//     --resume <path>   restore completed runs from a journal, run the rest
//     --faults <rate>   inject rig faults (hangs/crashes/power-switch and
//                       log corruption) at the given per-run rate
//     --trace <path>    write a deterministic Chrome trace_event JSON of
//                       the campaign (byte-identical at any GB_JOBS)
//     --metrics <path>  write the merged metrics registry as flat JSON
//     --timeline <path> write the deterministic progress time-series as
//                       timeline.json (`gbreport timeline <path>` renders
//                       it; byte-identical at any GB_JOBS)
//     --status <path>   publish a live heartbeat snapshot (atomic JSON;
//                       the final snapshot is deterministic)
//
// Emits the per-run CSV on stdout and a classification summary per voltage
// on stderr, so `./undervolt_campaign TTT milc > runs.csv` captures the
// framework's final artifact.  With --journal, killing the process and
// re-running with --resume on the same path reproduces the uninterrupted
// CSV bit for bit.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/fault_injection.hpp"
#include "harness/framework.hpp"
#include "harness/journal.hpp"
#include "harness/timeseries/timeseries.hpp"
#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"
#include "util/cli.hpp"
#include "workloads/cpu_profiles.hpp"

using namespace gb;

namespace {

/// With several benchmarks each campaign gets its own journal file, so a
/// resume never replays one benchmark's records into another's grid.
std::string journal_path_for(const std::string& base,
                             const std::string& benchmark,
                             std::size_t benchmark_count) {
    if (benchmark_count == 1) {
        return base;
    }
    return base + "." + benchmark;
}

} // namespace

int main(int argc, char** argv) {
    process_corner corner = process_corner::ttt;
    std::vector<std::string> benchmarks;
    std::string journal_base;
    std::string resume_base;
    double fault_rate = 0.0;
    const std::optional<std::string> trace_path =
        take_flag_value(argc, argv, "--trace");
    const std::optional<std::string> metrics_path =
        take_flag_value(argc, argv, "--metrics");
    const std::optional<std::string> timeline_path =
        take_flag_value(argc, argv, "--timeline");
    const std::optional<std::string> status_path =
        take_flag_value(argc, argv, "--status");
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "TTT") {
            corner = process_corner::ttt;
        } else if (arg == "TFF") {
            corner = process_corner::tff;
        } else if (arg == "TSS") {
            corner = process_corner::tss;
        } else if (arg == "--journal" && i + 1 < argc) {
            journal_base = argv[++i];
        } else if (arg == "--resume" && i + 1 < argc) {
            resume_base = argv[++i];
        } else if (arg == "--faults" && i + 1 < argc) {
            const auto parsed = parse_number(argv[++i]);
            if (!parsed || *parsed < 0.0 || *parsed > 1.0) {
                std::cerr << "--faults wants a rate in [0, 1]\n";
                return 1;
            }
            fault_rate = *parsed;
        } else {
            benchmarks.push_back(arg);
        }
    }
    if (benchmarks.empty()) {
        for (const cpu_benchmark& b : spec2006_suite()) {
            benchmarks.push_back(b.name);
        }
    }
    if (!resume_base.empty() && journal_base.empty()) {
        // Resume keeps journaling to the same file by default, so a second
        // kill is just as recoverable as the first.
        journal_base = resume_base;
    }

    chip_model chip(make_chip(corner), make_xgene2_pdn());
    characterization_framework framework(chip, /*seed=*/2018);
    std::cerr << "characterizing chip " << chip.config().name << ", "
              << benchmarks.size() << " benchmark(s)\n";

    std::optional<fault_plan> faults;
    if (fault_rate > 0.0) {
        faults = make_uniform_fault_plan(/*seed=*/2018, fault_rate);
        std::cerr << "fault plan active: per-run fault rate " << fault_rate
                  << '\n';
    }

    tracer trace;
    metrics_registry metrics;
    timeline_recorder timeline;
    const bool observing = trace_path || metrics_path;

    for (const std::string& name : benchmarks) {
        const cpu_benchmark& benchmark = find_cpu_benchmark(name);

        // Initialization phase: voltage ladder from nominal down to well
        // below every Vmin, on the most robust core.
        campaign_spec spec;
        spec.benchmark = benchmark.name;
        spec.repetitions = 10;
        for (double v = 980.0; v >= 840.0; v -= 10.0) {
            characterization_setup setup;
            setup.voltage = millivolts{v};
            setup.cores = {6};
            spec.setups.push_back(setup);
        }

        // Execution phase, optionally journaled / fault-injected / resumed.
        campaign_io io;
        if (faults) {
            io.faults = &*faults;
        }
        if (observing) {
            io.trace = trace_path ? &trace : nullptr;
            io.metrics = metrics_path ? &metrics : nullptr;
        }
        if (timeline_path) {
            io.timeline = &timeline;
        }
        if (status_path) {
            io.status_path = *status_path;
        }
        std::unique_ptr<campaign_journal> journal;
        if (!journal_base.empty()) {
            journal = std::make_unique<campaign_journal>(journal_path_for(
                journal_base, benchmark.name, benchmarks.size()));
            io.journal = journal.get();
        }

        campaign_result result;
        if (!resume_base.empty()) {
            std::ifstream journal_in(journal_path_for(
                resume_base, benchmark.name, benchmarks.size()));
            result = framework.resume_campaign(spec, benchmark.loop,
                                               journal_in, io);
        } else {
            result = framework.run_campaign(spec, benchmark.loop, io);
        }

        // Parsing phase: summary per voltage + final CSV.
        std::cerr << benchmark.name << ":";
        for (const characterization_setup& setup : spec.setups) {
            const classification_summary summary =
                result.summarize_at(setup.voltage);
            if (summary.disruptions() > 0 || summary.corrected > 0) {
                std::cerr << ' ' << setup.voltage.value << "mV["
                          << summary.ok << "ok/" << summary.corrected
                          << "ce/" << summary.sdc << "sdc/" << summary.crash
                          << "crash]";
            }
        }
        std::cerr << "  (watchdog resets: " << result.watchdog_resets;
        if (result.stats.injected_faults() > 0 ||
            result.stats.replayed_tasks > 0) {
            std::cerr << ", rig faults: " << result.stats.injected_faults()
                      << ", retries: " << result.stats.retries
                      << ", aborted: " << result.stats.aborted_rig
                      << ", replayed: " << result.stats.replayed_tasks;
        }
        std::cerr << ")\n";
        write_campaign_csv(std::cout, result);
    }
    std::cerr << "total watchdog resets this session: "
              << framework.watchdog_resets() << '\n';
    if (trace_path) {
        std::ofstream out(*trace_path);
        write_chrome_trace(out, trace);
        std::cerr << "trace written to " << *trace_path << " ("
                  << trace.size() << " events)\n";
    }
    if (metrics_path) {
        std::ofstream out(*metrics_path);
        write_metrics_json(out, metrics);
        std::cerr << "metrics written to " << *metrics_path << '\n';
    }
    if (timeline_path) {
        std::ofstream out(*timeline_path);
        write_timeline_json(out, timeline);
        std::cerr << "timeline written to " << *timeline_path << " ("
                  << timeline.series_count() << " series, "
                  << timeline.sample_count() << " samples)\n";
    }
    return 0;
}

// Full undervolting characterization campaign, the Fig 2 workflow:
// initialization (benchmark list x voltage ladder x cores), execution
// (repetitions with watchdog), parsing (classification + final CSV).
//
//   $ ./undervolt_campaign [chip] [benchmark ...]
//     chip: TTT (default), TFF or TSS
//
// Emits the per-run CSV on stdout and a classification summary per voltage
// on stderr, so `./undervolt_campaign TTT milc > runs.csv` captures the
// framework's final artifact.
#include <iostream>
#include <string>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/framework.hpp"
#include "workloads/cpu_profiles.hpp"

using namespace gb;

int main(int argc, char** argv) {
    process_corner corner = process_corner::ttt;
    std::vector<std::string> benchmarks;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "TTT") {
            corner = process_corner::ttt;
        } else if (arg == "TFF") {
            corner = process_corner::tff;
        } else if (arg == "TSS") {
            corner = process_corner::tss;
        } else {
            benchmarks.push_back(arg);
        }
    }
    if (benchmarks.empty()) {
        for (const cpu_benchmark& b : spec2006_suite()) {
            benchmarks.push_back(b.name);
        }
    }

    chip_model chip(make_chip(corner), make_xgene2_pdn());
    characterization_framework framework(chip, /*seed=*/2018);
    std::cerr << "characterizing chip " << chip.config().name << ", "
              << benchmarks.size() << " benchmark(s)\n";

    bool header_written = false;
    for (const std::string& name : benchmarks) {
        const cpu_benchmark& benchmark = find_cpu_benchmark(name);

        // Initialization phase: voltage ladder from nominal down to well
        // below every Vmin, on the most robust core.
        campaign_spec spec;
        spec.benchmark = benchmark.name;
        spec.repetitions = 10;
        for (double v = 980.0; v >= 840.0; v -= 10.0) {
            characterization_setup setup;
            setup.voltage = millivolts{v};
            setup.cores = {6};
            spec.setups.push_back(setup);
        }

        // Execution phase.
        const campaign_result result =
            framework.run_campaign(spec, benchmark.loop);

        // Parsing phase: summary per voltage + final CSV.
        std::cerr << benchmark.name << ":";
        for (const characterization_setup& setup : spec.setups) {
            const classification_summary summary =
                result.summarize_at(setup.voltage);
            if (summary.disruptions() > 0 || summary.corrected > 0) {
                std::cerr << ' ' << setup.voltage.value << "mV["
                          << summary.ok << "ok/" << summary.corrected
                          << "ce/" << summary.sdc << "sdc/" << summary.crash
                          << "crash]";
            }
        }
        std::cerr << "  (watchdog resets: " << result.watchdog_resets
                  << ")\n";

        if (!header_written) {
            header_written = true;
        } else {
            // write_campaign_csv emits its own header; strip repeats by
            // writing whole campaigns only for the first benchmark.
        }
        write_campaign_csv(std::cout, result);
    }
    std::cerr << "total watchdog resets this session: "
              << framework.watchdog_resets() << '\n';
    return 0;
}

// Fleet binning: apply the characterization methodology to a fleet of
// randomly drawn chips and bin them into voltage classes (the deployment
// the UniServer project targets: each server runs at its own revealed safe
// point instead of the fleet-wide worst case).
//
//   $ ./fleet_binning [chips_per_corner]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "chip/power.hpp"
#include "util/cli.hpp"
#include "ga/virus_search.hpp"
#include "harness/framework.hpp"
#include "util/table.hpp"
#include "workloads/cpu_profiles.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const int per_corner = static_cast<int>(
        int_arg(argc, argv, 1, 15, "chips_per_corner", 1, 1000));

    // One virus for the whole fleet (crafted once per micro-architecture).
    const pipeline_model pipeline(nominal_core_frequency);
    ga_config ga;
    ga.population_size = 96;
    ga.generations = 120;
    rng ga_rng(7);
    const virus_search_result virus =
        evolve_didt_virus(pipeline, make_xgene2_pdn(), ga, ga_rng);
    const execution_profile virus_profile =
        pipeline.execute(virus.virus, 8192);

    // Bin edges: 10 mV voltage classes.
    std::map<int, int> bins;
    rng fleet_rng(2024);
    const cpu_power_model power;
    double fleet_nominal_w = 0.0;
    double fleet_binned_w = 0.0;
    const std::vector<cpu_benchmark> mix = fig5_mix();

    for (const process_corner corner :
         {process_corner::ttt, process_corner::tff, process_corner::tss}) {
        for (int i = 0; i < per_corner; ++i) {
            const chip_model chip(random_chip(corner, fleet_rng),
                                  make_xgene2_pdn());
            characterization_framework framework(
                chip, 500 + static_cast<std::uint64_t>(i));

            // The chip's class: worst of (mix requirement, virus
            // requirement) plus a 10 mV deployment guard.
            std::vector<core_assignment> mix_assignments;
            std::vector<core_assignment> virus_assignments;
            for (int core = 0; core < cores_per_chip; ++core) {
                mix_assignments.push_back(core_assignment{
                    core,
                    &framework.profile_of(
                        mix[static_cast<std::size_t>(core)].loop,
                        nominal_core_frequency),
                    nominal_core_frequency});
                virus_assignments.push_back(core_assignment{
                    core, &virus_profile, nominal_core_frequency});
            }
            const double requirement =
                std::max(chip.analyze(mix_assignments, 42).vmin.value,
                         chip.analyze(virus_assignments,
                                      hash_label("ga_didt_virus"))
                             .vmin.value) +
                10.0;
            const double binned =
                std::min(980.0, std::ceil(requirement / 10.0) * 10.0);
            ++bins[static_cast<int>(binned)];

            // Power at nominal vs at the bin voltage for the mix.
            fleet_nominal_w += power
                                   .pmd_domain_power(chip.config(),
                                                     mix_assignments,
                                                     nominal_pmd_voltage,
                                                     celsius{50.0})
                                   .value;
            fleet_binned_w += power
                                  .pmd_domain_power(chip.config(),
                                                    mix_assignments,
                                                    millivolts{binned},
                                                    celsius{50.0})
                                  .value;
        }
    }

    std::cout << "fleet of " << 3 * per_corner
              << " chips, binned by revealed safe voltage (mix + virus + "
                 "10 mV guard):\n\n";
    text_table table({"voltage class mV", "chips", "share"});
    const double total = 3.0 * per_corner;
    for (const auto& [voltage, count] : bins) {
        table.add_row({std::to_string(voltage), std::to_string(count),
                       format_percent(count / total, 0)});
    }
    table.render(std::cout);

    std::cout << "\nfleet PMD power: "
              << format_number(fleet_nominal_w, 0) << " W at nominal vs "
              << format_number(fleet_binned_w, 0)
              << " W binned -- "
              << format_percent(1.0 - fleet_binned_w / fleet_nominal_w, 1)
              << " saved by per-chip operating points\n";
    return 0;
}

// Fleet binning: apply the characterization methodology to a fleet of
// randomly drawn chips and bin them into voltage classes (the deployment
// the UniServer project targets: each server runs at its own revealed safe
// point instead of the fleet-wide worst case).
//
//   $ ./fleet_binning [chips_per_corner] [options]
//     --trace <path>    deterministic Chrome trace (one task span per chip)
//     --metrics <path>  binning counters/histogram as flat JSON
//     --status <path>   live heartbeat while the fleet characterizes
//                       (atomic writes; the final snapshot is deterministic)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chip/power.hpp"
#include "util/cli.hpp"
#include "ga/virus_search.hpp"
#include "harness/framework.hpp"
#include "harness/status.hpp"
#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"
#include "util/table.hpp"
#include "workloads/cpu_profiles.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const std::optional<std::string> trace_path =
        take_flag_value(argc, argv, "--trace");
    const std::optional<std::string> metrics_path =
        take_flag_value(argc, argv, "--metrics");
    const std::optional<std::string> status_path =
        take_flag_value(argc, argv, "--status");
    const int per_corner = static_cast<int>(
        int_arg(argc, argv, 1, 15, "chips_per_corner", 1, 1000));

    // One virus for the whole fleet (crafted once per micro-architecture).
    const pipeline_model pipeline(nominal_core_frequency);
    ga_config ga;
    ga.population_size = 96;
    ga.generations = 120;
    rng ga_rng(7);
    const virus_search_result virus =
        evolve_didt_virus(pipeline, make_xgene2_pdn(), ga, ga_rng);
    const execution_profile virus_profile =
        pipeline.execute(virus.virus, 8192);

    // Bin edges: 10 mV voltage classes.
    std::map<int, int> bins;
    rng fleet_rng(2024);
    const cpu_power_model power;
    double fleet_nominal_w = 0.0;
    double fleet_binned_w = 0.0;
    const std::vector<cpu_benchmark> mix = fig5_mix();

    // Observability: one campaign span owning a task span per chip; ticks
    // derive from the chip's revealed requirement, never from wall time.
    tracer trace;
    metrics_registry metrics;
    const std::uint32_t phase = trace.allocate_phase();
    const counter_handle m_chips = metrics.counter("fleet.chips");
    const histogram_handle m_bins = metrics.histogram(
        "fleet.bin_mv", {880, 900, 920, 940, 960, 980});
    const gauge_handle m_nominal = metrics.gauge("fleet.power_nominal_w");
    const gauge_handle m_binned = metrics.gauge("fleet.power_binned_w");
    const std::uint64_t fleet_size =
        3 * static_cast<std::uint64_t>(per_corner);
    const auto wall_start = std::chrono::steady_clock::now();
    campaign_status heartbeat;
    heartbeat.campaign = "fleet_binning";
    heartbeat.tasks_total = fleet_size;
    heartbeat.workers = 1;
    std::uint64_t chip_index = 0;
    std::uint64_t fleet_ticks = 0;

    for (const process_corner corner :
         {process_corner::ttt, process_corner::tff, process_corner::tss}) {
        for (int i = 0; i < per_corner; ++i) {
            if (status_path) {
                heartbeat.running = true;
                heartbeat.tasks_done = chip_index;
                heartbeat.worker_task = {
                    static_cast<std::int64_t>(chip_index)};
                heartbeat.wall_elapsed_s =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
                publish_status(*status_path, heartbeat);
            }
            const chip_model chip(random_chip(corner, fleet_rng),
                                  make_xgene2_pdn());
            characterization_framework framework(
                chip, 500 + static_cast<std::uint64_t>(i));

            // The chip's class: worst of (mix requirement, virus
            // requirement) plus a 10 mV deployment guard.
            std::vector<core_assignment> mix_assignments;
            std::vector<core_assignment> virus_assignments;
            for (int core = 0; core < cores_per_chip; ++core) {
                mix_assignments.push_back(core_assignment{
                    core,
                    &framework.profile_of(
                        mix[static_cast<std::size_t>(core)].loop,
                        nominal_core_frequency),
                    nominal_core_frequency});
                virus_assignments.push_back(core_assignment{
                    core, &virus_profile, nominal_core_frequency});
            }
            const double requirement =
                std::max(chip.analyze(mix_assignments, 42).vmin.value,
                         chip.analyze(virus_assignments,
                                      hash_label("ga_didt_virus"))
                             .vmin.value) +
                10.0;
            const double binned =
                std::min(980.0, std::ceil(requirement / 10.0) * 10.0);
            ++bins[static_cast<int>(binned)];

            const auto requirement_ticks =
                static_cast<std::uint64_t>(std::llround(requirement));
            trace_span span;
            span.name = "task";
            span.category = "engine";
            span.at = trace_point{track_rig, phase, chip_index, 0};
            span.duration_ticks = 100 + requirement_ticks;
            span.args.emplace_back("index", std::to_string(chip_index));
            span.args.emplace_back(
                "bucket", std::to_string(static_cast<int>(corner)));
            trace.record(0, std::move(span));
            fleet_ticks += 100 + requirement_ticks;
            metrics.add(0, m_chips);
            metrics.observe(0, m_bins,
                            static_cast<std::uint64_t>(binned));
            ++chip_index;

            // Power at nominal vs at the bin voltage for the mix.
            fleet_nominal_w += power
                                   .pmd_domain_power(chip.config(),
                                                     mix_assignments,
                                                     nominal_pmd_voltage,
                                                     celsius{50.0})
                                   .value;
            fleet_binned_w += power
                                  .pmd_domain_power(chip.config(),
                                                    mix_assignments,
                                                    millivolts{binned},
                                                    celsius{50.0})
                                  .value;
        }
    }

    {
        trace_span span;
        span.name = "fleet_binning";
        span.category = "campaign";
        span.at = trace_point{track_campaign, phase, 0, 0};
        span.duration_ticks = fleet_ticks;
        span.args.emplace_back("tasks", std::to_string(chip_index));
        span.args.emplace_back("first_index", "0");
        span.args.emplace_back("faults", "0");
        trace.record(0, std::move(span));
    }
    metrics.set(0, m_nominal, /*order=*/0, fleet_nominal_w);
    metrics.set(0, m_binned, /*order=*/0, fleet_binned_w);
    if (status_path) {
        // Final snapshot: pure function of the fleet content, no `live`
        // object -- the same contract the execution engine honours.
        campaign_status final_status;
        final_status.campaign = "fleet_binning";
        final_status.tasks_total = fleet_size;
        final_status.tasks_done = chip_index;
        publish_status(*status_path, final_status);
    }

    std::cout << "fleet of " << 3 * per_corner
              << " chips, binned by revealed safe voltage (mix + virus + "
                 "10 mV guard):\n\n";
    text_table table({"voltage class mV", "chips", "share"});
    const double total = 3.0 * per_corner;
    for (const auto& [voltage, count] : bins) {
        table.add_row({std::to_string(voltage), std::to_string(count),
                       format_percent(count / total, 0)});
    }
    table.render(std::cout);

    std::cout << "\nfleet PMD power: "
              << format_number(fleet_nominal_w, 0) << " W at nominal vs "
              << format_number(fleet_binned_w, 0)
              << " W binned -- "
              << format_percent(1.0 - fleet_binned_w / fleet_nominal_w, 1)
              << " saved by per-chip operating points\n";
    if (trace_path) {
        std::ofstream out(*trace_path);
        write_chrome_trace(out, trace);
        std::cerr << "trace written to " << *trace_path << " ("
                  << trace.size() << " events)\n";
    }
    if (metrics_path) {
        std::ofstream out(*metrics_path);
        write_metrics_json(out, metrics);
        std::cerr << "metrics written to " << *metrics_path << '\n';
    }
    return 0;
}

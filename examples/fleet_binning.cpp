// Fleet binning: apply the characterization methodology to a fleet of
// randomly drawn chips and bin them into voltage classes (the deployment
// the UniServer project targets: each server runs at its own revealed safe
// point instead of the fleet-wide worst case).
//
// A thin client of the fleet service (fleet/service.hpp): the fleet is a
// `fleet_spec` of explicit unique-silicon nodes (every chip its own
// cohort variant), the per-chip methodology lives in the probe function,
// and the service runs the campaign through the execution engine, fans
// results out and keeps the deterministic observability artifacts.
//
//   $ ./fleet_binning [chips_per_corner] [options]
//     --trace <path>    deterministic Chrome trace (one task span per chip)
//     --metrics <path>  binning counters/histogram as flat JSON
//     --status <path>   live heartbeat while the fleet characterizes;
//                       the final snapshot is the service's fleet state
//                       (deterministic bytes, `gbreport status` renders it)
//     --fault-rate <r>  characterize through a hostile rig: uniform
//                       per-attempt fault rate (docs/ROBUSTNESS.md);
//                       chips whose probes never resolve are served
//                       degraded at the nominal bin and summarized
//     --replan <n>      backoff re-plan rounds before a chip degrades
//                       (default 2, only meaningful with --fault-rate)
//     --sdc <spec>      arm silent-data-corruption triggers
//                       (site@at[/param], see docs/ROBUSTNESS.md) and the
//                       quorum/audit defenses against them
//     --quorum <n>      replicas per probe (default: 3 with --sdc)
//     --audit <k>       re-verify every k-th scheduled cache hit
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chip/power.hpp"
#include "fleet/service.hpp"
#include "ga/virus_search.hpp"
#include "harness/fault_injection.hpp"
#include "harness/framework.hpp"
#include "harness/trace/metrics.hpp"
#include "harness/trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/cpu_profiles.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const std::optional<std::string> trace_path =
        take_flag_value(argc, argv, "--trace");
    const std::optional<std::string> metrics_path =
        take_flag_value(argc, argv, "--metrics");
    const std::optional<std::string> status_path =
        take_flag_value(argc, argv, "--status");
    const std::optional<std::string> fault_rate_text =
        take_flag_value(argc, argv, "--fault-rate");
    const std::optional<std::string> replan_text =
        take_flag_value(argc, argv, "--replan");
    double fault_rate = 0.0;
    if (fault_rate_text) {
        const std::optional<double> parsed = parse_number(*fault_rate_text);
        if (!parsed || *parsed < 0.0 || *parsed > 0.9) {
            std::cerr << "fleet_binning: --fault-rate must be a number in "
                         "[0, 0.9], got '"
                      << *fault_rate_text << "'\n";
            return 2;
        }
        fault_rate = *parsed;
    }
    int replan_rounds = 2;
    if (replan_text) {
        const std::optional<long long> parsed = parse_integer(*replan_text);
        if (!parsed || *parsed < 0 || *parsed > 16) {
            std::cerr << "fleet_binning: --replan must be an integer in "
                         "[0, 16], got '"
                      << *replan_text << "'\n";
            return 2;
        }
        replan_rounds = static_cast<int>(*parsed);
    }
    const std::optional<std::string> sdc_text =
        take_flag_value(argc, argv, "--sdc");
    const std::optional<std::string> quorum_text =
        take_flag_value(argc, argv, "--quorum");
    const std::optional<std::string> audit_text =
        take_flag_value(argc, argv, "--audit");
    std::optional<sdc_plan> sdc;
    if (sdc_text) {
        sdc_plan_config sdc_config;
        sdc_config.seed = 2024;
        std::string error;
        if (!parse_sdc_spec(*sdc_text, sdc_config, error)) {
            std::cerr << "fleet_binning: " << error << "\n";
            return 2;
        }
        sdc.emplace(std::move(sdc_config));
    }
    int quorum = sdc ? 3 : 1;
    if (quorum_text) {
        const std::optional<long long> parsed = parse_integer(*quorum_text);
        if (!parsed || *parsed < 1 || *parsed > 15) {
            std::cerr << "fleet_binning: --quorum must be an integer in "
                         "[1, 15], got '"
                      << *quorum_text << "'\n";
            return 2;
        }
        quorum = static_cast<int>(*parsed);
    }
    std::uint64_t audit_stride = (sdc || quorum > 1) ? 4 : 0;
    if (audit_text) {
        const std::optional<long long> parsed = parse_integer(*audit_text);
        if (!parsed || *parsed < 0) {
            std::cerr << "fleet_binning: --audit must be a non-negative "
                         "integer, got '"
                      << *audit_text << "'\n";
            return 2;
        }
        audit_stride = static_cast<std::uint64_t>(*parsed);
    }
    const int per_corner = static_cast<int>(
        int_arg(argc, argv, 1, 15, "chips_per_corner", 1, 1000));

    // One virus for the whole fleet (crafted once per micro-architecture).
    const pipeline_model pipeline(nominal_core_frequency);
    ga_config ga;
    ga.population_size = 96;
    ga.generations = 120;
    rng ga_rng(7);
    const virus_search_result virus =
        evolve_didt_virus(pipeline, make_xgene2_pdn(), ga, ga_rng);
    const execution_profile virus_profile =
        pipeline.execute(virus.virus, 8192);

    // The fleet: chips drawn corner-major from one sequential RNG (the
    // draw order is part of the fleet's identity), each its own cohort
    // variant -- unique silicon shares no probes.
    struct fleet_chip {
        chip_config config;
        std::uint64_t framework_seed = 0;
    };
    auto chips = std::make_shared<std::vector<fleet_chip>>();
    rng fleet_rng(2024);
    fleet::fleet_spec spec;
    spec.node_jitter_mv = 0.0; // requirements are per-chip exact
    for (const process_corner corner :
         {process_corner::ttt, process_corner::tff, process_corner::tss}) {
        for (int i = 0; i < per_corner; ++i) {
            chips->push_back(
                fleet_chip{random_chip(corner, fleet_rng),
                           500 + static_cast<std::uint64_t>(i)});
            fleet::fleet_node node;
            node.id = spec.explicit_nodes.size();
            node.cohort.corner = corner;
            node.cohort.variant =
                static_cast<std::uint32_t>(node.id) + 1;
            spec.explicit_nodes.push_back(node);
        }
    }

    // The per-chip methodology, as a probe: worst of (mix requirement,
    // virus requirement) plus a 10 mV deployment guard, and the PMD power
    // at nominal vs at the revealed bin.
    const std::vector<cpu_benchmark> mix = fig5_mix();
    const fleet::probe_fn probe =
        [chips, &virus_profile, &mix,
         &spec](const fleet::probe_request& request) {
            const fleet_chip& entry =
                (*chips)[request.cohort.variant - 1];
            const chip_model chip(entry.config, make_xgene2_pdn());
            characterization_framework framework(chip,
                                                 entry.framework_seed);
            std::vector<core_assignment> mix_assignments;
            std::vector<core_assignment> virus_assignments;
            for (int core = 0; core < cores_per_chip; ++core) {
                mix_assignments.push_back(core_assignment{
                    core,
                    &framework.profile_of(
                        mix[static_cast<std::size_t>(core)].loop,
                        nominal_core_frequency),
                    nominal_core_frequency});
                virus_assignments.push_back(core_assignment{
                    core, &virus_profile, nominal_core_frequency});
            }
            fleet::probe_result result;
            result.requirement_mv =
                std::max(chip.analyze(mix_assignments, 42).vmin.value,
                         chip.analyze(virus_assignments,
                                      hash_label("ga_didt_virus"))
                             .vmin.value) +
                10.0;
            const cpu_power_model power;
            result.power_nominal_w =
                power
                    .pmd_domain_power(chip.config(), mix_assignments,
                                      nominal_pmd_voltage, celsius{50.0})
                    .value;
            result.power_point_w =
                power
                    .pmd_domain_power(
                        chip.config(), mix_assignments,
                        millivolts{fleet::bin_voltage_mv(
                            spec, result.requirement_mv)},
                        celsius{50.0})
                    .value;
            result.bucket = static_cast<int>(request.cohort.corner);
            return result;
        };

    tracer trace;
    metrics_registry metrics;
    fleet::fleet_service_config config;
    config.campaign = "fleet_binning";
    config.trace = &trace;
    config.metrics = &metrics;
    if (status_path) {
        config.state_path = *status_path;
    }
    std::optional<fault_plan> faults;
    if (fault_rate > 0.0) {
        faults = make_uniform_fault_plan(2024, fault_rate);
        config.faults = &*faults;
        config.replan_rounds = replan_rounds;
    }
    config.integrity.quorum = quorum;
    config.integrity.sdc = sdc ? &*sdc : nullptr;
    config.integrity.audit_stride = audit_stride;
    fleet::fleet_service service(spec, config, probe);
    const fleet::campaign_outcome outcome = service.run_campaign();

    std::cout << "fleet of " << 3 * per_corner
              << " chips, binned by revealed safe voltage (mix + virus + "
                 "10 mV guard):\n\n";
    text_table table({"voltage class mV", "chips", "share"});
    const double total = 3.0 * per_corner;
    for (const auto& [voltage, count] : service.bins()) {
        table.add_row({std::to_string(voltage), std::to_string(count),
                       format_percent(count / total, 0)});
    }
    table.render(std::cout);

    const double fleet_nominal_w = service.power_nominal_w();
    const double fleet_binned_w = service.power_binned_w();
    std::cout << "\nfleet PMD power: "
              << format_number(fleet_nominal_w, 0) << " W at nominal vs "
              << format_number(fleet_binned_w, 0)
              << " W binned -- "
              << format_percent(1.0 - fleet_binned_w / fleet_nominal_w, 1)
              << " saved by per-chip operating points\n";
    // Only a hostile rig can quarantine chips; keep the healthy-rig
    // output byte-identical by printing the summary only when asked for.
    if (fault_rate_text) {
        std::cout << "\ndegraded: " << outcome.degraded << " of "
                  << outcome.probes
                  << " chips quarantined at the nominal bin ("
                  << outcome.replanned << " re-planned, "
                  << format_number(outcome.stats.rig_downtime_s, 0)
                  << " s simulated rig downtime)\n";
    }
    // Same discipline for the Byzantine-rig summary: only an --sdc run
    // can differ from the clean output, so only an --sdc run prints it.
    if (sdc_text) {
        std::cout << "\nintegrity: " << service.sdc_injected()
                  << " corruptions injected, " << service.sdc_detected()
                  << " detected (" << service.sdc_outvoted()
                  << " outvoted by the quorum of " << quorum << ", "
                  << service.audit_mismatches() << " audit-caught), "
                  << service.sdc_escaped() << " escaped\n";
    }
    if (trace_path) {
        std::ofstream out(*trace_path);
        write_chrome_trace(out, trace);
        std::cerr << "trace written to " << *trace_path << " ("
                  << trace.size() << " events)\n";
    }
    if (metrics_path) {
        std::ofstream out(*metrics_path);
        write_metrics_json(out, metrics);
        std::cerr << "metrics written to " << *metrics_path << '\n';
    }
    return 0;
}

// UniServer autopilot: every exploitation mechanism in this library running
// together, the deployment the paper's conclusion sketches.  For each
// operating phase of a simulated day the autopilot:
//   1. places the phase's programs on cores Vmin-aware (placement),
//   2. picks the PMD voltage from the predictor + droop history (governor),
//   3. sets the DRAM refresh period from the DIMM temperature sensors
//      (adaptive refresh policy),
//   4. asks the operating-point supervisor for the staged plan (sentinel
//      epochs against the chip model's predicted SDC probability, circuit
//      breakers per operating point, watchdog replay on hangs),
// then executes the phase, feeds outcomes back, and accounts power against
// an always-nominal baseline -- net of the resilience overhead.
//
// Mid-run the example injects a deterministic fault storm (silent data
// corruption, DRAM CE bursts and hangs at the exploited point) to show the
// supervisor tripping, quarantining, degrading in stages and recovering to
// the exploiting state, with every epoch accounted.
//
//   $ ./uniserver_autopilot [phases] [--trace <path>] [--metrics <path>]
#include <fstream>
#include <iostream>
#include <optional>

#include "core/governor.hpp"
#include "core/placement.hpp"
#include "core/refresh_policy.hpp"
#include "core/savings.hpp"
#include "core/supervisor.hpp"
#include "dram/power.hpp"
#include "fleet/service.hpp"
#include "harness/trace/trace.hpp"
#include "thermal/testbed.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/cpu_profiles.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const std::optional<std::string> trace_path =
        take_flag_value(argc, argv, "--trace");
    const std::optional<std::string> metrics_path =
        take_flag_value(argc, argv, "--metrics");
    const int phases =
        static_cast<int>(int_arg(argc, argv, 1, 48, "phases", 1, 100000));

    chip_model chip(make_ttt_chip(), make_xgene2_pdn());
    characterization_framework framework(chip, 2018);
    memory_system memory(single_dimm_geometry(), retention_model{}, 2018,
                         study_limits{celsius{62.0},
                                      milliseconds{2283.0}});
    thermal_testbed testbed(1, thermal_plant_config{}, 5);
    const adaptive_refresh_policy refresh_policy;
    const dram_power_model dram_power;
    const cpu_power_model cpu_power;

    // --- One-time characterization: train the predictor on chip-level
    // campaigns (what a commissioning pass would measure). ---
    vmin_predictor predictor;
    for (const cpu_benchmark& b : spec2006_suite()) {
        const execution_profile& profile =
            framework.profile_of(b.loop, nominal_core_frequency);
        std::vector<core_assignment> all;
        for (int core = 0; core < cores_per_chip; ++core) {
            all.push_back({core, &profile, nominal_core_frequency});
        }
        predictor.add_sample(profile,
                             chip.analyze(all, hash_label(b.name)).vmin);
    }
    predictor.train();
    voltage_governor governor(predictor);
    tracer trace;
    metrics_registry metrics;

    // This server is a one-node fleet; the fleet service owns its
    // per-cohort operating-point supervisor and runs the epochs.
    fleet::fleet_spec node_spec;
    node_spec.explicit_nodes.push_back(fleet::fleet_node{});
    fleet::fleet_service_config service_config;
    service_config.campaign = "uniserver_autopilot";
    service_config.trace = trace_path ? &trace : nullptr;
    service_config.metrics = metrics_path ? &metrics : nullptr;
    fleet::fleet_service service(node_spec, service_config);
    const fleet::cohort_key cohort = node_spec.explicit_nodes.front().cohort;
    operating_point_supervisor& supervisor =
        service.supervisor_for(cohort, supervisor_config{}, &governor);
    std::cout << "commissioned: predictor R^2 "
              << format_number(predictor.r_squared(), 2) << "\n\n";

    // --- Deterministic fault storm: SDC, DRAM CE bursts and hangs land on
    // one workload mix at the exploited point (stage 0) for a window of
    // phases mid-run, the localized marginality a breaker exists to catch.
    const epoch_fault_plan faults(epoch_fault_config{
        /*seed=*/2018, /*sdc_rate=*/0.5, /*ce_burst_rate=*/0.9,
        /*hang_rate=*/0.25, /*ce_burst_words=*/16});
    const int storm_begin = phases / 4;
    const int storm_end = storm_begin + 12;
    const std::size_t storm_mix = 1;

    // --- The day: alternating workload mixes and ambient temperatures. ---
    const std::vector<std::vector<std::string>> mixes{
        {"mcf", "gcc", "dealII", "lbm", "mcf", "gcc", "dealII", "lbm"},
        {"milc", "bwaves", "leslie3d", "namd", "gromacs", "cactusADM",
         "dealII", "mcf"},
        {"gromacs", "namd", "gromacs", "namd", "gromacs", "namd", "gromacs",
         "namd"},
    };
    const std::vector<double> ambients{42.0, 55.0, 48.0};

    rng r(9);
    double autopilot_w = 0.0;
    double nominal_w = 0.0;
    int disruptions = 0;
    int ce_epochs = 0;
    running_stats chosen_voltage;

    for (int phase = 0; phase < phases; ++phase) {
        const std::size_t kind =
            static_cast<std::size_t>(phase) % mixes.size();

        // (1) Placement.
        std::vector<const kernel*> programs;
        const execution_profile* worst_profile = nullptr;
        for (const std::string& name : mixes[kind]) {
            programs.push_back(&find_cpu_benchmark(name).loop);
        }
        const placement_result placement =
            optimize_placement(framework, programs);
        std::vector<core_assignment> assignments;
        double mean_current = 0.0;
        for (std::size_t i = 0; i < programs.size(); ++i) {
            const execution_profile& profile = framework.profile_of(
                *programs[i], nominal_core_frequency);
            assignments.push_back(
                core_assignment{placement.core_of_program[i], &profile,
                                nominal_core_frequency});
            mean_current += profile.average_current_a();
            if (worst_profile == nullptr ||
                profile.average_current_a() >
                    worst_profile->average_current_a()) {
                worst_profile = &profile;
            }
        }

        // (2) Voltage from the governor (keyed on the heaviest program's
        // counters, the PMU signal a governor actually has).
        const millivolts desired_v = governor.choose_voltage(*worst_profile);

        // (3) Refresh from the DIMM temperature.
        testbed.set_target(0, celsius{ambients[static_cast<std::size_t>(
                                  phase) % ambients.size()]});
        testbed.run(900.0, 1.0, 600.0);
        testbed.apply_to(memory);
        const milliseconds desired_trefp = refresh_policy.apply(memory);

        // (4) The supervisor's staged plan for this epoch.
        const std::uint64_t phase_seed =
            hash_label(mixes[kind].front()) + kind;
        const vmin_analysis analysis = chip.analyze(assignments, phase_seed);
        const double dram_bw = 2.0 + 2.0 * mean_current / 8.0;
        epoch_request request;
        request.pmd = analysis.critical_core / 2;
        request.workload_class = "mix" + std::to_string(kind);
        request.desired_voltage = desired_v;
        request.desired_refresh = desired_trefp;
        request.predicted_sdc =
            chip.sdc_probability(assignments, desired_v, phase_seed);

        const bool storm =
            phase >= storm_begin && phase < storm_end && kind == storm_mix;
        const auto execute = [&](const epoch_plan& plan) {
            epoch_result result;
            result.outcome =
                chip.evaluate_run(assignments, plan.voltage, phase_seed, r)
                    .outcome;
            result.observed_requirement = analysis.vmin;
            result.epoch_power_w =
                cpu_power.pmd_domain_power(chip.config(), assignments,
                                           plan.voltage, celsius{50.0})
                    .value +
                dram_power.power(plan.refresh, dram_bw).value;
            result.unsupervised_power_w =
                cpu_power.pmd_domain_power(chip.config(), assignments,
                                           desired_v, celsius{50.0})
                    .value +
                dram_power.power(desired_trefp, dram_bw).value;
            // The storm's faults live at the exploited point; a staged
            // back-off escapes them, which is exactly the recovery the
            // supervisor stages.
            if (storm && plan.stage == 0) {
                faults.apply(static_cast<std::uint64_t>(phase), result);
            }
            return result;
        };

        const supervised_epoch epoch =
            service.run_epoch(cohort, request, execute);
        chosen_voltage.add(epoch.plan.voltage.value);
        governor.observe(epoch.result.outcome, analysis.vmin);
        disruptions += is_disruption(epoch.result.outcome) ? 1 : 0;
        ce_epochs +=
            epoch.result.outcome == run_outcome::corrected_error ? 1 : 0;

        // Power accounting (PMD + DRAM domains): what was actually drawn,
        // including the lost replay attempt and the sentinel duplicate.
        autopilot_w +=
            epoch.result.epoch_power_w + epoch.lost_power_w +
            (epoch.plan.sentinel
                 ? supervisor.config().sentinel_overhead *
                       epoch.result.epoch_power_w
                 : 0.0);
        nominal_w +=
            cpu_power.pmd_domain_power(chip.config(), assignments,
                                       nominal_pmd_voltage, celsius{50.0})
                .value +
            dram_power.power(nominal_refresh_period, dram_bw).value;
    }

    const health_telemetry& health = supervisor.telemetry();
    const double overhead_w_epochs = health.sentinel_overhead_w_epochs +
                                     health.degradation_overhead_w_epochs;
    const supervised_savings net = net_of_resilience(
        domain_savings{watts{nominal_w / phases},
                       watts{(autopilot_w - overhead_w_epochs) / phases}},
        watts{overhead_w_epochs / phases});

    text_table table({"metric", "value"});
    table.add_row({"phases", std::to_string(phases)});
    table.add_row({"mean supervised PMD voltage",
                   format_number(chosen_voltage.mean(), 0) + " mV"});
    table.add_row({"voltage range",
                   format_number(chosen_voltage.min(), 0) + " - " +
                       format_number(chosen_voltage.max(), 0) + " mV"});
    table.add_row({"PMD+DRAM power (autopilot)",
                   format_number(autopilot_w / phases, 1) + " W"});
    table.add_row({"PMD+DRAM power (nominal)",
                   format_number(nominal_w / phases, 1) + " W"});
    table.add_row({"gross saving",
                   format_percent(net.gross.saving_fraction(), 1)});
    table.add_row({"resilience overhead",
                   format_number(net.resilience_overhead.value, 2) + " W"});
    table.add_row({"net saving",
                   format_percent(net.net_saving_fraction(), 1)});
    table.add_row({"disrupted phases", std::to_string(disruptions)});
    table.add_row({"corrected-error phases", std::to_string(ce_epochs)});
    table.add_row({"final guard",
                   format_number(governor.current_guard().value, 1) +
                       " mV"});
    table.render(std::cout);

    text_table health_table({"health", "count"});
    health_table.add_row({"epochs", std::to_string(health.epochs)});
    health_table.add_row({"committed", std::to_string(health.committed)});
    health_table.add_row(
        {"sentinel", std::to_string(health.sentinel_epochs)});
    health_table.add_row({"replayed", std::to_string(health.replayed)});
    health_table.add_row({"aborted", std::to_string(health.aborted)});
    health_table.add_row(
        {"quarantined", std::to_string(health.quarantined_epochs)});
    health_table.add_row(
        {"SDC detected", std::to_string(health.detected_sdc)});
    health_table.add_row(
        {"SDC undetected", std::to_string(health.undetected_sdc)});
    health_table.add_row(
        {"DRAM CE bursts", std::to_string(health.dram_ce_bursts)});
    health_table.add_row(
        {"breaker trips", std::to_string(health.breaker_trips)});
    health_table.add_row(
        {"watchdog aborts", std::to_string(health.watchdog_aborts)});
    health_table.add_row(
        {"degraded epochs", std::to_string(health.degraded_epochs)});
    std::cout << '\n';
    health_table.render(std::cout);
    std::cout << "\nsupervisor state: " << to_string(supervisor.state())
              << " (stage " << supervisor.stage() << ")\n";

    if (trace_path) {
        std::ofstream out(*trace_path);
        write_chrome_trace(out, trace);
        std::cerr << "trace written to " << *trace_path << " ("
                  << trace.size() << " events)\n";
    }
    if (metrics_path) {
        health.publish(metrics, 0, health.epochs);
        std::ofstream out(*metrics_path);
        write_metrics_json(out, metrics);
        std::cerr << "metrics written to " << *metrics_path << '\n';
    }

    if (!health.balanced()) {
        std::cerr << "FAIL: " << health.epochs - health.accounted()
                  << " unaccounted epochs\n";
        return 1;
    }
    // The default-length day must show the whole arc: at least one breaker
    // trip during the storm and a recovery to the exploiting state after.
    if (phases >= 48 &&
        (health.breaker_trips == 0 ||
         supervisor.state() != supervisor_state::exploiting)) {
        std::cerr << "FAIL: expected >=1 breaker trip and recovery to "
                     "exploiting, got "
                  << health.breaker_trips << " trips, state "
                  << to_string(supervisor.state()) << "\n";
        return 1;
    }
    return 0;
}

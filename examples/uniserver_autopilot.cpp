// UniServer autopilot: every exploitation mechanism in this library running
// together, the deployment the paper's conclusion sketches.  For each
// operating phase of a simulated day the autopilot:
//   1. places the phase's programs on cores Vmin-aware (placement),
//   2. picks the PMD voltage from the predictor + droop history (governor),
//   3. sets the DRAM refresh period from the DIMM temperature sensors
//      (adaptive refresh policy),
// then executes the phase, feeds outcomes back, and accounts power against
// an always-nominal baseline.
//
//   $ ./uniserver_autopilot [phases]
#include <cstdlib>
#include <iostream>

#include "core/governor.hpp"
#include "core/placement.hpp"
#include "core/refresh_policy.hpp"
#include "dram/power.hpp"
#include "thermal/testbed.hpp"
#include "util/table.hpp"
#include "workloads/cpu_profiles.hpp"

using namespace gb;

int main(int argc, char** argv) {
    const int phases = argc > 1 ? std::atoi(argv[1]) : 48;

    chip_model chip(make_ttt_chip(), make_xgene2_pdn());
    characterization_framework framework(chip, 2018);
    memory_system memory(single_dimm_geometry(), retention_model{}, 2018,
                         study_limits{celsius{62.0},
                                      milliseconds{2283.0}});
    thermal_testbed testbed(1, thermal_plant_config{}, 5);
    const adaptive_refresh_policy refresh_policy;
    const dram_power_model dram_power;
    const cpu_power_model cpu_power;

    // --- One-time characterization: train the predictor on chip-level
    // campaigns (what a commissioning pass would measure). ---
    vmin_predictor predictor;
    for (const cpu_benchmark& b : spec2006_suite()) {
        const execution_profile& profile =
            framework.profile_of(b.loop, nominal_core_frequency);
        std::vector<core_assignment> all;
        for (int core = 0; core < cores_per_chip; ++core) {
            all.push_back({core, &profile, nominal_core_frequency});
        }
        predictor.add_sample(profile,
                             chip.analyze(all, hash_label(b.name)).vmin);
    }
    predictor.train();
    voltage_governor governor(predictor);
    std::cout << "commissioned: predictor R^2 "
              << format_number(predictor.r_squared(), 2) << "\n\n";

    // --- The day: alternating workload mixes and ambient temperatures. ---
    const std::vector<std::vector<std::string>> mixes{
        {"mcf", "gcc", "dealII", "lbm", "mcf", "gcc", "dealII", "lbm"},
        {"milc", "bwaves", "leslie3d", "namd", "gromacs", "cactusADM",
         "dealII", "mcf"},
        {"gromacs", "namd", "gromacs", "namd", "gromacs", "namd", "gromacs",
         "namd"},
    };
    const std::vector<double> ambients{42.0, 55.0, 48.0};

    rng r(9);
    double autopilot_w = 0.0;
    double nominal_w = 0.0;
    int disruptions = 0;
    int ce_epochs = 0;
    running_stats chosen_voltage;

    for (int phase = 0; phase < phases; ++phase) {
        const std::size_t kind =
            static_cast<std::size_t>(phase) % mixes.size();

        // (1) Placement.
        std::vector<const kernel*> programs;
        const execution_profile* worst_profile = nullptr;
        for (const std::string& name : mixes[kind]) {
            programs.push_back(&find_cpu_benchmark(name).loop);
        }
        const placement_result placement =
            optimize_placement(framework, programs);
        std::vector<core_assignment> assignments;
        double mean_current = 0.0;
        for (std::size_t i = 0; i < programs.size(); ++i) {
            const execution_profile& profile = framework.profile_of(
                *programs[i], nominal_core_frequency);
            assignments.push_back(
                core_assignment{placement.core_of_program[i], &profile,
                                nominal_core_frequency});
            mean_current += profile.average_current_a();
            if (worst_profile == nullptr ||
                profile.average_current_a() >
                    worst_profile->average_current_a()) {
                worst_profile = &profile;
            }
        }

        // (2) Voltage from the governor (keyed on the heaviest program's
        // counters, the PMU signal a governor actually has).
        const millivolts v = governor.choose_voltage(*worst_profile);
        chosen_voltage.add(v.value);

        // (3) Refresh from the DIMM temperature.
        testbed.set_target(0, celsius{ambients[static_cast<std::size_t>(
                                  phase) % ambients.size()]});
        testbed.run(900.0, 1.0, 600.0);
        testbed.apply_to(memory);
        const milliseconds trefp = refresh_policy.apply(memory);

        // Execute and feed back.
        const std::uint64_t phase_seed =
            hash_label(mixes[kind].front()) + kind;
        const run_evaluation eval =
            chip.evaluate_run(assignments, v, phase_seed, r);
        governor.observe(eval.outcome,
                         chip.analyze(assignments, phase_seed).vmin);
        disruptions += is_disruption(eval.outcome) ? 1 : 0;
        ce_epochs += eval.outcome == run_outcome::corrected_error ? 1 : 0;

        // Power accounting (PMD + DRAM domains).
        const double dram_bw = 2.0 + 2.0 * mean_current / 8.0;
        autopilot_w +=
            cpu_power.pmd_domain_power(chip.config(), assignments, v,
                                       celsius{50.0})
                .value +
            dram_power.power(trefp, dram_bw).value;
        nominal_w +=
            cpu_power.pmd_domain_power(chip.config(), assignments,
                                       nominal_pmd_voltage, celsius{50.0})
                .value +
            dram_power.power(nominal_refresh_period, dram_bw).value;
    }

    text_table table({"metric", "value"});
    table.add_row({"phases", std::to_string(phases)});
    table.add_row({"mean chosen PMD voltage",
                   format_number(chosen_voltage.mean(), 0) + " mV"});
    table.add_row({"voltage range",
                   format_number(chosen_voltage.min(), 0) + " - " +
                       format_number(chosen_voltage.max(), 0) + " mV"});
    table.add_row({"PMD+DRAM power (autopilot)",
                   format_number(autopilot_w / phases, 1) + " W"});
    table.add_row({"PMD+DRAM power (nominal)",
                   format_number(nominal_w / phases, 1) + " W"});
    table.add_row({"saving",
                   format_percent(1.0 - autopilot_w / nominal_w, 1)});
    table.add_row({"disrupted phases", std::to_string(disruptions)});
    table.add_row({"corrected-error phases", std::to_string(ce_epochs)});
    table.add_row({"final guard",
                   format_number(governor.current_guard().value, 1) +
                       " mV"});
    table.render(std::cout);
    return 0;
}

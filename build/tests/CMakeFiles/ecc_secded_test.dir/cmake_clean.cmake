file(REMOVE_RECURSE
  "CMakeFiles/ecc_secded_test.dir/ecc_secded_test.cpp.o"
  "CMakeFiles/ecc_secded_test.dir/ecc_secded_test.cpp.o.d"
  "ecc_secded_test"
  "ecc_secded_test.pdb"
  "ecc_secded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_secded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

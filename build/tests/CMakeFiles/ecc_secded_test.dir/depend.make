# Empty dependencies file for ecc_secded_test.
# This may be replaced when dependencies are built.

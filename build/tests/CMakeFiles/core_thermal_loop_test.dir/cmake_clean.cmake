file(REMOVE_RECURSE
  "CMakeFiles/core_thermal_loop_test.dir/core_thermal_loop_test.cpp.o"
  "CMakeFiles/core_thermal_loop_test.dir/core_thermal_loop_test.cpp.o.d"
  "core_thermal_loop_test"
  "core_thermal_loop_test.pdb"
  "core_thermal_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_thermal_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

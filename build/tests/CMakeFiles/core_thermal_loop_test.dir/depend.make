# Empty dependencies file for core_thermal_loop_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/util_fft_test.dir/util_fft_test.cpp.o"
  "CMakeFiles/util_fft_test.dir/util_fft_test.cpp.o.d"
  "util_fft_test"
  "util_fft_test.pdb"
  "util_fft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for workloads_dram_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/workloads_dram_test.dir/workloads_dram_test.cpp.o"
  "CMakeFiles/workloads_dram_test.dir/workloads_dram_test.cpp.o.d"
  "workloads_dram_test"
  "workloads_dram_test.pdb"
  "workloads_dram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_dram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/harness_logfile_test.dir/harness_logfile_test.cpp.o"
  "CMakeFiles/harness_logfile_test.dir/harness_logfile_test.cpp.o.d"
  "harness_logfile_test"
  "harness_logfile_test.pdb"
  "harness_logfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_logfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

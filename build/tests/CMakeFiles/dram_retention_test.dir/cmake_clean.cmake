file(REMOVE_RECURSE
  "CMakeFiles/dram_retention_test.dir/dram_retention_test.cpp.o"
  "CMakeFiles/dram_retention_test.dir/dram_retention_test.cpp.o.d"
  "dram_retention_test"
  "dram_retention_test.pdb"
  "dram_retention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_retention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cache_trace_pipeline_test.dir/cache_trace_pipeline_test.cpp.o"
  "CMakeFiles/cache_trace_pipeline_test.dir/cache_trace_pipeline_test.cpp.o.d"
  "cache_trace_pipeline_test"
  "cache_trace_pipeline_test.pdb"
  "cache_trace_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_trace_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

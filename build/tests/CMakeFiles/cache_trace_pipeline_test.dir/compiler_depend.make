# Empty compiler generated dependencies file for cache_trace_pipeline_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for core_governor_test.
# This may be replaced when dependencies are built.

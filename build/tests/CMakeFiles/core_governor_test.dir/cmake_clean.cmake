file(REMOVE_RECURSE
  "CMakeFiles/core_governor_test.dir/core_governor_test.cpp.o"
  "CMakeFiles/core_governor_test.dir/core_governor_test.cpp.o.d"
  "core_governor_test"
  "core_governor_test.pdb"
  "core_governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pdn_test.dir/pdn_test.cpp.o"
  "CMakeFiles/pdn_test.dir/pdn_test.cpp.o.d"
  "pdn_test"
  "pdn_test.pdb"
  "pdn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_explorer_test.dir/core_explorer_test.cpp.o"
  "CMakeFiles/core_explorer_test.dir/core_explorer_test.cpp.o.d"
  "core_explorer_test"
  "core_explorer_test.pdb"
  "core_explorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

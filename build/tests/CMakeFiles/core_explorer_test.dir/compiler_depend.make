# Empty compiler generated dependencies file for core_explorer_test.
# This may be replaced when dependencies are built.

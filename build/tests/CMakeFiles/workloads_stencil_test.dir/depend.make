# Empty dependencies file for workloads_stencil_test.
# This may be replaced when dependencies are built.

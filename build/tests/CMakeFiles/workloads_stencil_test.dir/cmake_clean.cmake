file(REMOVE_RECURSE
  "CMakeFiles/workloads_stencil_test.dir/workloads_stencil_test.cpp.o"
  "CMakeFiles/workloads_stencil_test.dir/workloads_stencil_test.cpp.o.d"
  "workloads_stencil_test"
  "workloads_stencil_test.pdb"
  "workloads_stencil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_stencil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

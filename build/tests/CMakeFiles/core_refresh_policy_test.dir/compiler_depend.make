# Empty compiler generated dependencies file for core_refresh_policy_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_refresh_policy_test.dir/core_refresh_policy_test.cpp.o"
  "CMakeFiles/core_refresh_policy_test.dir/core_refresh_policy_test.cpp.o.d"
  "core_refresh_policy_test"
  "core_refresh_policy_test.pdb"
  "core_refresh_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_refresh_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dram_patterns_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dram_patterns_test.dir/dram_patterns_test.cpp.o"
  "CMakeFiles/dram_patterns_test.dir/dram_patterns_test.cpp.o.d"
  "dram_patterns_test"
  "dram_patterns_test.pdb"
  "dram_patterns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dram_power_test.
# This may be replaced when dependencies are built.

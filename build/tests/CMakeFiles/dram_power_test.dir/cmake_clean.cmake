file(REMOVE_RECURSE
  "CMakeFiles/dram_power_test.dir/dram_power_test.cpp.o"
  "CMakeFiles/dram_power_test.dir/dram_power_test.cpp.o.d"
  "dram_power_test"
  "dram_power_test.pdb"
  "dram_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cross_module_property_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cross_module_property_test.dir/cross_module_property_test.cpp.o"
  "CMakeFiles/cross_module_property_test.dir/cross_module_property_test.cpp.o.d"
  "cross_module_property_test"
  "cross_module_property_test.pdb"
  "cross_module_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_module_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

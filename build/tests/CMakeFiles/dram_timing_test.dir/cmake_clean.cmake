file(REMOVE_RECURSE
  "CMakeFiles/dram_timing_test.dir/dram_timing_test.cpp.o"
  "CMakeFiles/dram_timing_test.dir/dram_timing_test.cpp.o.d"
  "dram_timing_test"
  "dram_timing_test.pdb"
  "dram_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/chip_corners_test.dir/chip_corners_test.cpp.o"
  "CMakeFiles/chip_corners_test.dir/chip_corners_test.cpp.o.d"
  "chip_corners_test"
  "chip_corners_test.pdb"
  "chip_corners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_corners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for chip_corners_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/thermal_test.cpp" "tests/CMakeFiles/thermal_test.dir/thermal_test.cpp.o" "gcc" "tests/CMakeFiles/thermal_test.dir/thermal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/thermal/CMakeFiles/gb_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/gb_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/gb_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/chip_model_test.dir/chip_model_test.cpp.o"
  "CMakeFiles/chip_model_test.dir/chip_model_test.cpp.o.d"
  "chip_model_test"
  "chip_model_test.pdb"
  "chip_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

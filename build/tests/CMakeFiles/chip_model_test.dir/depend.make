# Empty dependencies file for chip_model_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for em_test.
# This may be replaced when dependencies are built.

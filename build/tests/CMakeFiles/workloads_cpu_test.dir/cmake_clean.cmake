file(REMOVE_RECURSE
  "CMakeFiles/workloads_cpu_test.dir/workloads_cpu_test.cpp.o"
  "CMakeFiles/workloads_cpu_test.dir/workloads_cpu_test.cpp.o.d"
  "workloads_cpu_test"
  "workloads_cpu_test.pdb"
  "workloads_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

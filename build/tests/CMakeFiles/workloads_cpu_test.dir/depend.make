# Empty dependencies file for workloads_cpu_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chip_power_test.dir/chip_power_test.cpp.o"
  "CMakeFiles/chip_power_test.dir/chip_power_test.cpp.o.d"
  "chip_power_test"
  "chip_power_test.pdb"
  "chip_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

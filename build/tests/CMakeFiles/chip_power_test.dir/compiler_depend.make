# Empty compiler generated dependencies file for chip_power_test.
# This may be replaced when dependencies are built.

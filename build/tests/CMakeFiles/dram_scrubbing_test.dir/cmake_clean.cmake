file(REMOVE_RECURSE
  "CMakeFiles/dram_scrubbing_test.dir/dram_scrubbing_test.cpp.o"
  "CMakeFiles/dram_scrubbing_test.dir/dram_scrubbing_test.cpp.o.d"
  "dram_scrubbing_test"
  "dram_scrubbing_test.pdb"
  "dram_scrubbing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_scrubbing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
